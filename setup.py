"""Setup shim.

The offline environment has no `wheel` package, so PEP 660 editable installs
(which must build a wheel) fail.  This shim lets `pip install -e .` fall back
to the legacy `setup.py develop` code path via --no-use-pep517; all real
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
