"""Hybrid test-data generation: heuristics first, model checking for the rest.

Run with::

    python examples/test_data_generation.py

The example uses a program with a "needle in the haystack" condition
(``key == 4711``) that random testing essentially never hits, plus an
infeasible branch.  It shows the three phases of the paper's Section 3:

1. random test data until the coverage plateau,
2. genetic-algorithm search guided by branch distances,
3. model checking for whatever remains -- producing either a witness vector
   or an infeasibility proof.
"""

from __future__ import annotations

from repro.cfg import build_cfg
from repro.hw import EvaluationBoard
from repro.minic import parse_and_analyze
from repro.partition import partition_function
from repro.optim import OptimizationConfig, build_optimized_model
from repro.testgen import (
    CoverageSource,
    GeneticOptions,
    HybridOptions,
    HybridTestDataGenerator,
)

SOURCE = """
#pragma input key
#pragma input level
#pragma input mode
#pragma range key 0 60000
#pragma range level 0 100
#pragma range mode 0 3
int key; int level; int mode;
int out;

void unlock(void);
void partial_unlock(void);
void reject(void);
void impossible(void);

void authorize(void) {
    out = 0;
    if (key == 4711) {
        if (level > 90) {
            unlock();
            out = 2;
        } else {
            partial_unlock();
            out = 1;
        }
    } else {
        reject();
    }
    if (mode > 1 && mode < 2) {
        impossible();
    }
}
"""


def main() -> None:
    analyzed = parse_and_analyze(SOURCE)
    function = analyzed.program.function("authorize")
    cfg = build_cfg(function)
    partition = partition_function(function, 1, cfg)
    board = EvaluationBoard(analyzed)

    print(f"program segments: {len(partition.segments)}, "
          f"required measurements: {partition.measurements}")
    print()

    options = HybridOptions(
        plateau_patterns=60,
        max_random_vectors=300,
        genetic=GeneticOptions(population_size=30, max_generations=40, seed=11),
        seed=11,
    )
    generator = HybridTestDataGenerator(
        analyzed, "authorize", board, partition, cfg, options
    )
    suite = generator.generate()

    print("per-target provenance:")
    for report in suite.reports:
        vector = f" vector={report.vector}" if report.vector else ""
        print(f"  {report.target.describe():<38} -> {report.source.value}{vector}")
    print()
    print("summary:", suite.summary())
    print(f"heuristic share: {suite.heuristic_share:.0%} (paper expects > 90%)")
    print()

    print("the model checker's view of the program (optimised transition system):")
    model = build_optimized_model(analyzed, "authorize", OptimizationConfig.all())
    for note in model.notes:
        print("  -", note)
    print(f"  state vector: {model.state_bits} bits "
          f"(unoptimised: {model.unoptimized_state_bits} bits)")


if __name__ == "__main__":
    main()
