"""The instrumentation/measurement trade-off on industrial-size code.

Run with::

    python examples/partitioning_tradeoff.py [--full]

Regenerates the data behind the paper's Figures 2 and 3: a synthetic
TargetLink-style application (by default a ~200-block one so the example runs
in a few seconds; ``--full`` uses the paper-sized ~857-block program) is
partitioned for a log-spaced sweep of path bounds, and the script prints the
instrumentation-point curve (Figure 2) and the measurements-vs-points
trade-off (Figure 3) as text plots.
"""

from __future__ import annotations

import sys

from repro.partition import GeneralPartitioner, PaperPartitioner
from repro.workloads.targetlink import (
    generate_small_application,
    generate_synthetic_application,
)

BOUNDS = [1, 2, 5, 10, 50, 100, 1_000, 10_000, 100_000, 1_000_000, 10**9]


def bar(value: int, maximum: int, width: int = 40) -> str:
    filled = int(round(width * value / maximum)) if maximum else 0
    return "#" * filled


def main() -> None:
    full = "--full" in sys.argv
    print("generating synthetic TargetLink-style application "
          f"({'paper size ~857 blocks' if full else '~200 blocks, use --full for paper size'}) ...")
    app = (
        generate_synthetic_application(seed=2005)
        if full
        else generate_small_application(seed=7, target_blocks=200)
    )
    function = app.analyzed.program.function(app.function_name)
    print(f"  {app.basic_blocks} basic blocks, {app.conditional_branches} conditional "
          f"branches, {app.source_lines} source lines")
    print()

    series = []
    for bound in BOUNDS:
        result = PaperPartitioner(bound).partition(function, app.cfg)
        series.append((bound, result.instrumentation_points, result.measurements))

    max_ip = max(ip for _, ip, _ in series)
    print("Figure 2: instrumentation points over path bound b (log-scale bounds)")
    print(f"{'bound b':>12} {'ip':>7}  curve")
    for bound, ip, _ in series:
        print(f"{bound:>12} {ip:>7}  {bar(ip, max_ip)}")
    print()

    print("Figure 3: measurements m against instrumentation points ip")
    print(f"{'ip':>7} {'m':>14}  (note the explosion toward ip = 2 = end-to-end)")
    for _, ip, measurements in sorted(series, key=lambda row: -row[1]):
        print(f"{ip:>7} {measurements:>14}")
    print()

    general = GeneralPartitioner(10).partition(function, app.cfg)
    print("Section 2.3 prose numbers (generalised partitioner, b = 10):")
    print(f"  instrumentation points        : {general.instrumentation_points}")
    print(f"  with fused instrumentation    : {general.fused_instrumentation_points}")
    print(f"  measurements                  : {general.measurements}")


if __name__ == "__main__":
    main()
