"""The paper's Section 4 case study: the automotive wiper controller.

Run with::

    python examples/wiper_case_study.py

The script rebuilds the whole case-study flow of the paper:

1. model the wiper controller as a 9-state Stateflow chart,
2. generate TargetLink-style C code (a single ``wiper_control`` function of
   nested switch/if statements),
3. partition it so that each case block forms one program segment,
4. generate test data, measure on the simulated HCS12 board and compute the
   WCET bound with the timing schema,
5. compare against the exhaustively measured end-to-end WCET -- the paper's
   250-vs-274-cycles result.
"""

from __future__ import annotations

from repro.cfg import build_cfg
from repro.partition import partition_function, segment_summary
from repro.pipeline import AnalyzerConfig, WcetAnalyzer
from repro.testgen import HybridOptions
from repro.workloads.wiper import (
    PAPER_EXHAUSTIVE_WCET_CYCLES,
    PAPER_PARTITIONED_BOUND_CYCLES,
    WIPER_FUNCTION_NAME,
    wiper_case_study,
    wiper_chart,
)


def main() -> None:
    chart = wiper_chart()
    print("=" * 72)
    print("Wiper-control Stateflow chart")
    print("=" * 72)
    print(f"states ({len(chart.states)}): " + ", ".join(s.name for s in chart.states))
    print(f"inputs : " + ", ".join(v.name for v in chart.inputs))
    print(f"outputs: " + ", ".join(v.name for v in chart.outputs))
    print(f"model size: ~{chart.block_count()} blocks (paper: ~70)")
    print()

    code = wiper_case_study()
    print("=" * 72)
    print("Generated TargetLink-style code (excerpt)")
    print("=" * 72)
    lines = code.source.splitlines()
    print("\n".join(lines[:48]))
    print(f"... ({len(lines)} lines total)")
    print()

    function = code.program.function(WIPER_FUNCTION_NAME)
    cfg = build_cfg(function)
    partition = partition_function(function, 2, cfg)
    print("=" * 72)
    print("Partitioning (path bound b = 2): one segment per case block")
    print("=" * 72)
    for row in segment_summary(partition):
        print(f"  segment {row['segment']:>2} [{row['kind']:>14}] paths {row['paths']}  "
              f"{row['description']}")
    print()

    print("=" * 72)
    print("Measurement-based WCET analysis")
    print("=" * 72)
    config = AnalyzerConfig(
        path_bound=2,
        hybrid=HybridOptions(plateau_patterns=40, max_random_vectors=200, seed=42),
        extra_random_vectors=40,
    )
    report = WcetAnalyzer(code.analyzed, WIPER_FUNCTION_NAME, config).analyze()
    print(report.to_text())
    print()
    ratio = report.overestimation_ratio
    paper_ratio = PAPER_PARTITIONED_BOUND_CYCLES / PAPER_EXHAUSTIVE_WCET_CYCLES
    print(
        f"paper:        bound {PAPER_PARTITIONED_BOUND_CYCLES} cycles vs exhaustive "
        f"{PAPER_EXHAUSTIVE_WCET_CYCLES} cycles  ({paper_ratio:.3f}x)"
    )
    print(
        f"reproduction: bound {report.wcet_bound_cycles} cycles vs exhaustive "
        f"{report.measured_wcet_cycles} cycles  ({ratio:.3f}x)"
    )


if __name__ == "__main__":
    main()
