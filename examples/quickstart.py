"""Quickstart: analyse the paper's Figure 1 example end to end.

Run with::

    python examples/quickstart.py

The script walks through the whole method on the small example program of the
paper's Figure 1:

1. parse the program and build its control-flow graph,
2. partition the CFG into program segments for several path bounds
   (reproducing Table 1),
3. run the complete measurement-based WCET analysis for one bound and print
   the report (test-data generation, instrumented measurements, timing-schema
   bound, exhaustive comparison).
"""

from __future__ import annotations

from repro.cfg import build_cfg, count_ast_paths, to_dot
from repro.partition import measurement_effort_table, partition_function, segment_summary
from repro.pipeline import AnalyzerConfig, WcetAnalyzer
from repro.testgen import HybridOptions
from repro.workloads.figure1 import FIGURE1_SOURCE, figure1_analyzed


def main() -> None:
    print("=" * 72)
    print("The example program of the paper's Figure 1")
    print("=" * 72)
    print(FIGURE1_SOURCE)

    analyzed = figure1_analyzed()
    function = analyzed.program.function("main")
    cfg = build_cfg(function)

    print(f"basic blocks          : {len(cfg.real_blocks())}")
    print(f"conditional branches  : {cfg.summary()['conditional_branches']}")
    print(f"end-to-end paths      : {count_ast_paths(function)}")
    print()
    print("CFG in graphviz DOT format (render with `dot -Tpng`):")
    print(to_dot(cfg))

    print("=" * 72)
    print("Table 1: instrumentation points and measurements per path bound")
    print("=" * 72)
    print(f"{'bound b':>8} {'instr. points ip':>18} {'measurements m':>16}")
    for row in measurement_effort_table(function, list(range(1, 8)), cfg):
        print(f"{row['bound']:>8} {row['instrumentation_points']:>18} {row['measurements']:>16}")
    print()

    print("=" * 72)
    print("Program segments for path bound b = 2")
    print("=" * 72)
    partition = partition_function(function, 2, cfg)
    for row in segment_summary(partition):
        print(f"  segment {row['segment']:>2} [{row['kind']:>14}] "
              f"blocks {row['blocks']} paths {row['paths']}")
    print()

    print("=" * 72)
    print("Full WCET analysis (path bound b = 2)")
    print("=" * 72)
    config = AnalyzerConfig(
        path_bound=2,
        hybrid=HybridOptions(plateau_patterns=30, max_random_vectors=100, seed=1),
    )
    report = WcetAnalyzer(analyzed, "main", config).analyze()
    print(report.to_text())


if __name__ == "__main__":
    main()
