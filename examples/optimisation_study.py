"""State-space optimisation study (the paper's Section 3.2 / Table 2).

Run with::

    python examples/optimisation_study.py

Builds the Table 2 evaluation program, applies every optimisation
configuration of the paper (none, all, each one alone), model-checks the same
reachability goal against each model and prints time / memory / counterexample
steps / state-vector width -- the reproduction of Table 2.
"""

from __future__ import annotations

import time

from repro.mc import EngineKind, ModelChecker, ModelCheckerOptions
from repro.optim import TABLE2_CONFIGURATIONS, build_optimized_model
from repro.workloads.optimisation_eval import (
    EVAL_FUNCTION_NAME,
    OPTIMISATION_EVAL_SOURCE,
    TABLE2_TARGET_CALL,
    find_target_block,
    optimisation_eval_program,
    source_line_count,
)


def main() -> None:
    print(f"evaluation program ({source_line_count()} source lines, "
          "4 boolean + 13 byte variables):")
    print()
    print("\n".join(OPTIMISATION_EVAL_SOURCE.splitlines()[:40]))
    print("    ...")
    print()
    print(f"reachability goal: execute the call to {TABLE2_TARGET_CALL}()")
    print()

    analyzed = optimisation_eval_program()
    print(f"{'optimisation technique':<28} {'time [ms]':>10} {'memory [KiB]':>13} "
          f"{'steps':>6} {'state bits':>11} {'vars':>5} {'trans':>6}")
    for name, config in TABLE2_CONFIGURATIONS:
        model = build_optimized_model(analyzed, EVAL_FUNCTION_NAME, config)
        target = find_target_block(model.translation.cfg)
        checker = ModelChecker(
            model.translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC)
        )
        started = time.perf_counter()
        result = checker.find_test_data_for_block(target)
        elapsed = (time.perf_counter() - started) * 1000
        stats = result.statistics
        print(f"{name:<28} {elapsed:>10.1f} {stats.memory_bytes / 1024:>13.1f} "
              f"{stats.steps:>6} {model.state_bits:>11} "
              f"{len(model.system.variables):>5} {len(model.system.transitions):>6}")
        if name == "all optimisations used":
            print(f"{'':28}   witness test data: {result.counterexample.inputs}")
    print()
    print("paper (SAL, 2004 hardware): unoptimised 283.4 s / 229 MB / 28 steps,")
    print("all optimisations 2.2 s / 26 MB / 13 steps -- same ordering, same shape.")


if __name__ == "__main__":
    main()
