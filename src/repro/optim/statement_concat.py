"""Statement concatenation (Section 3.2.3).

    "The basic idea is to combine as many C statements as possible into a
    single SAL block, thus reducing the number of transitions to be executed
    by the model checker. [...] The prerequisite for this optimisation is
    that the variables in the C statements are independent."

The optimisation operates on the translated transition system: two
transitions ``A --t1--> B --t2--> C`` are fused into ``A --> C`` when

* ``B`` is an internal location (exactly one incoming and one outgoing
  transition, neither the initial nor a final location),
* neither transition is guarded (straight-line statements only), and
* the statements are independent: ``t1`` writes nothing ``t2`` reads or
  writes, and ``t2`` writes nothing ``t1`` reads -- so SAL-style simultaneous
  execution of the combined updates equals sequential execution.

Fusion is applied to a fixed point, so a run of *k* independent statements
collapses into a single transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..minic.folding import expression_variables
from ..transsys.system import Transition, TransitionSystem


@dataclass
class ConcatenationReport:
    """How much the transition count shrank."""

    transitions_before: int = 0
    transitions_after: int = 0
    fusions: int = 0

    @property
    def reduction_ratio(self) -> float:
        if self.transitions_before == 0:
            return 1.0
        return self.transitions_after / self.transitions_before


def _reads(transition: Transition) -> set[str]:
    names: set[str] = set()
    if transition.guard is not None:
        names |= expression_variables(transition.guard)
    for _, expr in transition.updates:
        names |= expression_variables(expr)
    return names


def _writes(transition: Transition) -> set[str]:
    return {name for name, _ in transition.updates}


def _independent(first: Transition, second: Transition) -> bool:
    first_writes = _writes(first)
    second_writes = _writes(second)
    if first_writes & (_reads(second) | second_writes):
        return False
    if second_writes & _reads(first):
        return False
    return True


def apply_statement_concatenation(
    system: TransitionSystem,
) -> tuple[TransitionSystem, ConcatenationReport]:
    """Fuse chains of independent unguarded transitions in place.

    The system is modified in place (and also returned, for pipeline
    convenience).  Labels and statement counts of fused transitions are
    concatenated so CFG provenance and step accounting stay meaningful.
    """
    report = ConcatenationReport(transitions_before=len(system.transitions))
    changed = True
    while changed:
        changed = False
        incoming: dict[int, list[Transition]] = {}
        outgoing: dict[int, list[Transition]] = {}
        for transition in system.transitions:
            outgoing.setdefault(transition.source, []).append(transition)
            incoming.setdefault(transition.target, []).append(transition)
        protected = {system.initial_location} | set(system.final_locations)
        for first in list(system.transitions):
            middle = first.target
            if middle in protected:
                continue
            if len(incoming.get(middle, ())) != 1 or len(outgoing.get(middle, ())) != 1:
                continue
            second = outgoing[middle][0]
            if second.source == second.target or first.source == middle:
                continue
            if first.guard is not None or second.guard is not None:
                continue
            if not _independent(first, second):
                continue
            fused = Transition(
                source=first.source,
                target=second.target,
                guard=None,
                updates=list(first.updates) + list(second.updates),
                labels=tuple(dict.fromkeys(first.labels + second.labels)),
                statement_count=first.statement_count + second.statement_count,
            )
            system.transitions.remove(first)
            system.transitions.remove(second)
            system.transitions.append(fused)
            report.fusions += 1
            changed = True
            break  # adjacency maps are stale; rebuild and continue
    report.transitions_after = len(system.transitions)
    system.annotations.append(
        f"statement concatenation: {report.transitions_before} -> "
        f"{report.transitions_after} transitions"
    )
    return system, report
