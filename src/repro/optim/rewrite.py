"""AST rewriting utilities shared by the source-level optimisations.

The reverse-CSE and live-variable optimisations are implemented as
source-to-source transformations (the paper applies them during the C-to-SAL
conversion; transforming the mini-C AST and re-running semantic analysis keeps
every later stage -- translation, interpretation, test generation -- perfectly
consistent).  This module provides deep-copying rewriters:

* :func:`clone_expr` -- copy an expression, substituting identifiers,
* :func:`rewrite_statement` -- copy a statement tree, substituting identifiers
  in expressions, renaming assignment/declaration targets and dropping
  statements by node id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Identifier,
    IfStmt,
    IntLiteral,
    ReturnStmt,
    Stmt,
    SwitchCase,
    SwitchStmt,
    UnaryOp,
    WhileStmt,
)


@dataclass
class RewritePlan:
    """What to change while copying a function body.

    ``substitute``
        identifier name -> replacement expression (used by reverse CSE).
    ``rename``
        variable name -> new name, applied to identifier uses *and* to
        assignment / declaration targets (used by live-variable sharing).
    ``drop_statements``
        node ids of statements to remove entirely.
    ``declaration_to_assignment``
        names whose declarations should be turned into plain assignments
        (because the declaration moved elsewhere after variable merging).
    ``drop_declarations``
        names whose declarations should be removed entirely.
    """

    substitute: dict[str, Expr] = field(default_factory=dict)
    rename: dict[str, str] = field(default_factory=dict)
    drop_statements: set[int] = field(default_factory=set)
    declaration_to_assignment: set[str] = field(default_factory=set)
    drop_declarations: set[str] = field(default_factory=set)


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
def clone_expr(expr: Expr, plan: RewritePlan | None = None) -> Expr:
    """Deep-copy *expr*, applying the plan's substitutions and renames."""
    plan = plan or RewritePlan()
    if isinstance(expr, IntLiteral):
        return IntLiteral(value=expr.value, location=expr.location)
    if isinstance(expr, BoolLiteral):
        return BoolLiteral(value=expr.value, location=expr.location)
    if isinstance(expr, Identifier):
        if expr.name in plan.substitute:
            return clone_expr(plan.substitute[expr.name], RewritePlan())
        name = plan.rename.get(expr.name, expr.name)
        return Identifier(name=name, location=expr.location)
    if isinstance(expr, UnaryOp):
        return UnaryOp(op=expr.op, operand=clone_expr(expr.operand, plan),
                       location=expr.location)
    if isinstance(expr, BinaryOp):
        return BinaryOp(op=expr.op, left=clone_expr(expr.left, plan),
                        right=clone_expr(expr.right, plan), location=expr.location)
    if isinstance(expr, Conditional):
        return Conditional(
            cond=clone_expr(expr.cond, plan),
            then=clone_expr(expr.then, plan),
            otherwise=clone_expr(expr.otherwise, plan),
            location=expr.location,
        )
    if isinstance(expr, AssignExpr):
        target_name = plan.rename.get(expr.target.name, expr.target.name)
        return AssignExpr(
            target=Identifier(name=target_name, location=expr.target.location),
            value=clone_expr(expr.value, plan),
            location=expr.location,
        )
    if isinstance(expr, CastExpr):
        return CastExpr(target_type=expr.target_type,
                        operand=clone_expr(expr.operand, plan), location=expr.location)
    if isinstance(expr, CallExpr):
        return CallExpr(name=expr.name, args=[clone_expr(a, plan) for a in expr.args],
                        location=expr.location)
    raise TypeError(f"cannot clone expression {type(expr).__name__}")


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #
def rewrite_statement(stmt: Stmt, plan: RewritePlan) -> Stmt | None:
    """Deep-copy *stmt* under *plan*; ``None`` means the statement is dropped."""
    if stmt.node_id in plan.drop_statements:
        return None
    if isinstance(stmt, CompoundStmt):
        statements = []
        for child in stmt.statements:
            rewritten = rewrite_statement(child, plan)
            if rewritten is not None:
                statements.append(rewritten)
        return CompoundStmt(statements=statements, location=stmt.location)
    if isinstance(stmt, DeclStmt):
        if stmt.name in plan.drop_declarations:
            return None
        if stmt.name in plan.declaration_to_assignment:
            name = plan.rename.get(stmt.name, stmt.name)
            if stmt.init is None:
                return None
            return ExprStmt(
                expr=AssignExpr(
                    target=Identifier(name=name, location=stmt.location),
                    value=clone_expr(stmt.init, plan),
                    location=stmt.location,
                ),
                location=stmt.location,
            )
        init = clone_expr(stmt.init, plan) if stmt.init is not None else None
        return DeclStmt(name=stmt.name, var_type=stmt.var_type, init=init,
                        location=stmt.location)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(expr=clone_expr(stmt.expr, plan), location=stmt.location)
    if isinstance(stmt, IfStmt):
        then_branch = rewrite_statement(stmt.then_branch, plan) or CompoundStmt(
            statements=[], location=stmt.location
        )
        else_branch = None
        if stmt.else_branch is not None:
            else_branch = rewrite_statement(stmt.else_branch, plan)
        return IfStmt(cond=clone_expr(stmt.cond, plan), then_branch=then_branch,
                      else_branch=else_branch, location=stmt.location)
    if isinstance(stmt, SwitchStmt):
        cases = []
        for case in stmt.cases:
            body = rewrite_statement(case.body, plan) or CompoundStmt(
                statements=[], location=case.location
            )
            cases.append(
                SwitchCase(values=list(case.values), body=body,  # type: ignore[arg-type]
                           is_default=case.is_default, location=case.location)
            )
        return SwitchStmt(expr=clone_expr(stmt.expr, plan), cases=cases,
                          location=stmt.location)
    if isinstance(stmt, WhileStmt):
        body = rewrite_statement(stmt.body, plan) or CompoundStmt(
            statements=[], location=stmt.location
        )
        return WhileStmt(cond=clone_expr(stmt.cond, plan), body=body,
                         loop_bound=stmt.loop_bound, location=stmt.location)
    if isinstance(stmt, DoWhileStmt):
        body = rewrite_statement(stmt.body, plan) or CompoundStmt(
            statements=[], location=stmt.location
        )
        return DoWhileStmt(body=body, cond=clone_expr(stmt.cond, plan),
                           loop_bound=stmt.loop_bound, location=stmt.location)
    if isinstance(stmt, ForStmt):
        init = rewrite_statement(stmt.init, plan) if stmt.init is not None else None
        body = rewrite_statement(stmt.body, plan) or CompoundStmt(
            statements=[], location=stmt.location
        )
        return ForStmt(
            init=init,
            cond=clone_expr(stmt.cond, plan) if stmt.cond is not None else None,
            step=clone_expr(stmt.step, plan) if stmt.step is not None else None,
            body=body,
            loop_bound=stmt.loop_bound,
            location=stmt.location,
        )
    if isinstance(stmt, ReturnStmt):
        value = clone_expr(stmt.value, plan) if stmt.value is not None else None
        return ReturnStmt(value=value, location=stmt.location)
    if isinstance(stmt, (BreakStmt, ContinueStmt, EmptyStmt)):
        return type(stmt)(location=stmt.location)
    raise TypeError(f"cannot rewrite statement {type(stmt).__name__}")


def rewrite_function(function: FunctionDef, plan: RewritePlan) -> FunctionDef:
    """Copy *function* with its body rewritten under *plan*."""
    body = rewrite_statement(function.body, plan)
    assert isinstance(body, CompoundStmt)
    return FunctionDef(
        name=function.name,
        return_type=function.return_type,
        params=list(function.params),
        body=body,
        location=function.location,
    )
