"""Live-variable optimisation (Section 3.2.2).

    "Multiple variables can share the same memory location if they are not
    used at the same time. [...] This optimisation technique is also used to
    remove unused variables."

Two effects, both reducing the number of state variables (and therefore the
state-vector width) without touching the statement structure:

* **unused-variable removal** -- local variables that are never read nor
  written anywhere in the function simply lose their declaration;
* **location sharing** -- local variables of the same type whose live ranges
  do not overlap (no edge in the interference graph) are merged onto one
  representative; uses and assignments are renamed, and the merged variables'
  declarations become plain assignments (when they carried an initialiser) or
  disappear.

Inputs and globals are never merged: their identity is externally visible
(test data is forced onto them by name).  Variables that are written but never
read are left alone -- removing their assignments is the dead-variable/code
optimisation's job and would change the statement structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.liveness import live_range_conflicts
from ..cfg.builder import build_cfg
from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import AssignExpr, DeclStmt, FunctionDef, Identifier
from ..minic.symbols import FunctionSymbolTable, SymbolKind
from .rewrite import RewritePlan, rewrite_function


@dataclass
class LiveVariableReport:
    """What the optimisation did."""

    removed_unused: list[str] = field(default_factory=list)
    merged: dict[str, str] = field(default_factory=dict)  # variable -> representative

    @property
    def variables_saved(self) -> int:
        return len(self.removed_unused) + len(self.merged)


def _reads_and_writes(function: FunctionDef) -> tuple[set[str], set[str]]:
    """Names read (as identifiers) and written (assignment/decl-init targets)."""
    reads: set[str] = set()
    writes: set[str] = set()
    for node in function.body.walk():
        if isinstance(node, AssignExpr):
            writes.add(node.target.name)
        elif isinstance(node, Identifier):
            reads.add(node.name)
        elif isinstance(node, DeclStmt) and node.init is not None:
            writes.add(node.name)
    # assignment targets appear as Identifier children too; a pure write is
    # not a read, so subtract targets that are *only* ever written
    return reads, writes


def _declaration_order(function: FunctionDef) -> dict[str, int]:
    order: dict[str, int] = {}
    position = 0
    for node in function.body.walk():
        if isinstance(node, DeclStmt) and node.name not in order:
            order[node.name] = position
            position += 1
    return order


def plan_live_variable_sharing(
    function: FunctionDef,
    table: FunctionSymbolTable,
    cfg: ControlFlowGraph | None = None,
) -> tuple[RewritePlan, LiveVariableReport]:
    """Compute the rename/removal plan of the live-variable optimisation."""
    cfg = cfg if cfg is not None else build_cfg(function)
    report = LiveVariableReport()

    reads, writes = _reads_and_writes(function)
    declaration_order = _declaration_order(function)

    local_names = [
        name
        for name, symbol in table.variables.items()
        if symbol.kind is SymbolKind.LOCAL and not symbol.is_input
    ]

    # 1. completely unused locals: never read, never written
    unused = sorted(
        name for name in local_names if name not in reads and name not in writes
    )
    report.removed_unused = unused

    # 2. interference-based sharing among the remaining locals, per type
    conflicts = live_range_conflicts(cfg)
    mergeable = [name for name in local_names if name not in unused]
    by_type: dict[str, list[str]] = {}
    for name in mergeable:
        by_type.setdefault(table.variables[name].ctype.name, []).append(name)

    rename: dict[str, str] = {}
    for names in by_type.values():
        # process in declaration order so representatives are declared before
        # any assignment that replaces a merged variable's declaration
        ordered = sorted(names, key=lambda n: declaration_order.get(n, 10**9))
        representatives: list[str] = []
        merged_conflicts: dict[str, set[str]] = {}
        for name in ordered:
            placed = False
            for representative in representatives:
                if name not in merged_conflicts[representative]:
                    rename[name] = representative
                    merged_conflicts[representative] |= conflicts.get(name, set())
                    merged_conflicts[representative].discard(representative)
                    report.merged[name] = representative
                    placed = True
                    break
            if not placed:
                representatives.append(name)
                merged_conflicts[name] = set(conflicts.get(name, set()))

    plan = RewritePlan(
        rename=rename,
        drop_declarations=set(unused),
        declaration_to_assignment=set(rename),
    )
    return plan, report


def apply_live_variable_optimisation(
    function: FunctionDef,
    table: FunctionSymbolTable,
    cfg: ControlFlowGraph | None = None,
) -> tuple[FunctionDef, LiveVariableReport]:
    """Return a copy of *function* with unused variables removed and
    non-interfering locals merged onto shared locations."""
    plan, report = plan_live_variable_sharing(function, table, cfg)
    return rewrite_function(function, plan), report
