"""Dead variable and code elimination (Section 3.2.6).

    "Since we are not interested in the data flow but only in the control
    flow, all variables that do not affect the control flow directly or
    through assignments to other variables can be removed.  Even code
    segments that do not affect variables involved in the control flow can
    be removed, as long as we are not looking for test data to reach these
    paths."

Two levels, matching the paper:

* **dead-variable elimination** (the Table 2 configuration) removes the
  control-flow-irrelevant variables from the *model*: they are excluded from
  the translated transition system and assignments to them become skip
  transitions, so the number of transitions (and hence counterexample step
  counts) stays the same while the state vector shrinks;
* **dead-code elimination** (an additional option) also deletes the
  assignments themselves from the source, further shortening counterexamples.

The ``keep`` set protects variables the current analysis goal depends on --
e.g. when the test-data generator asks for a path through code that the
optimisation would otherwise consider irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.relevance import analyze_relevance
from ..cfg.builder import build_cfg
from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import FunctionDef
from ..minic.symbols import FunctionSymbolTable, SymbolKind
from .rewrite import RewritePlan, rewrite_function


@dataclass
class DeadEliminationReport:
    """Classification produced by the relevance analysis."""

    relevant_variables: list[str] = field(default_factory=list)
    eliminated_variables: list[str] = field(default_factory=list)
    removed_statements: int = 0


def dead_variable_set(
    function: FunctionDef,
    table: FunctionSymbolTable,
    cfg: ControlFlowGraph | None = None,
    keep: frozenset[str] = frozenset(),
) -> tuple[frozenset[str], DeadEliminationReport]:
    """Variables that can be dropped from the model (control-flow irrelevant)."""
    cfg = cfg if cfg is not None else build_cfg(function)
    candidates = {
        name
        for name, symbol in table.variables.items()
        if symbol.is_variable and not symbol.is_input
    }
    protected = frozenset(keep) | {
        name for name, symbol in table.variables.items() if symbol.is_input
    }
    result = analyze_relevance(cfg, candidates, keep=protected)
    eliminated = frozenset(name for name in result.irrelevant if name not in protected)
    report = DeadEliminationReport(
        relevant_variables=sorted(result.relevant | protected),
        eliminated_variables=sorted(eliminated),
    )
    return eliminated, report


def apply_dead_code_elimination(
    function: FunctionDef,
    table: FunctionSymbolTable,
    cfg: ControlFlowGraph | None = None,
    keep: frozenset[str] = frozenset(),
) -> tuple[FunctionDef, DeadEliminationReport]:
    """Remove statements that only touch control-flow-irrelevant variables."""
    cfg = cfg if cfg is not None else build_cfg(function)
    eliminated, report = dead_variable_set(function, table, cfg, keep)
    del eliminated
    candidates = {
        name
        for name, symbol in table.variables.items()
        if symbol.is_variable and not symbol.is_input
    }
    protected = frozenset(keep) | {
        name for name, symbol in table.variables.items() if symbol.is_input
    }
    relevance = analyze_relevance(cfg, candidates, keep=protected)
    drop = {stmt.node_id for stmt in relevance.removable_statements}
    report.removed_statements = len(drop)
    # also remove the declarations of eliminated locals (their assignments are
    # gone, so the declarations would otherwise survive as dead 16-bit state)
    droppable_declarations = {
        name
        for name in report.eliminated_variables
        if table.variables[name].kind is SymbolKind.LOCAL
    }
    plan = RewritePlan(drop_statements=drop, drop_declarations=droppable_declarations)
    return rewrite_function(function, plan), report
