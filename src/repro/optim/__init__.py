"""State-space optimisations for model checking (the paper's Section 3.2)."""

from __future__ import annotations

from .dead_elimination import (
    DeadEliminationReport,
    apply_dead_code_elimination,
    dead_variable_set,
)
from .live_variable import (
    LiveVariableReport,
    apply_live_variable_optimisation,
    plan_live_variable_sharing,
)
from .pipeline import (
    TABLE2_CONFIGURATIONS,
    OptimizationConfig,
    OptimizedModel,
    build_optimized_model,
)
from .reverse_cse import (
    ReverseCseReport,
    apply_reverse_cse,
    find_substitutable_temporaries,
)
from .rewrite import RewritePlan, clone_expr, rewrite_function, rewrite_statement
from .statement_concat import ConcatenationReport, apply_statement_concatenation

__all__ = [
    "DeadEliminationReport",
    "apply_dead_code_elimination",
    "dead_variable_set",
    "LiveVariableReport",
    "apply_live_variable_optimisation",
    "plan_live_variable_sharing",
    "TABLE2_CONFIGURATIONS",
    "OptimizationConfig",
    "OptimizedModel",
    "build_optimized_model",
    "ReverseCseReport",
    "apply_reverse_cse",
    "find_substitutable_temporaries",
    "RewritePlan",
    "clone_expr",
    "rewrite_function",
    "rewrite_statement",
    "ConcatenationReport",
    "apply_statement_concatenation",
]
