"""Reverse common-subexpression elimination (Section 3.2.1).

    "This optimisation is the contrary to Common Subexpression Elimination
    (CSE) known from compilers.  Temporary variables containing intermediate
    results are replaced by the values that are assigned to them.  [...] The
    performance loss from recalculating the subexpression is small compared
    to the gain from the reduced state space."

A temporary is substituted when doing so is obviously sound:

* it is assigned exactly once in the function (declaration initialiser or a
  single assignment statement);
* the defining expression is pure (no calls, no nested assignments);
* every variable the defining expression reads is itself assigned at most
  once, and that assignment appears before the temporary's definition in the
  (topologically ordered) CFG -- i.e. the operands cannot change between the
  definition and any use;
* the definition is not inside a loop.

These conditions are conservative but cover the generated code the paper
targets (chains of ``tmp = expr; ... use(tmp) ...`` produced by block-diagram
code generators).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.builder import build_cfg
from ..cfg.dominators import natural_loops
from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import (
    AssignExpr,
    DeclStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    Stmt,
)
from ..minic.folding import expression_variables, has_calls
from ..minic.folding import assigned_variables
from ..minic.symbols import FunctionSymbolTable, SymbolKind
from .rewrite import RewritePlan, clone_expr, rewrite_function


@dataclass
class ReverseCseReport:
    """Which temporaries were substituted (and which candidates were rejected)."""

    substituted: list[str] = field(default_factory=list)
    rejected: dict[str, str] = field(default_factory=dict)


@dataclass
class _DefinitionSite:
    statement: Stmt
    expr: Expr
    order: int
    block_id: int


def _definition_sites(cfg: ControlFlowGraph) -> dict[str, list[_DefinitionSite]]:
    """All assignment sites per variable, in topological program order."""
    sites: dict[str, list[_DefinitionSite]] = {}
    order = 0
    for block in cfg.topological_order():
        for stmt in block.statements:
            order += 1
            if isinstance(stmt, DeclStmt) and stmt.init is not None:
                sites.setdefault(stmt.name, []).append(
                    _DefinitionSite(stmt, stmt.init, order, block.block_id)
                )
            elif isinstance(stmt, ExprStmt) and isinstance(stmt.expr, AssignExpr):
                target = stmt.expr.target.name
                sites.setdefault(target, []).append(
                    _DefinitionSite(stmt, stmt.expr.value, order, block.block_id)
                )
            elif isinstance(stmt, ExprStmt):
                for target in assigned_variables(stmt.expr):
                    sites.setdefault(target, []).append(
                        _DefinitionSite(stmt, stmt.expr, order, block.block_id)
                    )
    return sites


def find_substitutable_temporaries(
    function: FunctionDef,
    table: FunctionSymbolTable,
    cfg: ControlFlowGraph | None = None,
) -> tuple[dict[str, Expr], ReverseCseReport]:
    """Temporaries that can be replaced by their defining expression."""
    cfg = cfg if cfg is not None else build_cfg(function)
    report = ReverseCseReport()
    sites = _definition_sites(cfg)
    loop_blocks: set[int] = set()
    for _, body in natural_loops(cfg):
        loop_blocks |= body

    substitution: dict[str, Expr] = {}
    for name, symbol in table.variables.items():
        if symbol.kind not in (SymbolKind.LOCAL,):
            continue  # only locals are temporaries; inputs/globals stay
        if symbol.is_input:
            continue
        definitions = sites.get(name, [])
        if len(definitions) != 1:
            if len(definitions) > 1:
                report.rejected[name] = "assigned more than once"
            continue
        definition = definitions[0]
        if isinstance(definition.statement, ExprStmt) and not isinstance(
            definition.statement.expr, AssignExpr
        ):
            report.rejected[name] = "assigned through a compound expression"
            continue
        rhs = definition.expr
        if has_calls(rhs) or assigned_variables(rhs):
            report.rejected[name] = "defining expression has side effects"
            continue
        if definition.block_id in loop_blocks:
            report.rejected[name] = "defined inside a loop"
            continue
        operands_ok = True
        for operand in expression_variables(rhs):
            operand_defs = sites.get(operand, [])
            if len(operand_defs) > 1:
                operands_ok = False
                report.rejected[name] = f"operand {operand!r} assigned more than once"
                break
            if operand_defs and operand_defs[0].order >= definition.order:
                operands_ok = False
                report.rejected[name] = f"operand {operand!r} assigned after the definition"
                break
        if not operands_ok:
            continue
        substitution[name] = rhs
        report.substituted.append(name)

    # resolve chains (t2 = t1 + 1 where t1 is itself substituted)
    changed = True
    while changed:
        changed = False
        for name, rhs in list(substitution.items()):
            rhs_vars = expression_variables(rhs)
            overlap = rhs_vars & substitution.keys()
            if overlap:
                plan = RewritePlan(substitute={v: substitution[v] for v in overlap})
                substitution[name] = clone_expr(rhs, plan)
                changed = True
    return substitution, report


def apply_reverse_cse(
    function: FunctionDef,
    table: FunctionSymbolTable,
    cfg: ControlFlowGraph | None = None,
) -> tuple[FunctionDef, ReverseCseReport]:
    """Return a copy of *function* with substitutable temporaries inlined.

    The temporaries' declarations and defining statements are removed; every
    use is replaced by (a copy of) the defining expression.
    """
    cfg = cfg if cfg is not None else build_cfg(function)
    substitution, report = find_substitutable_temporaries(function, table, cfg)
    if not substitution:
        return rewrite_function(function, RewritePlan()), report

    drop_statements: set[int] = set()
    sites = _definition_sites(cfg)
    for name in substitution:
        for site in sites.get(name, ()):  # exactly one by construction
            drop_statements.add(site.statement.node_id)
    plan = RewritePlan(
        substitute=dict(substitution),
        drop_statements=drop_statements,
        drop_declarations=set(substitution),
    )
    return rewrite_function(function, plan), report
