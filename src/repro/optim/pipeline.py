"""The optimisation pipeline: from an analysed program to an optimised model.

:func:`build_optimized_model` applies any combination of the paper's six
state-space optimisations to one function and produces the transition system
the model checker runs on, together with a report of what each optimisation
achieved (variables removed, bits saved, transitions fused).  The Table 2
benchmark calls it once per configuration: unoptimised, all optimisations,
and each optimisation on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.ranges import analyze_ranges
from ..cfg.builder import build_cfg
from ..minic.pretty import print_program
from ..minic.semantic import AnalyzedProgram, analyze_program
from ..minic.parser import parse_program
from ..transsys.translate import (
    TranslationOptions,
    TranslationResult,
    translate_function,
)
from .dead_elimination import dead_variable_set
from .live_variable import apply_live_variable_optimisation
from .reverse_cse import apply_reverse_cse
from .statement_concat import apply_statement_concatenation


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the paper's optimisations (Section 3.2) are enabled."""

    reverse_cse: bool = False                 # 3.2.1
    live_variable_analysis: bool = False      # 3.2.2
    statement_concatenation: bool = False     # 3.2.3
    variable_range_analysis: bool = False     # 3.2.4
    variable_initialisation: bool = False     # 3.2.5
    dead_variable_elimination: bool = False   # 3.2.6
    dead_code_elimination: bool = False       # 3.2.6 (code removal, optional)

    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "OptimizationConfig":
        """The unoptimised configuration (first row of Table 2)."""
        return cls()

    @classmethod
    def all(cls, include_code_elimination: bool = False) -> "OptimizationConfig":
        """Every optimisation enabled (second row of Table 2)."""
        return cls(
            reverse_cse=True,
            live_variable_analysis=True,
            statement_concatenation=True,
            variable_range_analysis=True,
            variable_initialisation=True,
            dead_variable_elimination=True,
            dead_code_elimination=include_code_elimination,
        )

    @classmethod
    def cfg_preserving(cls) -> "OptimizationConfig":
        """Optimisations that keep the CFG block structure intact.

        Source-to-source transformations (reverse CSE, live-variable sharing,
        dead-code removal) renumber basic blocks; path-precise reachability
        goals -- which name CFG edges -- therefore use this configuration, the
        strongest one whose models still speak the original CFG's labels.
        """
        return cls(
            statement_concatenation=True,
            variable_range_analysis=True,
            variable_initialisation=True,
            dead_variable_elimination=True,
        )

    @classmethod
    def only(cls, name: str) -> "OptimizationConfig":
        """A configuration with a single optimisation enabled (Table 2 rows 3+)."""
        valid = {
            "reverse_cse",
            "live_variable_analysis",
            "statement_concatenation",
            "variable_range_analysis",
            "variable_initialisation",
            "dead_variable_elimination",
            "dead_code_elimination",
        }
        if name not in valid:
            raise ValueError(f"unknown optimisation {name!r}; expected one of {sorted(valid)}")
        return replace(cls(), **{name: True})

    def enabled_names(self) -> list[str]:
        return [
            name
            for name in (
                "reverse_cse",
                "live_variable_analysis",
                "statement_concatenation",
                "variable_range_analysis",
                "variable_initialisation",
                "dead_variable_elimination",
                "dead_code_elimination",
            )
            if getattr(self, name)
        ]

    def describe(self) -> str:
        names = self.enabled_names()
        return "unoptimised" if not names else "+".join(names)


@dataclass
class OptimizedModel:
    """The outcome of running the optimisation pipeline on one function."""

    config: OptimizationConfig
    function_name: str
    analyzed: AnalyzedProgram
    translation: TranslationResult
    notes: list[str] = field(default_factory=list)
    #: state-vector bits before/after (the headline number of Section 3.1)
    unoptimized_state_bits: int = 0

    @property
    def system(self):
        return self.translation.system

    @property
    def state_bits(self) -> int:
        return self.translation.system.total_state_bits()

    def summary(self) -> dict[str, object]:
        return {
            "configuration": self.config.describe(),
            "state_bits": self.state_bits,
            "variables": len(self.system.variables),
            "free_variables": len(self.system.free_variables()),
            "transitions": len(self.system.transitions),
            "notes": list(self.notes),
        }


def _reanalyze(analyzed: AnalyzedProgram, function_name: str, new_function) -> AnalyzedProgram:
    """Swap one function of the program and re-run semantic analysis.

    Going through the pretty printer and the parser guarantees that node ids,
    inferred types and symbol tables of the transformed program are fully
    consistent -- the transformed source is also valuable for inspection and
    appears in the examples.
    """
    program = analyzed.program
    new_functions = [
        new_function if func.name == function_name else func for func in program.functions
    ]
    candidate = replace(program, functions=new_functions)
    source = print_program(candidate)
    return analyze_program(parse_program(source, filename=f"<optimised:{function_name}>"))


def build_optimized_model(
    analyzed: AnalyzedProgram,
    function_name: str,
    config: OptimizationConfig,
    keep_variables: frozenset[str] = frozenset(),
) -> OptimizedModel:
    """Apply *config* to *function_name* and translate the result.

    ``keep_variables`` protects variables from dead-variable/dead-code
    elimination (used when generating test data for paths through otherwise
    irrelevant code).
    """
    notes: list[str] = []
    current = analyzed

    # ---- source-level transformations ---------------------------------- #
    if config.reverse_cse:
        function = current.program.function(function_name)
        table = current.table(function_name)
        new_function, report = apply_reverse_cse(function, table)
        current = _reanalyze(current, function_name, new_function)
        notes.append(
            f"reverse CSE substituted {len(report.substituted)} temporaries "
            f"({', '.join(report.substituted) or 'none'})"
        )

    if config.live_variable_analysis:
        function = current.program.function(function_name)
        table = current.table(function_name)
        new_function, live_report = apply_live_variable_optimisation(function, table)
        current = _reanalyze(current, function_name, new_function)
        notes.append(
            f"live-variable analysis removed {len(live_report.removed_unused)} unused and "
            f"merged {len(live_report.merged)} variables"
        )

    if config.dead_code_elimination:
        from .dead_elimination import apply_dead_code_elimination

        function = current.program.function(function_name)
        table = current.table(function_name)
        new_function, dead_report = apply_dead_code_elimination(
            function, table, keep=keep_variables
        )
        current = _reanalyze(current, function_name, new_function)
        notes.append(f"dead-code elimination removed {dead_report.removed_statements} statements")

    # ---- analyses feeding the translator -------------------------------- #
    cfg = build_cfg(current.program.function(function_name))
    options = TranslationOptions()

    if config.dead_variable_elimination:
        function = current.program.function(function_name)
        table = current.table(function_name)
        eliminated, dead_report = dead_variable_set(
            function, table, cfg, keep=keep_variables
        )
        options = replace(options, excluded_variables=eliminated)
        notes.append(
            f"dead-variable elimination removed {len(eliminated)} variables from the model "
            f"({', '.join(sorted(eliminated)) or 'none'})"
        )

    if config.variable_range_analysis:
        table = current.table(function_name)
        ranges = analyze_ranges(cfg, table)
        options = replace(options, variable_ranges=dict(ranges.global_ranges))
        total_bits = sum(
            rng.bits()
            for name, rng in ranges.global_ranges.items()
            if name not in options.excluded_variables
        )
        notes.append(f"variable range analysis: {total_bits} data bits after narrowing")

    if config.variable_initialisation:
        options = replace(options, initialize_variables=True)
        notes.append("variable initialisation: non-input variables start at concrete values")

    # ---- translation and transition-level optimisation ------------------ #
    translation = translate_function(current, function_name, options, cfg)

    if config.statement_concatenation:
        _, concat_report = apply_statement_concatenation(translation.system)
        notes.append(
            f"statement concatenation fused transitions "
            f"{concat_report.transitions_before} -> {concat_report.transitions_after}"
        )

    baseline_bits = None
    if config != OptimizationConfig.none():
        baseline = translate_function(analyzed, function_name, TranslationOptions())
        baseline_bits = baseline.system.total_state_bits()
    model = OptimizedModel(
        config=config,
        function_name=function_name,
        analyzed=current,
        translation=translation,
        notes=notes,
        unoptimized_state_bits=baseline_bits
        if baseline_bits is not None
        else translation.system.total_state_bits(),
    )
    translation.system.annotations.append(f"optimisations: {config.describe()}")
    return model


#: The configurations evaluated in the paper's Table 2, in row order.
TABLE2_CONFIGURATIONS: list[tuple[str, OptimizationConfig]] = [
    ("unoptimized", OptimizationConfig.none()),
    ("all optimisations used", OptimizationConfig.all()),
    ("Variable Initialisation", OptimizationConfig.only("variable_initialisation")),
    ("Variable Range Analysis", OptimizationConfig.only("variable_range_analysis")),
    ("Reverse CSE", OptimizationConfig.only("reverse_cse")),
    ("Statement Concatenation", OptimizationConfig.only("statement_concatenation")),
    ("DeadVariable Elimination", OptimizationConfig.only("dead_variable_elimination")),
    ("Live-Variable Analysis", OptimizationConfig.only("live_variable_analysis")),
]
