"""Callee WCET summary store for interprocedural bound composition.

Once a callee has been analysed (or its result recalled from the persistent
cache), its WCET bound becomes a :class:`CalleeSummary`.  The scheduler
collects them wave by wave in a :class:`CalleeSummaryStore` and hands each
caller the plain ``{call name -> bound cycles}`` mapping its analysis needs:
the simulated board then charges every call site ``call_overhead + bound``
instead of inlining the callee or guessing a library cost.

Calls that cannot be summarised -- recursion cycles, failed callees -- are
charged :data:`DEFAULT_UNKNOWN_CALL_CYCLES`, a deliberately pessimistic
constant: the interprocedural bound must only ever get *tighter* than the
calls-unknown fallback, never unsafely smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: pessimistic per-call charge for a project-defined callee without a usable
#: summary (recursion cycle, failed analysis, or interprocedural mode off);
#: deliberately far above any leaf bound of the bundled workloads so the
#: summary-based bound is strictly tighter than this fallback
DEFAULT_UNKNOWN_CALL_CYCLES = 4096


@dataclass(frozen=True)
class CalleeSummary:
    """The WCET bound of one analysed callee, ready for reuse by callers."""

    #: qualified name (``unit:function``) of the callee
    qualified_name: str
    #: plain function name callers use at the call site
    call_name: str
    wcet_bound_cycles: int
    #: transitive fingerprint the bound was computed for
    transitive_fingerprint: str = ""
    #: True when the bound came from the persistent result cache
    from_cache: bool = False


class CalleeSummaryStore:
    """Bounds of completed callees, keyed by qualified name."""

    def __init__(self) -> None:
        self._summaries: dict[str, CalleeSummary] = {}

    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._summaries

    def add(self, summary: CalleeSummary) -> None:
        self._summaries[summary.qualified_name] = summary

    def get(self, qualified_name: str) -> CalleeSummary | None:
        return self._summaries.get(qualified_name)

    def bounds_for(
        self,
        resolved: Mapping[str, str],
        cyclic_names: tuple[str, ...] = (),
        unknown_call_cycles: int = DEFAULT_UNKNOWN_CALL_CYCLES,
    ) -> dict[str, int]:
        """Per-call-name charge map for one caller.

        ``resolved`` maps the caller's call names to qualified callee names
        (see :class:`~repro.callgraph.graph.CallGraphNode`); names listed in
        ``cyclic_names`` (calls into the caller's own recursion cycle) and
        resolved callees without a stored summary are charged
        ``unknown_call_cycles``.
        """
        bounds: dict[str, int] = {}
        for call_name in sorted(resolved):
            if call_name in cyclic_names:
                bounds[call_name] = unknown_call_cycles
                continue
            summary = self._summaries.get(resolved[call_name])
            if summary is None:
                bounds[call_name] = unknown_call_cycles
            else:
                bounds[call_name] = summary.wcet_bound_cycles
        return bounds
