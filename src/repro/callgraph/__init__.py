"""Interprocedural call-graph layer of the WCET reproduction.

The paper's measurement-based pipeline analyses one function at a time; this
package lifts it to whole programs:

* :mod:`repro.callgraph.extract` walks every analyzable function's AST
  (:mod:`repro.minic.calls`) and records its call sites.
* :mod:`repro.callgraph.graph` resolves callee names project-wide, detects
  recursion cycles (Tarjan SCCs, reported as diagnostics), orders functions
  into dependency waves with callees before callers, and computes the
  *transitive fingerprints* the persistent result cache keys on -- editing a
  leaf callee invalidates exactly the leaf plus its transitive callers.
* :mod:`repro.callgraph.summaries` stores completed callee bounds; callers
  charge every call site ``call_overhead + callee bound`` (a
  :class:`CalleeSummary`) instead of inlining the callee or guessing, and
  fall back to the pessimistic :data:`DEFAULT_UNKNOWN_CALL_CYCLES` when no
  summary exists (recursion cycles, ambiguous names).  Same-unit callees
  whose stubbing would be unsound -- the caller uses their return value,
  or reads a global they (transitively) write -- are inlined on the
  caller's board instead, with an ``inlined-callee`` diagnostic.

:class:`~repro.project.scheduler.ProjectScheduler` drives the whole flow:
``repro-wcet project --call-graph`` prints the resolved graph, waves and
diagnostics for a project.
"""

from __future__ import annotations

from .extract import FunctionCalls, extract_project_calls
from .graph import (
    CallEdge,
    CallGraph,
    CallGraphDiagnostic,
    CallGraphError,
    CallGraphNode,
)
from .summaries import (
    DEFAULT_UNKNOWN_CALL_CYCLES,
    CalleeSummary,
    CalleeSummaryStore,
)

__all__ = [
    "CallEdge",
    "CallGraph",
    "CallGraphDiagnostic",
    "CallGraphError",
    "CallGraphNode",
    "CalleeSummary",
    "CalleeSummaryStore",
    "DEFAULT_UNKNOWN_CALL_CYCLES",
    "FunctionCalls",
    "extract_project_calls",
]
