"""Per-function call extraction over a project's analysed units.

One :class:`FunctionCalls` record per analyzable function: the callee names
that appear in the body (with syntactic site counts, via
:mod:`repro.minic.calls`) plus the facts the call-graph layer needs to
resolve them project-wide and to decide whether a call site is *safe to
summarise* -- whether any call site uses the callee's return value, and
which of the unit's globals the function reads and writes.  A summarised
callee is stubbed during the caller's measurement, so a callee whose return
value feeds the caller's control flow, or whose global writes the caller
reads, must be inlined instead (see
:meth:`repro.callgraph.graph.CallGraph` resolution diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..minic.ast_nodes import AssignExpr, CallExpr, ExprStmt, FunctionDef, Identifier
from ..minic.calls import call_sites, called_names
from ..project.model import Project, ProjectFunction


@dataclass(frozen=True)
class FunctionCalls:
    """The call sites and summarisation-safety facts of one project function."""

    function: ProjectFunction
    #: callee name -> number of syntactic call sites (first-appearance order)
    sites: dict[str, int] = field(default_factory=dict)
    #: callee names with at least one call site whose return value is used
    #: (anywhere but directly discarded as an expression statement)
    value_used: frozenset[str] = frozenset()
    #: unit globals the function body reads (assignment targets excluded)
    global_reads: frozenset[str] = frozenset()
    #: unit globals the function body assigns
    global_writes: frozenset[str] = frozenset()

    @property
    def qualified_name(self) -> str:
        return self.function.qualified_name

    @property
    def unit(self) -> str:
        return self.function.unit

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def total_sites(self) -> int:
        return sum(self.sites.values())


def _analyse_definition(
    definition: FunctionDef, global_names: frozenset[str]
) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
    """(value-used callee names, global reads, global writes) of *definition*.

    Pure assignment targets are writes, not reads (so ``out_f = acc;`` does
    not make ``out_f`` a read); every other :class:`Identifier` naming a
    unit global counts as a read, including locals that shadow a global --
    a conservative overlap that can only flag *more* call sites as
    inline-required, never fewer.
    """
    discarded: set[int] = set()
    targets: set[int] = set()
    reads: set[str] = set()
    writes: set[str] = set()
    for node in definition.walk():
        if isinstance(node, ExprStmt) and isinstance(node.expr, CallExpr):
            discarded.add(node.expr.node_id)
        elif isinstance(node, AssignExpr):
            targets.add(node.target.node_id)
            if node.target.name in global_names:
                writes.add(node.target.name)
    for node in definition.walk():
        if (
            isinstance(node, Identifier)
            and node.name in global_names
            and node.node_id not in targets
        ):
            reads.add(node.name)
    value_used = frozenset(
        site.name
        for site in call_sites(definition)
        if site.node_id not in discarded
    )
    return value_used, frozenset(reads), frozenset(writes)


def extract_project_calls(
    project: Project, functions: list[ProjectFunction] | None = None
) -> list[FunctionCalls]:
    """Extract call sites and safety facts for every function of *project*."""
    if functions is None:
        functions = project.functions()
    globals_of_unit: dict[str, frozenset[str]] = {}
    extracted: list[FunctionCalls] = []
    for function in functions:
        program = project.unit(function.unit).analyzed.program
        if function.unit not in globals_of_unit:
            globals_of_unit[function.unit] = frozenset(
                decl.name for decl in program.globals
            )
        definition = program.function(function.name)
        value_used, reads, writes = _analyse_definition(
            definition, globals_of_unit[function.unit]
        )
        extracted.append(
            FunctionCalls(
                function=function,
                sites=called_names(definition),
                value_used=value_used,
                global_reads=reads,
                global_writes=writes,
            )
        )
    return extracted
