"""Project-wide call graph: resolution, cycles, waves, transitive fingerprints.

The call graph is the backbone of the interprocedural WCET analysis:

* **Resolution** maps every syntactic callee name to the project function it
  denotes.  A name resolves to a definition in the caller's own unit first
  (static C linkage intuition); otherwise to the unique definition elsewhere
  in the project; a name defined in several *other* units is ambiguous and
  is left unresolved with a diagnostic, and a name defined nowhere is an
  external (library/runnable) call.
* **Cycles** -- direct recursion and mutual-recursion SCCs -- are detected
  with Tarjan's algorithm and reported as diagnostics; the dependency edges
  inside a cycle are dropped so scheduling stays well defined (calls along a
  cycle are charged the pessimistic unknown-call cost instead of a summary).
* **Dependency waves** order callees before callers; the project scheduler
  runs one wave at a time and feeds completed callee bounds into the next.
* **Transitive fingerprints** extend each function's content fingerprint
  with the fingerprints of everything it can reach through resolved calls:
  the persistent result cache keys on them, so editing a leaf invalidates
  exactly the leaf and its transitive callers -- nothing else.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..project.model import Project, ProjectError, ProjectFunction
from .extract import FunctionCalls, extract_project_calls


class CallGraphError(ProjectError):
    """Raised when the call graph cannot be assembled."""


@dataclass(frozen=True)
class CallGraphDiagnostic:
    """One resolution or recursion finding (informational, never fatal)."""

    #: "ambiguous-callee", "direct-recursion" or "call-cycle"
    kind: str
    #: qualified name of the function the diagnostic is anchored to
    function: str
    message: str

    def to_dict(self) -> dict[str, str]:
        return {"kind": self.kind, "function": self.function, "message": self.message}


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller -> callee edge of the project call graph."""

    caller: str
    callee: str
    #: the syntactic name at the call sites (the callee's plain name)
    call_name: str
    #: number of syntactic call sites in the caller's body
    sites: int


@dataclass
class CallGraphNode:
    """One project function and its outgoing calls."""

    function: ProjectFunction
    calls: FunctionCalls
    #: call name -> qualified name of the resolved project callee
    resolved: dict[str, str] = field(default_factory=dict)
    #: callee names that resolve to no project definition (external calls)
    external: tuple[str, ...] = ()
    #: callee names defined in several other units (unresolvable, diagnosed)
    ambiguous: tuple[str, ...] = ()
    #: resolved same-unit callees that must be inlined rather than stubbed
    #: with a summary: the caller uses their return value, or they write a
    #: global the caller reads (set during graph construction, diagnosed)
    unsummarisable: tuple[str, ...] = ()

    @property
    def qualified_name(self) -> str:
        return self.function.qualified_name


class CallGraph:
    """The resolved call graph of a project's analyzable functions."""

    def __init__(self, nodes: list[CallGraphNode]):
        self._nodes: dict[str, CallGraphNode] = {
            node.qualified_name: node for node in nodes
        }
        self.diagnostics: list[CallGraphDiagnostic] = []
        self._sccs: list[list[str]] | None = None
        self._components: dict[str, int] | None = None
        self._collect_cycle_diagnostics()
        self._mark_unsummarisable_edges()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_project(
        cls, project: Project, functions: list[ProjectFunction] | None = None
    ) -> "CallGraph":
        """Build and resolve the call graph of *project*.

        ``functions`` defaults to every analyzable function; passing a subset
        restricts the graph (callees outside the subset become external).
        """
        extracted = extract_project_calls(project, functions)
        by_name: dict[str, list[str]] = {}
        for calls in extracted:
            by_name.setdefault(calls.name, []).append(calls.qualified_name)
        by_unit: dict[tuple[str, str], str] = {
            (calls.unit, calls.name): calls.qualified_name for calls in extracted
        }

        nodes: list[CallGraphNode] = []
        ambiguous_diags: list[CallGraphDiagnostic] = []
        for calls in extracted:
            resolved: dict[str, str] = {}
            external: list[str] = []
            ambiguous: list[str] = []
            for callee_name in calls.sites:
                same_unit = by_unit.get((calls.unit, callee_name))
                if same_unit is not None:
                    resolved[callee_name] = same_unit
                    continue
                candidates = by_name.get(callee_name, [])
                if len(candidates) == 1:
                    resolved[callee_name] = candidates[0]
                elif len(candidates) > 1:
                    ambiguous.append(callee_name)
                    ambiguous_diags.append(
                        CallGraphDiagnostic(
                            kind="ambiguous-callee",
                            function=calls.qualified_name,
                            message=(
                                f"call to {callee_name!r} matches several units "
                                f"({', '.join(sorted(candidates))}); treated as "
                                "an external call"
                            ),
                        )
                    )
                else:
                    external.append(callee_name)
            nodes.append(
                CallGraphNode(
                    function=calls.function,
                    calls=calls,
                    resolved=resolved,
                    external=tuple(external),
                    ambiguous=tuple(ambiguous),
                )
            )
        graph = cls(nodes)
        graph.diagnostics.extend(ambiguous_diags)
        return graph

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def node(self, qualified_name: str) -> CallGraphNode:
        try:
            return self._nodes[qualified_name]
        except KeyError as exc:
            raise CallGraphError(
                f"call graph has no function {qualified_name!r}"
            ) from exc

    def nodes(self) -> list[CallGraphNode]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    def functions(self) -> list[ProjectFunction]:
        """Every function, in the project's canonical (unit, name) order."""
        return sorted(
            (node.function for node in self._nodes.values()),
            key=lambda f: (f.unit, f.name),
        )

    def edges(self) -> list[CallEdge]:
        """Every resolved edge, sorted by (caller, callee)."""
        edges = [
            CallEdge(
                caller=node.qualified_name,
                callee=callee,
                call_name=call_name,
                sites=node.calls.sites[call_name],
            )
            for node in self._nodes.values()
            for call_name, callee in node.resolved.items()
        ]
        return sorted(edges, key=lambda e: (e.caller, e.callee))

    def callees_of(self, qualified_name: str) -> list[str]:
        """Resolved callee qualified names, sorted and deduplicated."""
        return sorted(set(self.node(qualified_name).resolved.values()))

    # ------------------------------------------------------------------ #
    # strongly connected components and cycles
    # ------------------------------------------------------------------ #
    def sccs(self) -> list[list[str]]:
        """SCCs of the resolved graph, callees-first (reverse topological).

        Tarjan completes a component only after every component it can reach,
        so the emission order already has callee SCCs before caller SCCs --
        exactly the order transitive fingerprints and summary propagation
        need.  Members inside one SCC are sorted by qualified name.
        """
        if self._sccs is not None:
            return self._sccs
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = 0

        for root in sorted(self._nodes):
            if root in index:
                continue
            work: list[tuple[str, list[str], int]] = [
                (root, self._successors(root), 0)
            ]
            while work:
                name, successors, pos = work.pop()
                if pos == 0:
                    index[name] = lowlink[name] = counter
                    counter += 1
                    stack.append(name)
                    on_stack.add(name)
                advanced = False
                for child_pos in range(pos, len(successors)):
                    child = successors[child_pos]
                    if child not in index:
                        work.append((name, successors, child_pos + 1))
                        work.append((child, self._successors(child), 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[name] = min(lowlink[name], index[child])
                if advanced:
                    continue
                if lowlink[name] == index[name]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == name:
                            break
                    sccs.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[name])
        self._sccs = sccs
        return sccs

    def _successors(self, qualified_name: str) -> list[str]:
        return self.callees_of(qualified_name)

    def _component_of(self) -> dict[str, int]:
        """Cached qualified name -> SCC index mapping."""
        if self._components is None:
            self._components = {
                member: index
                for index, component in enumerate(self.sccs())
                for member in component
            }
        return self._components

    def _is_cyclic_component(self, component: list[str]) -> bool:
        if len(component) > 1:
            return True
        only = component[0]
        return only in self.node(only).resolved.values()

    def cycles(self) -> list[list[str]]:
        """Call cycles: multi-member SCCs and direct self-recursion."""
        return [scc for scc in self.sccs() if self._is_cyclic_component(scc)]

    def _collect_cycle_diagnostics(self) -> None:
        for component in self.cycles():
            if len(component) == 1:
                self.diagnostics.append(
                    CallGraphDiagnostic(
                        kind="direct-recursion",
                        function=component[0],
                        message=(
                            f"{component[0]} calls itself; recursive calls are "
                            "charged the pessimistic unknown-call cost instead "
                            "of a summary"
                        ),
                    )
                )
            else:
                chain = " -> ".join(component + [component[0]])
                for member in component:
                    self.diagnostics.append(
                        CallGraphDiagnostic(
                            kind="call-cycle",
                            function=member,
                            message=(
                                f"call cycle {chain}; calls inside the cycle "
                                "are charged the pessimistic unknown-call cost "
                                "instead of a summary"
                            ),
                        )
                    )

    def _mark_unsummarisable_edges(self) -> None:
        """Flag resolved same-unit callees that cannot be stubbed soundly.

        A summarised callee is replaced by a ``call_overhead + bound`` charge
        during the caller's measurement: its body does not run and its call
        sites evaluate to 0.  That is only sound when neither side can
        observe the difference, so an edge is kept *inline* (analysed in
        dependency order for caching, but executed for real on the caller's
        board) when the caller uses the callee's return value, when the
        callee -- transitively -- writes a unit global that the caller or
        one of its other callees reads (the stub would hide the write), or
        when the callee -- transitively -- reads a unit global that the
        caller or one of its other callees writes (the callee's standalone
        summary was measured without that state, so its bound need not
        cover the call-time behaviour).  Including the *sibling* callees'
        footprints catches ``setter(); reader();`` pairs coupled through a
        global the caller itself never mentions.  Cross-unit callees have
        disjoint global environments in this per-unit analysis model and
        cannot be value-used (the caller's unit types them ``void``), so
        only same-unit edges are checked; calls into the caller's own
        recursion cycle are excluded (they are charged the pessimistic
        unknown-call stub, as inlining would not terminate) -- but a
        recursive call whose *return value* is used gets an
        ``unsound-recursion`` diagnostic, since the stub's 0 result can
        corrupt the measured control flow and no sound treatment exists on
        this interpreter.
        """
        component_of = self._component_of()
        reaching_cycle = self.reaches_cycle()
        # footprint entries are (owning unit, global name): units have
        # disjoint global environments, so a bare-name match across units
        # (every generated unit calls its inputs in0/in1/...) is not coupling
        transitive_writes: dict[str, frozenset[tuple[str, str]]] = {}
        transitive_reads: dict[str, frozenset[tuple[str, str]]] = {}
        for component in self.sccs():  # callees first
            writes: set[tuple[str, str]] = set()
            reads: set[tuple[str, str]] = set()
            for member in component:
                unit = self._nodes[member].function.unit
                writes |= {
                    (unit, g) for g in self._nodes[member].calls.global_writes
                }
                reads |= {
                    (unit, g) for g in self._nodes[member].calls.global_reads
                }
                for callee in self.callees_of(member):
                    if component_of[callee] != component_of[member]:
                        writes |= transitive_writes[callee]
                        reads |= transitive_reads[callee]
            shared_writes = frozenset(writes)
            shared_reads = frozenset(reads)
            for member in component:
                transitive_writes[member] = shared_writes
                transitive_reads[member] = shared_reads

        for name in sorted(self._nodes):
            node = self._nodes[name]
            same_unit_callees = {
                callee
                for callee in node.resolved.values()
                if self._nodes[callee].function.unit == node.function.unit
            }
            unsafe: list[str] = []
            for call_name, callee in sorted(node.resolved.items()):
                if component_of[callee] == component_of[name]:
                    if call_name in node.calls.value_used:
                        self.diagnostics.append(
                            CallGraphDiagnostic(
                                kind="unsound-recursion",
                                function=name,
                                message=(
                                    f"recursive call to {call_name!r} in {name} "
                                    "uses its return value; the stub returns 0, "
                                    "so measured control flow may diverge from "
                                    "real execution and the bound is unreliable"
                                ),
                            )
                        )
                    continue
                if self._nodes[callee].function.unit != node.function.unit:
                    continue
                # the caller-side footprint: its own accesses plus whatever
                # its other callees touch transitively (sibling coupling)
                caller_unit = node.function.unit
                footprint_reads = {
                    (caller_unit, g) for g in node.calls.global_reads
                }
                footprint_writes = {
                    (caller_unit, g) for g in node.calls.global_writes
                }
                for sibling in same_unit_callees - {callee}:
                    footprint_reads |= transitive_reads[sibling]
                    footprint_writes |= transitive_writes[sibling]
                value_used = call_name in node.calls.value_used
                writes_read = transitive_writes[callee] & footprint_reads
                reads_written = transitive_reads[callee] & footprint_writes
                if not value_used and not writes_read and not reads_written:
                    continue
                if callee in reaching_cycle:
                    # inlining would execute real (non-terminating)
                    # recursion; keep the summary stub and warn instead
                    self.diagnostics.append(
                        CallGraphDiagnostic(
                            kind="unsound-recursion",
                            function=name,
                            message=(
                                f"call to {call_name!r} from {name} couples "
                                "with the caller but reaches a recursion "
                                "cycle, so it cannot be inlined; the summary "
                                "charge stays and the bound is unreliable"
                            ),
                        )
                    )
                    continue
                unsafe.append(call_name)
                if value_used:
                    reason = "its return value is used"
                elif writes_read:
                    reason = (
                        "it writes global(s) the caller or a sibling callee "
                        "reads: "
                        + ", ".join(sorted(g for _, g in writes_read))
                    )
                else:
                    reason = (
                        "it reads global(s) the caller or a sibling callee "
                        "writes: "
                        + ", ".join(sorted(g for _, g in reads_written))
                    )
                self.diagnostics.append(
                    CallGraphDiagnostic(
                        kind="inlined-callee",
                        function=name,
                        message=(
                            f"call to {call_name!r} from {name} cannot be "
                            f"summarised ({reason}); the callee is inlined "
                            "during measurement instead"
                        ),
                    )
                )
            node.unsummarisable = tuple(unsafe)

    # ------------------------------------------------------------------ #
    # scheduling support
    # ------------------------------------------------------------------ #
    def dependencies(self) -> dict[str, tuple[str, ...]]:
        """Acyclic caller -> callee dependency map (intra-SCC edges dropped)."""
        component_of = self._component_of()
        deps: dict[str, tuple[str, ...]] = {}
        for node in self.nodes():
            name = node.qualified_name
            deps[name] = tuple(
                callee
                for callee in self.callees_of(name)
                if component_of[callee] != component_of[name]
            )
        return deps

    def waves(self) -> list[list[str]]:
        """Topological waves: wave 0 is leaves, later waves their callers.

        Wave numbers are the dependency depth over :meth:`dependencies`
        (intra-cycle edges dropped) -- exactly how the project scheduler
        places jobs, so this report always matches the executed schedule.
        """
        deps = self.dependencies()
        wave_of: dict[str, int] = {}
        for component in self.sccs():  # callees first
            for member in component:
                wave_of[member] = max(
                    (wave_of[callee] + 1 for callee in deps[member]), default=0
                )
        if not wave_of:
            return []
        waves: list[list[str]] = [[] for _ in range(max(wave_of.values()) + 1)]
        for name in sorted(wave_of):
            waves[wave_of[name]].append(name)
        return waves

    def reaches_cycle(self) -> frozenset[str]:
        """Functions whose resolved call closure contains a recursion cycle.

        Includes the cycle members themselves and every transitive caller;
        the scheduler disables the exhaustive end-to-end comparison for all
        of them, since its unstubbed verification board would execute the
        real (non-terminating) recursion.
        """
        component_of = self._component_of()
        reaches: dict[str, bool] = {}
        for component in self.sccs():  # callees first
            hit = self._is_cyclic_component(component) or any(
                reaches[callee]
                for member in component
                for callee in self.callees_of(member)
                if component_of[callee] != component_of[member]
            )
            for member in component:
                reaches[member] = hit
        return frozenset(name for name, flag in reaches.items() if flag)

    def cyclic_callee_names(self, qualified_name: str) -> tuple[str, ...]:
        """Call names of *qualified_name* that resolve into its own SCC."""
        component_of = self._component_of()
        node = self.node(qualified_name)
        return tuple(
            sorted(
                call_name
                for call_name, callee in node.resolved.items()
                if component_of[callee] == component_of[qualified_name]
            )
        )

    def closure(self, selected: Iterable[str]) -> list[ProjectFunction]:
        """The selected functions plus their transitive resolved callees.

        ``selected`` holds plain function names (matched across every unit,
        like ``Project.functions(only=...)``); unknown names raise
        :class:`ProjectError`.  The result is sorted by (unit, name), the
        project's canonical function order.
        """
        wanted = set(selected)
        found = {node.function.name for node in self._nodes.values()}
        missing = wanted - found
        if missing:
            raise ProjectError(
                f"no function named {', '.join(sorted(missing))} in the project"
            )
        frontier = [
            name
            for name, node in self._nodes.items()
            if node.function.name in wanted
        ]
        included: set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in included:
                continue
            included.add(name)
            frontier.extend(self.callees_of(name))
        return sorted(
            (self._nodes[name].function for name in included),
            key=lambda f: (f.unit, f.name),
        )

    # ------------------------------------------------------------------ #
    # transitive fingerprints
    # ------------------------------------------------------------------ #
    def transitive_fingerprints(
        self, unknown_call_cycles: int | None = None
    ) -> dict[str, str]:
        """SHA-256 fingerprints closed over resolved calls.

        A function's transitive fingerprint hashes its own content
        fingerprint, the transitive fingerprints of its out-of-cycle resolved
        callees, the content fingerprints of every member of its call cycle
        (when it is on one), and the *names* of its external and ambiguous
        callees (so a previously-external name that gains a project
        definition re-keys the caller).  Editing a leaf therefore changes the
        transitive fingerprint of exactly the leaf and its transitive
        callers.

        ``unknown_call_cycles`` is the pessimistic charge used for calls
        inside recursion cycles and for ambiguous callee names; it enters
        the fingerprint of every function whose bound depends on it --
        cyclic functions and functions with ambiguous callees (and,
        transitively, their callers) -- so re-running with a different
        charge cannot return stale cached bounds.  Projects without cycles
        or ambiguity are unaffected.
        """
        fingerprints: dict[str, str] = {}
        deps = self.dependencies()
        for component in self.sccs():  # callees first: deps already resolved
            cyclic = self._is_cyclic_component(component)
            for member in component:
                node = self._nodes[member]
                parts = [f"self:{node.function.fingerprint}"]
                if cyclic or node.ambiguous:
                    parts.append(f"unknown-call:{unknown_call_cycles}")
                if cyclic:
                    parts.extend(
                        f"cycle:{self._nodes[other].function.fingerprint}"
                        for other in component
                    )
                parts.extend(
                    f"callee:{fingerprints[callee]}"
                    for callee in deps[member]
                )
                parts.extend(f"external:{name}" for name in sorted(node.external))
                parts.extend(f"ambiguous:{name}" for name in sorted(node.ambiguous))
                digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
                fingerprints[member] = digest.hexdigest()
        return fingerprints

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        waves = self.waves()
        return {
            "functions": [
                {
                    "function": node.qualified_name,
                    "calls": {
                        call_name: {
                            "resolved": node.resolved.get(call_name),
                            "sites": sites,
                        }
                        for call_name, sites in sorted(node.calls.sites.items())
                    },
                    "external": sorted(node.external),
                    "inlined": sorted(node.unsummarisable),
                }
                for node in self.nodes()
            ],
            "edges": [
                {"caller": e.caller, "callee": e.callee, "sites": e.sites}
                for e in self.edges()
            ],
            "waves": waves,
            "cycles": self.cycles(),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }

    def to_text(self) -> str:
        waves = self.waves()
        lines = [
            f"Call graph: {len(self._nodes)} function(s), "
            f"{len(self.edges())} resolved edge(s), {len(waves)} wave(s)"
        ]
        for index, wave in enumerate(waves):
            lines.append(f"  wave {index}:")
            for name in wave:
                node = self.node(name)
                callees = self.callees_of(name)
                called = ", ".join(callees) if callees else "-"
                lines.append(f"    {name:<28} calls: {called}")
                if node.external:
                    lines.append(
                        f"    {'':<28} external: {', '.join(sorted(node.external))}"
                    )
        for diag in self.diagnostics:
            lines.append(f"  [{diag.kind}] {diag.message}")
        return "\n".join(lines)
