"""Deterministic fault injection for the whole-project pipeline.

Chaos testing a WCET analyzer only proves something if every injected fault
is *reproducible*: the same :class:`FaultPlan` (seed + specs) must trip the
same faults at the same places regardless of worker count or pool
scheduling.  Three design rules make that true:

* **Site-addressed injection points.**  Faults fire at named sites --
  :data:`SITES` lists the supported ones (``cache.read``, ``cache.write``,
  ``pool.submit``, ``job.execute``, ``mc.solve``, ``interp.step``,
  ``service.request``) -- and a spec only ever fires at its own site.
* **Deterministic hit selection.**  ``@N`` specs count *hits of the owning
  injector*; the scheduler counts scheduler-side sites (cache, pool, job
  dispatch) in job order, and ships a per-job sub-plan into each job so
  job-internal sites (``mc.solve``, ``interp.step``) count hits of that
  job's own deterministic execution.  ``rate=P`` specs do not consume a
  shared random stream: the decision is a pure hash of
  ``(plan seed, site, key, hit index)``, so it is identical whether jobs
  run serially, on two workers or on twenty.
* **Typed failures.**  A firing ``raise`` spec raises :class:`InjectedFault`
  -- its own exception type, so product code can treat injected faults as
  the transient infrastructure failures they simulate without ever masking
  a genuine bug, and tests can assert on exactly what fired.

Spec syntax (the CLI's ``--inject-fault SITE:SPEC``)::

    cache.write:raise@2        raise on the 2nd hit of the site
    cache.write:raise@2x3      raise on hits 2, 3 and 4
    job.execute:raise@3+       raise on every hit from the 3rd on
    job.execute:rate=0.1       raise on ~10% of hits (seeded, deterministic)
    interp.step:delay=5@1      sleep 5 ms on the 1st hit
    cache.write:corrupt@1      corrupt the payload of the 1st hit
    mc.solve:raise             raise on every hit
"""

from __future__ import annotations

import contextlib
import enum
import hashlib
import time
from dataclasses import dataclass, field

from .. import perf

#: the injection points the pipeline exposes; ``service.request`` fires in
#: the analysis daemon's request dispatch (:mod:`repro.service`) and must
#: surface as a well-formed retryable HTTP error, never a hung connection
SITES = frozenset(
    {
        "cache.read",
        "cache.write",
        "pool.submit",
        "job.execute",
        "mc.solve",
        "interp.step",
        "service.request",
    }
)

#: sites whose hits happen *inside* a job's own execution (counted per job)
JOB_SITES = frozenset({"job.execute", "mc.solve", "interp.step"})


class FaultPlanError(ValueError):
    """Raised for an unparsable or unknown ``--inject-fault`` spec."""


class InjectedFault(Exception):
    """A deliberately injected failure (never raised by real logic)."""

    def __init__(self, site: str, description: str, hit: int):
        super().__init__(f"injected fault at {site} (hit {hit}): {description}")
        self.site = site
        self.description = description
        self.hit = hit

    def __reduce__(self):
        # the default Exception reduction replays ``args`` (the formatted
        # message) into ``__init__``, which takes three arguments -- an
        # injected fault crossing a process-pool boundary must unpickle
        return (InjectedFault, (self.site, self.description, self.hit))


class FaultKind(enum.Enum):
    RAISE = "raise"
    DELAY = "delay"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``SITE:SPEC`` injection rule."""

    site: str
    kind: FaultKind
    #: 1-based first hit the spec fires on (None with ``rate``)
    nth: int | None = 1
    #: number of consecutive hits affected from ``nth`` on (0 = unbounded)
    times: int = 0
    #: independent per-hit firing probability (replaces nth/times)
    rate: float | None = None
    #: sleep duration of DELAY faults
    delay_ms: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``SITE:KIND[=ARG][@N[xT|+]]`` (see the module docstring)."""
        site, sep, spec = text.partition(":")
        if not sep or not spec:
            raise FaultPlanError(
                f"fault spec {text!r} is not of the form SITE:SPEC"
            )
        if site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {site!r} (expected one of "
                f"{', '.join(sorted(SITES))})"
            )
        body, _, hits = spec.partition("@")
        kind_text, _, arg = body.partition("=")
        try:
            kind = FaultKind(kind_text)
        except ValueError as exc:
            raise FaultPlanError(
                f"unknown fault kind {kind_text!r} in {text!r} "
                "(expected raise, delay or corrupt)"
            ) from exc

        delay_ms = 0
        if kind is FaultKind.DELAY:
            try:
                delay_ms = int(arg)
            except ValueError as exc:
                raise FaultPlanError(
                    f"delay fault {text!r} needs delay=MILLISECONDS"
                ) from exc
        elif arg:
            raise FaultPlanError(
                f"{kind.value} faults take no argument ({text!r})"
            )

        nth: int | None = 1
        times = 0
        if hits:
            if hits.endswith("+"):
                hits, times = hits[:-1], 0
            elif "x" in hits:
                hits, _, count = hits.partition("x")
                try:
                    times = int(count)
                except ValueError as exc:
                    raise FaultPlanError(f"bad repeat count in {text!r}") from exc
            else:
                times = 1
            try:
                nth = int(hits)
            except ValueError as exc:
                raise FaultPlanError(f"bad hit index in {text!r}") from exc
            if nth < 1:
                raise FaultPlanError(f"hit index must be >= 1 in {text!r}")
        return cls(
            site=site, kind=kind, nth=nth, times=times, rate=None, delay_ms=delay_ms
        )

    @classmethod
    def parse_any(cls, text: str) -> "FaultSpec":
        """Parse either the positional grammar or the ``rate=P`` form."""
        site, _, spec = text.partition(":")
        body = spec.partition("@")[0]
        if body.startswith("rate="):
            if site not in SITES:
                raise FaultPlanError(
                    f"unknown fault site {site!r} (expected one of "
                    f"{', '.join(sorted(SITES))})"
                )
            try:
                rate = float(body[len("rate="):])
            except ValueError as exc:
                raise FaultPlanError(f"bad rate in {text!r}") from exc
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"rate must be in [0, 1] in {text!r}")
            return cls(site=site, kind=FaultKind.RAISE, nth=None, rate=rate)
        return cls.parse(text)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        if self.rate is not None:
            return f"{self.site}:rate={self.rate}"
        suffix = ""
        if self.nth is not None:
            if self.times == 1:
                suffix = f"@{self.nth}"
            elif self.times == 0:
                suffix = f"@{self.nth}+" if self.nth > 1 else ""
            else:
                suffix = f"@{self.nth}x{self.times}"
        arg = f"={self.delay_ms}" if self.kind is FaultKind.DELAY else ""
        return f"{self.site}:{self.kind.value}{arg}{suffix}"

    def fires_on(self, hit: int, seed: int, key: str) -> bool:
        """Whether this spec fires on *hit* (1-based) of its site."""
        if self.rate is not None:
            digest = hashlib.sha256(
                f"{seed}|{self.site}|{key}|{hit}".encode("utf-8")
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            return draw < self.rate
        if self.nth is None:
            return False
        if hit < self.nth:
            return False
        return self.times == 0 or hit < self.nth + self.times


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the full set of injection rules of one run."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_args(cls, args: list[str] | None, seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI ``--inject-fault`` values."""
        return cls(
            seed=seed,
            specs=tuple(FaultSpec.parse_any(text) for text in (args or [])),
        )

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def for_sites(self, *sites: str) -> "FaultPlan":
        """The sub-plan containing only specs of the given sites."""
        return FaultPlan(
            seed=self.seed,
            specs=tuple(spec for spec in self.specs if spec.site in sites),
        )

    def job_plan(self) -> "FaultPlan":
        """The sub-plan a job carries into its own (possibly remote) process."""
        return self.for_sites(*(JOB_SITES - {"job.execute"}))

    def describe(self) -> list[str]:
        return [spec.describe() for spec in self.specs]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against per-site hit counters.

    One injector's counters belong to one deterministic execution scope: the
    scheduler owns one for scheduler-side sites, and every job execution gets
    a fresh one for its internal sites, so hit counts never depend on how
    jobs interleave.
    """

    def __init__(self, plan: FaultPlan | None):
        self._plan = plan or FaultPlan()
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self._plan.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._hits: dict[str, int] = {}
        #: descriptions of every fault that actually fired (diagnostics)
        self.fired: list[str] = []

    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def fired_count(self) -> int:
        return len(self.fired)

    def hits(self, site: str) -> int:
        return self._hits.get(site, 0)

    def fire(self, site: str, key: str = "") -> FaultSpec | None:
        """Count one hit of *site*; return the spec that fires, if any."""
        specs = self._by_site.get(site)
        if not specs:
            return None
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        for spec in specs:
            if spec.fires_on(hit, self._plan.seed, key):
                self.fired.append(f"{spec.describe()} (hit {hit}, key {key!r})")
                perf.add(f"resilience.injected.{site}")
                return spec
        return None

    def check(self, site: str, key: str = "") -> FaultSpec | None:
        """Count a hit and *act* on a firing spec.

        RAISE specs raise :class:`InjectedFault`, DELAY specs sleep, CORRUPT
        specs are returned to the caller (only the cache knows how to corrupt
        its own payloads).  Returns the fired spec (or None) so call sites
        can record diagnostics.
        """
        spec = self.fire(site, key)
        if spec is None:
            return None
        if spec.kind is FaultKind.RAISE:
            raise InjectedFault(site, spec.describe(), self._hits[site])
        if spec.kind is FaultKind.DELAY:
            time.sleep(spec.delay_ms / 1000.0)
        return spec


# ---------------------------------------------------------------------- #
# per-job deadline (cooperative wall-clock timeout)
# ---------------------------------------------------------------------- #
class JobTimeout(Exception):
    """A job overran its wall-clock allowance (quarantine, do not retry)."""


class Deadline:
    """Cooperative wall-clock deadline polled at cheap pipeline points.

    The analysis is single-threaded and deterministic, so preemption is
    neither possible nor wanted; instead the interpreter (every 1024 steps)
    and the query engine (per portfolio stage) poll the active deadline and
    raise :class:`JobTimeout` once it has passed -- the same mechanism in
    serial, pooled and worker execution.
    """

    __slots__ = ("seconds", "_expires")

    def __init__(self, seconds: float):
        self.seconds = seconds
        self._expires = time.perf_counter() + seconds

    def expired(self) -> bool:
        return time.perf_counter() >= self._expires

    def poll(self) -> None:
        if self.expired():
            raise JobTimeout(
                f"job exceeded its wall-clock allowance of {self.seconds:.3f}s"
            )


# ---------------------------------------------------------------------- #
# ambient context
# ---------------------------------------------------------------------- #
@dataclass
class ResilienceContext:
    """The injector and deadline active for the currently executing job."""

    injector: FaultInjector | None = None
    deadline: Deadline | None = None
    #: diagnostics of degradations observed while this context was active
    events: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.events.append(message)

    @property
    def fired(self) -> list[str]:
        return list(self.injector.fired) if self.injector is not None else []


#: process-wide active context (set per job execution; None on clean paths)
_ACTIVE: ResilienceContext | None = None


def current() -> ResilienceContext | None:
    """The context of the currently executing job (None outside chaos runs)."""
    return _ACTIVE


@contextlib.contextmanager
def activate(context: ResilienceContext):
    """Install *context* as the ambient resilience context for the body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = context
    try:
        yield context
    finally:
        _ACTIVE = previous


def maybe_fault(site: str, key: str = "") -> FaultSpec | None:
    """Fire *site* on the ambient injector, if any (no-op on clean paths)."""
    context = _ACTIVE
    if context is None or context.injector is None:
        return None
    return context.injector.check(site, key)


def poll_deadline() -> None:
    """Poll the ambient deadline, if any (raises :class:`JobTimeout`)."""
    context = _ACTIVE
    if context is not None and context.deadline is not None:
        context.deadline.poll()
