"""Resilience layer: deterministic fault injection, retries, deadlines.

This package hardens the whole-project pipeline for the ROADMAP's
service/distributed directions: every failure mode the scheduler, cache and
analyzer must survive can be injected deterministically (``--inject-fault``),
and the recovery machinery (bounded retries with seeded backoff, cooperative
per-job deadlines, quarantine) is shared between the serial and pooled
execution paths.
"""

from __future__ import annotations

from .faults import (
    JOB_SITES,
    SITES,
    Deadline,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    JobTimeout,
    ResilienceContext,
    activate,
    current,
    maybe_fault,
    poll_deadline,
)
from .retry import (
    PERMANENT_ERRORS,
    TRANSIENT_ERRORS,
    RetryPolicy,
    classify_error,
    execute_with_retry,
)

__all__ = [
    "JOB_SITES",
    "SITES",
    "Deadline",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "JobTimeout",
    "ResilienceContext",
    "activate",
    "current",
    "maybe_fault",
    "poll_deadline",
    "PERMANENT_ERRORS",
    "TRANSIENT_ERRORS",
    "RetryPolicy",
    "classify_error",
    "execute_with_retry",
]
