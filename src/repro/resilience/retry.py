"""Bounded retries with deterministic exponential backoff.

The scheduler retries *transient* job failures (a crashed worker, an I/O
hiccup, an injected fault) a bounded number of times before quarantining the
job.  Backoff delays are fully deterministic: the jitter is a pure hash of
``(seed, key, attempt)``, so a chaos test under a fixed :class:`FaultPlan`
seed sleeps the exact same schedule every run.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pickle import PicklingError
from typing import Callable, TypeVar

from .faults import InjectedFault, JobTimeout

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failing job is retried."""

    max_attempts: int = 3
    base_delay_ms: int = 10
    max_delay_ms: int = 1000
    backoff_factor: float = 2.0
    #: +/- fraction of the capped delay added as deterministic jitter
    jitter: float = 0.1
    #: seed the jitter hash is keyed on (the fault plan's seed in chaos runs)
    seed: int = 0

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff delay in seconds before retry *attempt* (1-based)."""
        if attempt < 1:
            return 0.0
        delay = self.base_delay_ms * (self.backoff_factor ** (attempt - 1))
        delay = min(delay, float(self.max_delay_ms))
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.seed}|{key}|{attempt}".encode("utf-8")
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return delay / 1000.0


#: exception types treated as transient (worth retrying)
TRANSIENT_ERRORS = (InjectedFault, OSError, BrokenProcessPool, ConnectionError)

#: exception types that are permanent by construction -- a deterministic
#: computation will time out or fail to pickle again, so retrying wastes
#: the wall-clock budget
PERMANENT_ERRORS = (JobTimeout, PicklingError)


def classify_error(error: BaseException) -> str:
    """``"transient"`` (retry) or ``"permanent"`` (quarantine/fail now)."""
    if isinstance(error, PERMANENT_ERRORS):
        return "permanent"
    if isinstance(error, TRANSIENT_ERRORS):
        return "transient"
    return "permanent"


def execute_with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy,
    key: str = "",
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> tuple[T, int]:
    """Run *operation*, retrying transient failures per *policy*.

    Returns ``(result, retries_used)``.  Permanent errors and exhausted
    attempts re-raise the last error.
    """
    attempts = max(1, policy.max_attempts)
    last_error: BaseException | None = None
    for attempt in range(1, attempts + 1):
        try:
            return operation(), attempt - 1
        except Exception as error:  # noqa: BLE001 - classified below
            last_error = error
            if classify_error(error) == "permanent" or attempt == attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            time.sleep(policy.delay_for(attempt, key))
    raise last_error if last_error is not None else RuntimeError("unreachable")
