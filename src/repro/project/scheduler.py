"""Job-graph scheduler driving :class:`WcetAnalyzer` over a whole project.

Every analyzable function becomes one :class:`AnalysisJob`.  In the default
interprocedural mode the scheduler builds the project call graph
(:mod:`repro.callgraph`), orders the jobs into topological *dependency
waves* -- callees before callers -- and feeds each completed callee's WCET
bound into its callers as a :class:`~repro.callgraph.summaries.CalleeSummary`:
the caller's measurement charges every summarised call site
``call_overhead + callee bound`` instead of guessing a library cost.  Calls
that cannot be summarised (recursion cycles, ambiguous names) are charged
the pessimistic unknown-call cost, and callees whose stubbing would be
unsound -- the caller uses their return value or reads globals they write
-- are inlined on the caller's board instead; both cases are reported as
call-graph diagnostics.

Result caching keys on *transitive fingerprints* (the function's content
hash closed over its resolved callees), so editing a leaf callee invalidates
exactly the leaf plus its transitive callers while unrelated functions stay
warm.

Within a wave the scheduler first probes the persistent result cache
(:mod:`repro.project.cache`); the remaining jobs are executed either
serially in-process or on a ``concurrent.futures.ProcessPoolExecutor``.  The
analysis is fully seeded (random, genetic and model-checking phases all
derive from the :class:`~repro.pipeline.analyzer.AnalyzerConfig`) and callee
bounds are fixed before a wave starts, so serial and parallel runs produce
bit-identical :class:`~repro.project.report.FunctionSummary` payloads -- the
scheduler only changes *where* a job runs, never *what* it computes.  If the
process pool cannot be created or dies (sandboxed environments, pickling
restrictions), the scheduler falls back to serial execution and records the
reason in ``ProjectReport.fallback_reason`` and the perf registry
(``project.scheduler.pool_fallback.*``) rather than failing the batch.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import enum
import pickle
import time
from dataclasses import dataclass, field

from .. import perf
from ..minic import parse_and_analyze
from ..pipeline.analyzer import AnalyzerConfig, WcetAnalyzer
from .cache import ResultCache
from .model import Project, ProjectError, ProjectFunction
from .report import FunctionSummary, ProjectFailure, ProjectReport


class JobState(enum.Enum):
    PENDING = "pending"
    CACHED = "cached"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class AnalysisJob:
    """One function analysis in the project job graph."""

    job_id: int
    function: ProjectFunction
    cache_key: str = ""
    #: job ids that must complete before this job may run
    deps: tuple[int, ...] = ()
    #: dependency wave the job runs on (assigned by the scheduler)
    wave: int = 0
    #: call name -> qualified name of the resolved project callee
    resolved_map: dict[str, str] = field(default_factory=dict)
    #: call names that resolve into the job's own recursion cycle
    cyclic_call_names: tuple[str, ...] = ()
    #: resolved call names that must be inlined instead of summarised
    #: (return value used / global coupling; see the call-graph diagnostics)
    unsummarisable: tuple[str, ...] = ()
    #: call names whose definition is ambiguous across units (charged the
    #: pessimistic unknown-call cost)
    ambiguous_call_names: tuple[str, ...] = ()
    #: True when the job's resolved call closure contains a recursion cycle
    #: (the exhaustive end-to-end comparison is disabled for such jobs)
    reaches_recursion: bool = False
    #: call name -> syntactic site count in the function body
    site_counts: dict[str, int] = field(default_factory=dict)
    #: the job's own call sites charged with a genuine callee summary
    #: (pessimistic recursion/ambiguity charges excluded)
    summary_sites: int = 0
    #: content fingerprint closed over resolved callees (keys the cache)
    transitive_fingerprint: str = ""
    #: call name -> WCET bound charged per call site (fixed per wave)
    callee_bounds: dict[str, int] = field(default_factory=dict)
    state: JobState = JobState.PENDING
    summary: FunctionSummary | None = None
    error: str | None = None

    @property
    def qualified_name(self) -> str:
        return self.function.qualified_name

    @property
    def resolved_callees(self) -> tuple[str, ...]:
        """Resolved callee qualified names, sorted and deduplicated."""
        return tuple(sorted(set(self.resolved_map.values())))


def _execute_analysis(
    unit_name: str,
    source: str,
    function_name: str,
    config: AnalyzerConfig,
    callee_bounds: dict[str, int],
) -> tuple[dict, float]:
    """Analyse one function from its unit source; return (summary dict, seconds).

    Module-level so it pickles into process-pool workers; the worker re-parses
    the unit from source, which keeps the inter-process payload to plain
    strings plus the (picklable, dataclass-only) config and bound mapping.
    """
    started = time.perf_counter()
    analyzed = parse_and_analyze(source, filename=unit_name)
    report = WcetAnalyzer(
        analyzed, function_name, config, callee_bounds=callee_bounds
    ).analyze()
    summary = FunctionSummary.from_report(unit_name, config.partitioner, report)
    return summary.to_dict(), time.perf_counter() - started


class ProjectScheduler:
    """Run every analyzable function of a project through the WCET pipeline."""

    def __init__(
        self,
        project: Project,
        config: AnalyzerConfig | None = None,
        cache: ResultCache | None = None,
        workers: int = 1,
        only: list[str] | None = None,
        interprocedural: bool = True,
        unknown_call_cycles: int | None = None,
    ):
        from ..callgraph.summaries import (
            DEFAULT_UNKNOWN_CALL_CYCLES,
            CalleeSummaryStore,
        )

        self._project = project
        self._config = config or AnalyzerConfig()
        self._cache = cache or ResultCache.disabled()
        self._workers = max(1, int(workers))
        self._only = only
        self._interprocedural = interprocedural
        self._unknown_call_cycles = (
            DEFAULT_UNKNOWN_CALL_CYCLES
            if unknown_call_cycles is None
            else unknown_call_cycles
        )
        self._summaries = CalleeSummaryStore()
        self._jobs: list[AnalysisJob] | None = None
        #: the resolved project call graph (built lazily with the jobs;
        #: ``None`` in flat mode)
        self.callgraph = None
        #: execution mode of the last run ("serial", "process-pool", or
        #: "serial-fallback" when a pool could not be created or died)
        self.mode = "serial"
        #: why the scheduler fell back to serial execution (None = no fallback)
        self.fallback_reason: str | None = None
        #: number of dependency waves executed by the last run
        self.waves_executed = 0

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return self._workers

    def jobs(self) -> list[AnalysisJob]:
        """The job graph (built once, ordered by (unit, function))."""
        if self._jobs is None:
            if self._interprocedural:
                self._jobs = self._build_interprocedural_jobs()
            else:
                self._jobs = [
                    AnalysisJob(
                        job_id=index,
                        function=function,
                        cache_key=self._cache.key_for(
                            function.fingerprint, self._config
                        ),
                        transitive_fingerprint=function.fingerprint,
                    )
                    for index, function in enumerate(
                        self._project.functions(only=self._only)
                    )
                ]
        return self._jobs

    def _build_interprocedural_jobs(self) -> list[AnalysisJob]:
        """Resolve the call graph and key every job on a transitive fingerprint.

        With an ``only`` filter the selection is closed over resolved callees:
        a caller's bound cannot be computed without its callees' bounds, so
        restricting to ``--function caller`` still analyses (or recalls from
        cache) everything the caller transitively calls.
        """
        # imported lazily: repro.callgraph builds on repro.project.model, so a
        # module-level import would be circular through the package __init__
        from ..callgraph.graph import CallGraph

        graph = CallGraph.from_project(self._project)
        self.callgraph = graph
        if self._only is not None:
            functions = graph.closure(self._only)
        else:
            functions = graph.functions()
        if not functions:
            raise ProjectError("project defines no analyzable functions")
        fingerprints = graph.transitive_fingerprints(
            unknown_call_cycles=self._unknown_call_cycles
        )
        dependencies = graph.dependencies()
        reaches_cycle = graph.reaches_cycle()
        index_of = {
            function.qualified_name: index
            for index, function in enumerate(functions)
        }
        jobs: list[AnalysisJob] = []
        for index, function in enumerate(functions):
            qualified = function.qualified_name
            node = graph.node(qualified)
            jobs.append(
                AnalysisJob(
                    job_id=index,
                    function=function,
                    cache_key=self._cache.key_for(
                        fingerprints[qualified], self._config
                    ),
                    deps=tuple(
                        index_of[callee]
                        for callee in dependencies[qualified]
                        if callee in index_of
                    ),
                    resolved_map=dict(node.resolved),
                    cyclic_call_names=graph.cyclic_callee_names(qualified),
                    unsummarisable=node.unsummarisable,
                    ambiguous_call_names=node.ambiguous,
                    reaches_recursion=qualified in reaches_cycle,
                    site_counts=dict(node.calls.sites),
                    transitive_fingerprint=fingerprints[qualified],
                )
            )
        return jobs

    # ------------------------------------------------------------------ #
    def run(self) -> ProjectReport:
        """Execute the job graph wave by wave and aggregate the project report."""
        started = time.perf_counter()
        jobs = self.jobs()
        perf.add("project.jobs", len(jobs))

        with perf.timed("project.schedule"):
            waves = self._waves(jobs)
            self.waves_executed = len(waves)
            perf.add("project.scheduler.waves", len(waves))
            for wave_index, wave in enumerate(waves):
                ready: list[AnalysisJob] = []
                for job in wave:
                    job.wave = wave_index
                    if not self._fail_on_broken_deps(job, jobs):
                        ready.append(job)
                runnable = self._probe_cache(ready)
                self._execute(runnable)
                self._harvest_summaries(wave)

        failures = [
            ProjectFailure(
                unit=job.function.unit,
                function=job.function.name,
                error=job.error or "unknown error",
            )
            for job in jobs
            if job.state is JobState.FAILED
        ]
        summaries = [job.summary for job in jobs if job.summary is not None]
        reused_calls = sum(
            summary.summarised_call_sites for summary in summaries
        )
        perf.add("project.scheduler.summary_reuse_calls", reused_calls)
        return ProjectReport(
            functions=summaries,
            failures=failures,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_dir=str(self._cache.root) if self._cache.root else None,
            mode=self.mode,
            fallback_reason=self.fallback_reason,
            workers=self._workers,
            waves=self.waves_executed,
            summary_reuse_calls=reused_calls,
            callgraph=self.callgraph.to_dict() if self.callgraph else None,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _waves(jobs: list[AnalysisJob]) -> list[list[AnalysisJob]]:
        """Topological waves of the dependency graph (callees before callers)."""
        done: set[int] = set()
        remaining = list(jobs)
        waves: list[list[AnalysisJob]] = []
        while remaining:
            wave = [job for job in remaining if all(d in done for d in job.deps)]
            if not wave:
                cycle = ProjectScheduler._find_dependency_cycle(remaining)
                raise ProjectError(
                    "job graph contains a dependency cycle: "
                    + " -> ".join(cycle)
                )
            waves.append(wave)
            done.update(job.job_id for job in wave)
            remaining = [job for job in remaining if job.job_id not in done]
        return waves

    @staticmethod
    def _find_dependency_cycle(remaining: list[AnalysisJob]) -> list[str]:
        """Name the functions on one dependency cycle among *remaining* jobs."""
        by_id = {job.job_id: job for job in remaining}
        visited: set[int] = set()
        for start in remaining:
            if start.job_id in visited:
                continue
            path: list[int] = []
            position: dict[int, int] = {}
            current: AnalysisJob | None = start
            while current is not None:
                if current.job_id in position:
                    cycle = path[position[current.job_id]:] + [current.job_id]
                    return [by_id[job_id].qualified_name for job_id in cycle]
                if current.job_id in visited:
                    break
                position[current.job_id] = len(path)
                path.append(current.job_id)
                current = next(
                    (by_id[d] for d in current.deps if d in by_id), None
                )
            visited.update(path)
        # unsatisfiable deps that point outside the job graph, not a cycle
        return sorted(job.qualified_name for job in remaining)

    def _fail_on_broken_deps(
        self, job: AnalysisJob, jobs: list[AnalysisJob]
    ) -> bool:
        """Fail *job* when a callee it depends on failed; True when failed."""
        broken = [
            jobs[dep].qualified_name
            for dep in job.deps
            if jobs[dep].state is JobState.FAILED
        ]
        if not broken:
            return False
        job.state = JobState.FAILED
        job.error = (
            "callee analysis failed, no summary to charge: "
            + ", ".join(sorted(broken))
        )
        perf.add("project.jobs_failed")
        return True

    def _callee_bounds_for(self, job: AnalysisJob) -> dict[str, int]:
        """The per-call-name charges of one job, fixed before its wave runs.

        Summarisable resolved callees charge their computed bound; calls
        into the job's own recursion cycle and ambiguous names charge the
        pessimistic unknown-call cost; callees flagged unsummarisable by
        the call graph are left out entirely, so the board inlines their
        real body (the seed behaviour) instead of stubbing it.  The map is
        then closed over those inlined bodies: the calls *they* make keep
        exactly the charges they had in the callee's own standalone
        analysis, so inlining never silently downgrades an interprocedural
        charge to the default external cost.
        """
        summarisable = {
            call_name: callee
            for call_name, callee in job.resolved_map.items()
            if call_name not in job.unsummarisable
        }
        bounds = self._summaries.bounds_for(
            summarisable,
            cyclic_names=job.cyclic_call_names,
            unknown_call_cycles=self._unknown_call_cycles,
        )
        for call_name in job.ambiguous_call_names:
            bounds[call_name] = self._unknown_call_cycles
        if job.unsummarisable and self.callgraph is not None:
            frontier = [job.resolved_map[name] for name in job.unsummarisable]
            visited: set[str] = set()
            demanded_inline = set(job.unsummarisable)
            while frontier:
                qualified = frontier.pop()
                if qualified in visited:
                    continue
                visited.add(qualified)
                inlined = self.callgraph.node(qualified)
                # names this body needs executed for real (e.g. a callee
                # whose return value it uses) must not be stubbed on the
                # caller's board either, even if the caller's own call to
                # the same name could have been summarised
                demanded_inline.update(inlined.unsummarisable)
                inner = self._summaries.bounds_for(
                    {
                        call_name: callee
                        for call_name, callee in inlined.resolved.items()
                        if call_name not in inlined.unsummarisable
                    },
                    cyclic_names=self.callgraph.cyclic_callee_names(qualified),
                    unknown_call_cycles=self._unknown_call_cycles,
                )
                for call_name in inlined.ambiguous:
                    inner[call_name] = self._unknown_call_cycles
                for call_name, bound in inner.items():
                    bounds.setdefault(call_name, bound)
                frontier.extend(
                    inlined.resolved[name] for name in inlined.unsummarisable
                )
            for call_name in demanded_inline:
                # never un-stub a call into the job's own recursion cycle:
                # inlining it would not terminate
                if call_name not in job.cyclic_call_names:
                    bounds.pop(call_name, None)
        return bounds

    def _job_config(self, job: AnalysisJob) -> AnalyzerConfig:
        """The analyzer config for one job.

        Jobs whose call closure contains a recursion cycle -- the cycle
        members and their transitive callers -- get the exhaustive
        end-to-end comparison disabled: recursive calls are stubbed during
        measurement, but the exhaustive check runs real callee bodies and
        unbounded recursion would only die against the interpreter's step
        budget.
        """
        if job.reaches_recursion and self._config.exhaustive_limit is not None:
            return dataclasses.replace(self._config, exhaustive_limit=None)
        return self._config

    def _harvest_summaries(self, wave: list[AnalysisJob]) -> None:
        """Feed the wave's completed bounds to the callers of later waves."""
        from ..callgraph.summaries import CalleeSummary

        for job in wave:
            if job.summary is None:
                continue
            self._summaries.add(
                CalleeSummary(
                    qualified_name=job.qualified_name,
                    call_name=job.function.name,
                    wcet_bound_cycles=job.summary.wcet_bound_cycles,
                    transitive_fingerprint=job.transitive_fingerprint,
                    from_cache=job.summary.from_cache,
                )
            )

    def _probe_cache(self, wave: list[AnalysisJob]) -> list[AnalysisJob]:
        """Resolve cached jobs; return the ones that must actually run."""
        runnable: list[AnalysisJob] = []
        for job in wave:
            job.callee_bounds = self._callee_bounds_for(job)
            job.summary_sites = sum(
                job.site_counts.get(name, 0)
                for name in job.callee_bounds
                if name in job.resolved_map
                and name not in job.cyclic_call_names
                and name not in job.ambiguous_call_names
                and self._summaries.get(job.resolved_map[name]) is not None
            )
            summary = self._cache.get(job.cache_key)
            if summary is not None:
                self._adopt_identity(job, summary)
                job.summary = summary
                job.state = JobState.CACHED
                perf.add("project.jobs_cached")
            else:
                runnable.append(job)
        return runnable

    @staticmethod
    def _adopt_identity(job: AnalysisJob, summary: FunctionSummary) -> None:
        """Restore this job's identity over whatever run stored the entry.

        The cache is content-addressed: identical functions in different
        units (or the same entry reached through a differently-filtered run)
        share one entry, so the labels and scheduling facts are the current
        job's, while the analysis payload is whatever the entry holds.
        """
        summary.cache_key = job.cache_key
        summary.unit = job.function.unit
        summary.function = job.function.name
        summary.wave = job.wave
        summary.callees = list(job.resolved_callees)
        # the analyzer counts every interprocedurally-charged site; the
        # reuse metric only counts the ones backed by a genuine summary
        summary.summarised_call_sites = job.summary_sites
        summary.transitive_fingerprint = job.transitive_fingerprint

    # ------------------------------------------------------------------ #
    def _execute(self, jobs: list[AnalysisJob]) -> None:
        if not jobs:
            return
        if self._workers > 1 and len(jobs) > 1:
            remaining = self._execute_pool(jobs)
        else:
            remaining = jobs
        for job in remaining:
            self._execute_serial(job)

    def _note_fallback(self, reason: str) -> None:
        self.mode = "serial-fallback"
        if self.fallback_reason is None:
            self.fallback_reason = reason

    def _execute_pool(self, jobs: list[AnalysisJob]) -> list[AnalysisJob]:
        """Run *jobs* on a process pool; return the jobs still to be executed.

        One pool is created per wave rather than per run: a wave is a full
        submit/drain cycle anyway (callee bounds must be final before the
        next wave submits), and a fresh pool keeps the died-pool fallback
        path simple -- the startup cost is tiny next to a function analysis.
        """
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self._workers, len(jobs))
            )
        except (OSError, ValueError) as error:
            perf.add("project.scheduler.pool_fallbacks")
            perf.add("project.scheduler.pool_fallback.create_failed")
            self._note_fallback(
                f"pool-create-failed: {type(error).__name__}: {error}"
            )
            return jobs
        pending: dict[concurrent.futures.Future, AnalysisJob] = {}
        try:
            with pool:
                for job in jobs:
                    unit = self._project.unit(job.function.unit)
                    job.state = JobState.RUNNING
                    future = pool.submit(
                        _execute_analysis,
                        unit.name,
                        unit.source,
                        job.function.name,
                        self._job_config(job),
                        job.callee_bounds,
                    )
                    pending[future] = job
                for future in concurrent.futures.as_completed(pending):
                    job = pending.pop(future)
                    try:
                        payload, seconds = future.result()
                    except (
                        concurrent.futures.process.BrokenProcessPool,
                        pickle.PicklingError,
                    ):
                        # pool-level trouble, not a property of this job
                        raise
                    except Exception as error:
                        self._fail(job, error)
                        continue
                    self._complete(job, FunctionSummary.from_dict(payload), seconds)
        except (
            concurrent.futures.process.BrokenProcessPool,
            pickle.PicklingError,
        ) as error:
            # the pool died (fork bans, OOM-killed worker) or the config does
            # not pickle: retry the unfinished jobs serially so the batch
            # still completes
            perf.add("project.scheduler.pool_fallbacks")
            perf.add("project.scheduler.pool_fallback.pool_died")
            self._note_fallback(f"pool-died: {type(error).__name__}: {error}")
            survivors = [
                job
                for job in jobs
                if job.summary is None and job.state is not JobState.FAILED
            ]
            for job in survivors:
                job.state = JobState.PENDING
            return survivors
        if self.mode != "serial-fallback":
            # a fallback in an earlier wave keeps the report honest even if
            # this wave's pool came up fine
            self.mode = "process-pool"
        return []

    def _execute_serial(self, job: AnalysisJob) -> None:
        unit = self._project.unit(job.function.unit)
        job.state = JobState.RUNNING
        started = time.perf_counter()
        try:
            # reuse the unit's already-analysed AST in-process; the pipeline
            # is deterministic, so this matches the worker's re-parse exactly
            report = WcetAnalyzer(
                unit.analyzed,
                job.function.name,
                self._job_config(job),
                callee_bounds=job.callee_bounds,
            ).analyze()
        except Exception as error:
            self._fail(job, error)
            return
        summary = FunctionSummary.from_report(
            unit.name, self._config.partitioner, report
        )
        self._complete(job, summary, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    def _complete(
        self, job: AnalysisJob, summary: FunctionSummary, seconds: float
    ) -> None:
        self._adopt_identity(job, summary)
        job.summary = summary
        job.state = JobState.DONE
        self._cache.put(job.cache_key, summary)
        perf.add("project.jobs_executed")
        perf.record_time("project.analyze_function", seconds)

    @staticmethod
    def _fail(job: AnalysisJob, error: Exception) -> None:
        job.state = JobState.FAILED
        job.error = f"{type(error).__name__}: {error}"
        perf.add("project.jobs_failed")


def analyze_project(
    project: Project,
    config: AnalyzerConfig | None = None,
    cache: ResultCache | None = None,
    workers: int = 1,
    only: list[str] | None = None,
    interprocedural: bool = True,
    unknown_call_cycles: int | None = None,
) -> ProjectReport:
    """Convenience wrapper: schedule and run every function of *project*."""
    return ProjectScheduler(
        project,
        config=config,
        cache=cache,
        workers=workers,
        only=only,
        interprocedural=interprocedural,
        unknown_call_cycles=unknown_call_cycles,
    ).run()
