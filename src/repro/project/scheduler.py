"""Job-graph scheduler driving :class:`WcetAnalyzer` over a whole project.

Every analyzable function becomes one :class:`AnalysisJob`.  The scheduler
first probes the persistent result cache (:mod:`repro.project.cache`); the
remaining jobs are executed either serially in-process or on a
``concurrent.futures.ProcessPoolExecutor``.  The analysis is fully seeded
(random, genetic and model-checking phases all derive from the
:class:`~repro.pipeline.analyzer.AnalyzerConfig`), so serial and parallel
runs produce bit-identical :class:`~repro.project.report.FunctionSummary`
payloads -- the scheduler only changes *where* a job runs, never *what* it
computes.  If the process pool cannot be created or dies (sandboxed
environments, pickling restrictions), the scheduler falls back to serial
execution (report ``mode`` = ``"serial-fallback"``) and records
``project.scheduler.pool_fallbacks`` in the perf registry rather than
failing the batch.

Jobs carry an optional dependency list and run in topological waves; today
every function analysis is independent (one wave), but cross-function
dependencies (e.g. analysing callees before callers to reuse their bounds)
plug into the same mechanism.
"""

from __future__ import annotations

import concurrent.futures
import enum
import pickle
import time
from dataclasses import dataclass

from .. import perf
from ..minic import parse_and_analyze
from ..pipeline.analyzer import AnalyzerConfig, WcetAnalyzer
from .cache import ResultCache
from .model import Project, ProjectError, ProjectFunction
from .report import FunctionSummary, ProjectFailure, ProjectReport


class JobState(enum.Enum):
    PENDING = "pending"
    CACHED = "cached"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class AnalysisJob:
    """One function analysis in the project job graph."""

    job_id: int
    function: ProjectFunction
    cache_key: str = ""
    #: job ids that must complete before this job may run
    deps: tuple[int, ...] = ()
    state: JobState = JobState.PENDING
    summary: FunctionSummary | None = None
    error: str | None = None


def _execute_analysis(
    unit_name: str, source: str, function_name: str, config: AnalyzerConfig
) -> tuple[dict, float]:
    """Analyse one function from its unit source; return (summary dict, seconds).

    Module-level so it pickles into process-pool workers; the worker re-parses
    the unit from source, which keeps the inter-process payload to plain
    strings plus the (picklable, dataclass-only) config.
    """
    started = time.perf_counter()
    analyzed = parse_and_analyze(source, filename=unit_name)
    report = WcetAnalyzer(analyzed, function_name, config).analyze()
    summary = FunctionSummary.from_report(unit_name, config.partitioner, report)
    return summary.to_dict(), time.perf_counter() - started


class ProjectScheduler:
    """Run every analyzable function of a project through the WCET pipeline."""

    def __init__(
        self,
        project: Project,
        config: AnalyzerConfig | None = None,
        cache: ResultCache | None = None,
        workers: int = 1,
        only: list[str] | None = None,
    ):
        self._project = project
        self._config = config or AnalyzerConfig()
        self._cache = cache or ResultCache.disabled()
        self._workers = max(1, int(workers))
        self._only = only
        self._jobs: list[AnalysisJob] | None = None
        #: execution mode of the last run ("serial", "process-pool", or
        #: "serial-fallback" when a started pool died mid-batch)
        self.mode = "serial"

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return self._workers

    def jobs(self) -> list[AnalysisJob]:
        """The job graph (built once, ordered by (unit, function))."""
        if self._jobs is None:
            self._jobs = [
                AnalysisJob(
                    job_id=index,
                    function=function,
                    cache_key=self._cache.key_for(function.fingerprint, self._config),
                )
                for index, function in enumerate(
                    self._project.functions(only=self._only)
                )
            ]
        return self._jobs

    # ------------------------------------------------------------------ #
    def run(self) -> ProjectReport:
        """Execute the job graph and aggregate the project report."""
        started = time.perf_counter()
        jobs = self.jobs()
        perf.add("project.jobs", len(jobs))

        with perf.timed("project.schedule"):
            for wave in self._waves(jobs):
                runnable = self._probe_cache(wave)
                self._execute(runnable)

        failures = [
            ProjectFailure(
                unit=job.function.unit,
                function=job.function.name,
                error=job.error or "unknown error",
            )
            for job in jobs
            if job.state is JobState.FAILED
        ]
        summaries = [job.summary for job in jobs if job.summary is not None]
        return ProjectReport(
            functions=summaries,
            failures=failures,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_dir=str(self._cache.root) if self._cache.root else None,
            mode=self.mode,
            workers=self._workers,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _waves(jobs: list[AnalysisJob]) -> list[list[AnalysisJob]]:
        """Topological waves of the dependency graph (one wave today)."""
        done: set[int] = set()
        remaining = list(jobs)
        waves: list[list[AnalysisJob]] = []
        while remaining:
            wave = [job for job in remaining if all(d in done for d in job.deps)]
            if not wave:
                raise ProjectError("job graph contains a dependency cycle")
            waves.append(wave)
            done.update(job.job_id for job in wave)
            remaining = [job for job in remaining if job.job_id not in done]
        return waves

    def _probe_cache(self, wave: list[AnalysisJob]) -> list[AnalysisJob]:
        """Resolve cached jobs; return the ones that must actually run."""
        runnable: list[AnalysisJob] = []
        for job in wave:
            summary = self._cache.get(job.cache_key)
            if summary is not None:
                summary.cache_key = job.cache_key
                # the cache is content-addressed: identical functions in
                # different units share one entry, so restore this job's
                # identity over whatever unit/function stored the entry
                summary.unit = job.function.unit
                summary.function = job.function.name
                job.summary = summary
                job.state = JobState.CACHED
                perf.add("project.jobs_cached")
            else:
                runnable.append(job)
        return runnable

    # ------------------------------------------------------------------ #
    def _execute(self, jobs: list[AnalysisJob]) -> None:
        if not jobs:
            return
        if self._workers > 1 and len(jobs) > 1:
            remaining = self._execute_pool(jobs)
        else:
            remaining = jobs
        for job in remaining:
            self._execute_serial(job)

    def _execute_pool(self, jobs: list[AnalysisJob]) -> list[AnalysisJob]:
        """Run *jobs* on a process pool; return the jobs still to be executed."""
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self._workers, len(jobs))
            )
        except (OSError, ValueError) as error:
            perf.add("project.scheduler.pool_fallbacks")
            perf.add("project.scheduler.pool_errors")
            del error
            return jobs
        pending: dict[concurrent.futures.Future, AnalysisJob] = {}
        try:
            with pool:
                for job in jobs:
                    unit = self._project.unit(job.function.unit)
                    job.state = JobState.RUNNING
                    future = pool.submit(
                        _execute_analysis,
                        unit.name,
                        unit.source,
                        job.function.name,
                        self._config,
                    )
                    pending[future] = job
                for future in concurrent.futures.as_completed(pending):
                    job = pending.pop(future)
                    try:
                        payload, seconds = future.result()
                    except (
                        concurrent.futures.process.BrokenProcessPool,
                        pickle.PicklingError,
                    ):
                        # pool-level trouble, not a property of this job
                        raise
                    except Exception as error:
                        self._fail(job, error)
                        continue
                    self._complete(job, FunctionSummary.from_dict(payload), seconds)
        except (
            concurrent.futures.process.BrokenProcessPool,
            pickle.PicklingError,
        ):
            # the pool died (fork bans, OOM-killed worker) or the config does
            # not pickle: retry the unfinished jobs serially so the batch
            # still completes
            perf.add("project.scheduler.pool_fallbacks")
            survivors = [
                job
                for job in jobs
                if job.summary is None and job.state is not JobState.FAILED
            ]
            for job in survivors:
                job.state = JobState.PENDING
            self.mode = "serial-fallback"
            return survivors
        self.mode = "process-pool"
        return []

    def _execute_serial(self, job: AnalysisJob) -> None:
        unit = self._project.unit(job.function.unit)
        job.state = JobState.RUNNING
        started = time.perf_counter()
        try:
            # reuse the unit's already-analysed AST in-process; the pipeline
            # is deterministic, so this matches the worker's re-parse exactly
            report = WcetAnalyzer(
                unit.analyzed, job.function.name, self._config
            ).analyze()
        except Exception as error:
            self._fail(job, error)
            return
        summary = FunctionSummary.from_report(
            unit.name, self._config.partitioner, report
        )
        self._complete(job, summary, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    def _complete(
        self, job: AnalysisJob, summary: FunctionSummary, seconds: float
    ) -> None:
        summary.cache_key = job.cache_key
        job.summary = summary
        job.state = JobState.DONE
        self._cache.put(job.cache_key, summary)
        perf.add("project.jobs_executed")
        perf.record_time("project.analyze_function", seconds)

    @staticmethod
    def _fail(job: AnalysisJob, error: Exception) -> None:
        job.state = JobState.FAILED
        job.error = f"{type(error).__name__}: {error}"
        perf.add("project.jobs_failed")


def analyze_project(
    project: Project,
    config: AnalyzerConfig | None = None,
    cache: ResultCache | None = None,
    workers: int = 1,
    only: list[str] | None = None,
) -> ProjectReport:
    """Convenience wrapper: schedule and run every function of *project*."""
    return ProjectScheduler(
        project, config=config, cache=cache, workers=workers, only=only
    ).run()
