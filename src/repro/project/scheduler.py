"""Job-graph scheduler driving :class:`WcetAnalyzer` over a whole project.

Every analyzable function becomes one :class:`AnalysisJob`.  In the default
interprocedural mode the scheduler builds the project call graph
(:mod:`repro.callgraph`), orders the jobs into topological *dependency
waves* -- callees before callers -- and feeds each completed callee's WCET
bound into its callers as a :class:`~repro.callgraph.summaries.CalleeSummary`:
the caller's measurement charges every summarised call site
``call_overhead + callee bound`` instead of guessing a library cost.  Calls
that cannot be summarised (recursion cycles, ambiguous names) are charged
the pessimistic unknown-call cost, and callees whose stubbing would be
unsound -- the caller uses their return value or reads globals they write
-- are inlined on the caller's board instead; both cases are reported as
call-graph diagnostics.

Result caching keys on *transitive fingerprints* (the function's content
hash closed over its resolved callees), so editing a leaf callee invalidates
exactly the leaf plus its transitive callers while unrelated functions stay
warm.

Within a wave the scheduler first probes the persistent result cache
(:mod:`repro.project.cache`); the remaining jobs are executed either
serially in-process or on a ``concurrent.futures.ProcessPoolExecutor``.  The
analysis is fully seeded (random, genetic and model-checking phases all
derive from the :class:`~repro.pipeline.analyzer.AnalyzerConfig`) and callee
bounds are fixed before a wave starts, so serial and parallel runs produce
bit-identical :class:`~repro.project.report.FunctionSummary` payloads -- the
scheduler only changes *where* a job runs, never *what* it computes.  If the
process pool cannot be created or dies (sandboxed environments, pickling
restrictions), the scheduler falls back to serial execution and records the
reason in ``ProjectReport.fallback_reason`` and the perf registry
(``project.scheduler.pool_fallback.*``) rather than failing the batch.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import enum
import pickle
import time
from dataclasses import dataclass, field

from .. import obs, perf
from ..mc.store import QueryStore, using_query_store
from ..minic import parse_and_analyze
from ..pipeline.analyzer import (
    AnalyzerConfig,
    WcetAnalyzer,
    static_pessimised_report,
)
from ..resilience import (
    Deadline,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    JobTimeout,
    ResilienceContext,
    RetryPolicy,
    activate,
    classify_error,
)
from .cache import ResultCache
from .model import Project, ProjectError, ProjectFunction
from .report import FunctionSummary, ProjectFailure, ProjectReport


class JobState(enum.Enum):
    PENDING = "pending"
    CACHED = "cached"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    #: the job kept crashing or timed out; the function was pessimised from
    #: static estimates so its callers still analyse against a sound bound
    QUARANTINED = "quarantined"


@dataclass
class AnalysisJob:
    """One function analysis in the project job graph."""

    job_id: int
    function: ProjectFunction
    cache_key: str = ""
    #: job ids that must complete before this job may run
    deps: tuple[int, ...] = ()
    #: dependency wave the job runs on (assigned by the scheduler)
    wave: int = 0
    #: call name -> qualified name of the resolved project callee
    resolved_map: dict[str, str] = field(default_factory=dict)
    #: call names that resolve into the job's own recursion cycle
    cyclic_call_names: tuple[str, ...] = ()
    #: resolved call names that must be inlined instead of summarised
    #: (return value used / global coupling; see the call-graph diagnostics)
    unsummarisable: tuple[str, ...] = ()
    #: call names whose definition is ambiguous across units (charged the
    #: pessimistic unknown-call cost)
    ambiguous_call_names: tuple[str, ...] = ()
    #: True when the job's resolved call closure contains a recursion cycle
    #: (the exhaustive end-to-end comparison is disabled for such jobs)
    reaches_recursion: bool = False
    #: call name -> syntactic site count in the function body
    site_counts: dict[str, int] = field(default_factory=dict)
    #: the job's own call sites charged with a genuine callee summary
    #: (pessimistic recursion/ambiguity charges excluded)
    summary_sites: int = 0
    #: content fingerprint closed over resolved callees (keys the cache)
    transitive_fingerprint: str = ""
    #: call name -> WCET bound charged per call site (fixed per wave)
    callee_bounds: dict[str, int] = field(default_factory=dict)
    state: JobState = JobState.PENDING
    summary: FunctionSummary | None = None
    error: str | None = None
    #: execution attempts so far (pool and serial combined)
    attempts: int = 0
    #: transient failures retried before the job settled
    retries: int = 0
    #: diagnostics of the failures/faults this job survived
    fault_events: list[str] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        return self.function.qualified_name

    @property
    def resolved_callees(self) -> tuple[str, ...]:
        """Resolved callee qualified names, sorted and deduplicated."""
        return tuple(sorted(set(self.resolved_map.values())))


def _execute_analysis(
    unit_name: str,
    source: str,
    function_name: str,
    config: AnalyzerConfig,
    callee_bounds: dict[str, int],
    fault_plan: FaultPlan | None = None,
    job_timeout_seconds: float | None = None,
    inject_job_fault: bool = False,
    trace: dict | None = None,
    query_cache_dir: str | None = None,
) -> tuple[dict, float, list]:
    """Analyse one function from its unit source.

    Returns ``(summary dict, seconds, span events)``.  Module-level so it
    pickles into process-pool workers; the worker re-parses the unit from
    source, which keeps the inter-process payload to plain strings plus the
    (picklable, dataclass-only) config, bound mapping and fault sub-plan.
    ``fault_plan`` carries only the job-internal sites (``mc.solve``,
    ``interp.step``): each job evaluates them against a fresh injector with
    its own hit counters, so what fires never depends on how jobs interleave
    across workers.  ``inject_job_fault`` is the scheduler-decided
    ``job.execute`` crash (a pure function of plan seed, job name and
    attempt number, shipped as a flag for the same reason).

    ``trace`` is the serialised span handshake
    (``{"trace_id", "parent_id", "max_events"}``): the worker records its
    spans into a private tracer under that parent and returns the events,
    which the scheduler merges back into its own tracer -- the cross-process
    half of the end-to-end trace tree.  ``None`` (untraced run) costs
    nothing and returns an empty event list.

    ``query_cache_dir`` (the scheduler's cache root) re-opens the shared
    persistent model-checking query store inside the worker: verdicts and
    witnesses flow through the same crash-safe, flock-serialised files the
    serial path uses, so pool runs populate and profit from the store
    identically.  Replay failures quarantine the entry on disk in-place;
    the worker keeps no other store state worth shipping back.
    """
    started = time.perf_counter()
    injector = (
        FaultInjector(fault_plan)
        if fault_plan is not None and not fault_plan.is_empty
        else None
    )
    deadline = Deadline(job_timeout_seconds) if job_timeout_seconds else None
    tracer: obs.Tracer | None = None
    with contextlib.ExitStack() as stack:
        if trace is not None:
            tracer = obs.Tracer(max_events=trace.get("max_events"))
            stack.enter_context(
                obs.using_tracer(
                    tracer,
                    obs.SpanContext(
                        trace_id=trace["trace_id"], span_id=trace["parent_id"]
                    ),
                )
            )
            stack.enter_context(
                obs.span("project.job", function=function_name, worker="pool")
            )
        if query_cache_dir is not None:
            stack.enter_context(
                using_query_store(QueryStore(ResultCache(query_cache_dir)))
            )
        analyzed = parse_and_analyze(source, filename=unit_name)
        if injector is None and deadline is None and not inject_job_fault:
            report = WcetAnalyzer(
                analyzed, function_name, config, callee_bounds=callee_bounds
            ).analyze()
        else:
            with activate(
                ResilienceContext(injector=injector, deadline=deadline)
            ):
                if inject_job_fault:
                    raise InjectedFault(
                        "job.execute", "injected job crash", 1
                    )
                report = WcetAnalyzer(
                    analyzed, function_name, config, callee_bounds=callee_bounds
                ).analyze()
        summary = FunctionSummary.from_report(
            unit_name, config.partitioner, report
        )
    events = tracer.events() if tracer is not None else []
    return summary.to_dict(), time.perf_counter() - started, events


class ProjectScheduler:
    """Run every analyzable function of a project through the WCET pipeline."""

    def __init__(
        self,
        project: Project,
        config: AnalyzerConfig | None = None,
        cache: ResultCache | None = None,
        workers: int = 1,
        only: list[str] | None = None,
        interprocedural: bool = True,
        unknown_call_cycles: int | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout_seconds: float | None = None,
        pool_restart_budget: int = 2,
        progress_callback=None,
        flight_recorder: obs.FlightRecorder | None = None,
        query_cache: ResultCache | None = None,
    ):
        """``fault_plan``/``retry_policy``/``job_timeout_seconds`` are the
        resilience knobs: the plan injects deterministic faults (chaos
        testing; ``None`` or an empty plan changes nothing), the policy
        bounds transient-failure retries, and the timeout quarantines jobs
        that overrun their wall-clock allowance.  ``pool_restart_budget``
        caps how often a died process pool is re-created before the run
        falls back to serial execution for good.

        The fault plan is deliberately *not* part of :class:`AnalyzerConfig`:
        the config is fingerprinted into every cache key, and injecting
        faults must not re-key (or pollute) the cache of clean runs.

        ``progress_callback`` is invoked with each :class:`AnalysisJob` as
        it reaches a terminal state (cached, done, failed, quarantined) --
        the hook the analysis service uses to stream job progress to
        polling clients.  Callback errors are swallowed: observers must
        never be able to fail an analysis.

        ``flight_recorder`` receives a trace dump whenever a job is
        quarantined or a fault fires; when omitted and the cache is
        persistent, one is created over ``<cache root>/diagnostics`` (next
        to the cache's ``corrupt/`` quarantine).

        ``query_cache`` backs the persistent model-checking query store
        (per-(slice, goal) verdicts + witnesses, :mod:`repro.mc.store`).
        ``None`` shares the result cache -- a plain warm ``project`` run
        answers every unchanged reachability query from disk with zero
        solver calls -- and :meth:`ResultCache.disabled` opts out.  Like
        the fault plan it is deliberately not part of the fingerprinted
        :class:`AnalyzerConfig`: store entries are replay-validated on
        load, so where (or whether) they persist never changes a verdict.
        """
        from ..callgraph.summaries import (
            DEFAULT_UNKNOWN_CALL_CYCLES,
            CalleeSummaryStore,
        )

        self._project = project
        self._config = config or AnalyzerConfig()
        self._cache = cache or ResultCache.disabled()
        self._workers = max(1, int(workers))
        self._only = only
        self._interprocedural = interprocedural
        self._unknown_call_cycles = (
            DEFAULT_UNKNOWN_CALL_CYCLES
            if unknown_call_cycles is None
            else unknown_call_cycles
        )
        self._summaries = CalleeSummaryStore()
        self._jobs: list[AnalysisJob] | None = None
        self._fault_plan = fault_plan or FaultPlan()
        self._retry_policy = retry_policy or RetryPolicy(
            seed=self._fault_plan.seed
        )
        self._job_timeout = job_timeout_seconds
        self._pool_restart_budget = max(0, int(pool_restart_budget))
        self._progress_callback = progress_callback
        #: scheduler-side injector (cache.*, pool.submit); job-internal
        #: sites ship to each job as a sub-plan, and job.execute is decided
        #: per attempt by :meth:`_job_execute_spec`
        self._injector = (
            FaultInjector(
                self._fault_plan.for_sites(
                    "cache.read", "cache.write", "pool.submit"
                )
            )
            if not self._fault_plan.is_empty
            else None
        )
        self._job_execute_specs = tuple(
            spec
            for spec in self._fault_plan.specs
            if spec.site == "job.execute"
        )
        if self._injector is not None:
            self._cache.fault_injector = self._injector
        #: persistent model-checking query store (None = disabled)
        self._query_cache = query_cache if query_cache is not None else self._cache
        self._query_store = (
            QueryStore(self._query_cache) if self._query_cache.enabled else None
        )
        if (
            self._injector is not None
            and self._query_cache is not self._cache
            and self._query_store is not None
        ):
            # a dedicated query cache joins the chaos plan like the shared
            # one would (cache.read / cache.write fire on query I/O too)
            self._query_cache.fault_injector = self._injector
        self._flight = flight_recorder
        if self._flight is None and self._cache.root is not None:
            self._flight = obs.FlightRecorder(
                self._cache.root / obs.DIAGNOSTICS_DIR
            )
        #: records of the flight dumps written by the last run
        self.flight_dumps: list[dict] = []
        #: trace id of the last run's root span (None when untraced)
        self.trace_id: str | None = None
        #: the tracer the last run recorded into (ambient or auto-armed ring)
        self._tracer: obs.Tracer | None = None
        #: the resolved project call graph (built lazily with the jobs;
        #: ``None`` in flat mode)
        self.callgraph = None
        #: execution mode of the last run ("serial", "process-pool", or
        #: "serial-fallback" when a pool could not be created or died)
        self.mode = "serial"
        #: why the scheduler fell back to serial execution (None = no fallback)
        self.fallback_reason: str | None = None
        #: number of dependency waves executed by the last run
        self.waves_executed = 0
        #: process pools re-created after a death (capped by the budget)
        self.pool_restarts = 0

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return self._workers

    def _notify(self, job: AnalysisJob) -> None:
        """Report a job's terminal state to the progress observer, if any."""
        if self._progress_callback is None:
            return
        try:
            self._progress_callback(job)
        except Exception:
            # observers are diagnostics-only; they must not fail the run
            pass

    def jobs(self) -> list[AnalysisJob]:
        """The job graph (built once, ordered by (unit, function))."""
        if self._jobs is None:
            if self._interprocedural:
                self._jobs = self._build_interprocedural_jobs()
            else:
                self._jobs = [
                    AnalysisJob(
                        job_id=index,
                        function=function,
                        cache_key=self._cache.key_for(
                            function.fingerprint, self._config
                        ),
                        transitive_fingerprint=function.fingerprint,
                    )
                    for index, function in enumerate(
                        self._project.functions(only=self._only)
                    )
                ]
        return self._jobs

    def _build_interprocedural_jobs(self) -> list[AnalysisJob]:
        """Resolve the call graph and key every job on a transitive fingerprint.

        With an ``only`` filter the selection is closed over resolved callees:
        a caller's bound cannot be computed without its callees' bounds, so
        restricting to ``--function caller`` still analyses (or recalls from
        cache) everything the caller transitively calls.
        """
        # imported lazily: repro.callgraph builds on repro.project.model, so a
        # module-level import would be circular through the package __init__
        from ..callgraph.graph import CallGraph

        graph = CallGraph.from_project(self._project)
        self.callgraph = graph
        if self._only is not None:
            functions = graph.closure(self._only)
        else:
            functions = graph.functions()
        if not functions:
            raise ProjectError("project defines no analyzable functions")
        fingerprints = graph.transitive_fingerprints(
            unknown_call_cycles=self._unknown_call_cycles
        )
        dependencies = graph.dependencies()
        reaches_cycle = graph.reaches_cycle()
        index_of = {
            function.qualified_name: index
            for index, function in enumerate(functions)
        }
        jobs: list[AnalysisJob] = []
        for index, function in enumerate(functions):
            qualified = function.qualified_name
            node = graph.node(qualified)
            jobs.append(
                AnalysisJob(
                    job_id=index,
                    function=function,
                    cache_key=self._cache.key_for(
                        fingerprints[qualified], self._config
                    ),
                    deps=tuple(
                        index_of[callee]
                        for callee in dependencies[qualified]
                        if callee in index_of
                    ),
                    resolved_map=dict(node.resolved),
                    cyclic_call_names=graph.cyclic_callee_names(qualified),
                    unsummarisable=node.unsummarisable,
                    ambiguous_call_names=node.ambiguous,
                    reaches_recursion=qualified in reaches_cycle,
                    site_counts=dict(node.calls.sites),
                    transitive_fingerprint=fingerprints[qualified],
                )
            )
        return jobs

    # ------------------------------------------------------------------ #
    def run(self) -> ProjectReport:
        """Execute the job graph wave by wave and aggregate the project report."""
        started = time.perf_counter()
        jobs = self.jobs()
        perf.add("project.jobs", len(jobs))
        self.flight_dumps = []
        self.trace_id = None

        with contextlib.ExitStack() as stack:
            tracer = obs.active_tracer()
            if (
                (tracer is None or not tracer.enabled)
                and not self._fault_plan.is_empty
            ):
                # chaos runs arm a private bounded ring so a quarantine or
                # fired fault always has a recent timeline to freeze into a
                # flight dump, even without --trace
                tracer = obs.Tracer(max_events=obs.DEFAULT_RING_EVENTS)
                stack.enter_context(obs.using_tracer(tracer))
            self._tracer = (
                tracer if tracer is not None and tracer.enabled else None
            )
            root = stack.enter_context(
                obs.span(
                    "project.run", functions=len(jobs), workers=self._workers
                )
            )
            if root is not None:
                self.trace_id = root.trace_id

            with perf.timed("project.schedule"):
                waves = self._waves(jobs)
                self.waves_executed = len(waves)
                perf.add("project.scheduler.waves", len(waves))
                for wave_index, wave in enumerate(waves):
                    ready: list[AnalysisJob] = []
                    for job in wave:
                        job.wave = wave_index
                        if not self._fail_on_broken_deps(job, jobs):
                            ready.append(job)
                    with obs.span(
                        "project.wave", wave=wave_index, jobs=len(ready)
                    ):
                        runnable = self._probe_cache(ready)
                        self._execute(runnable)
                    self._harvest_summaries(wave)

            if (
                self._query_store is not None
                and self._query_store.replay_failures
            ):
                # a store entry whose witness no longer replays is hard
                # evidence of on-disk tampering/corruption (everything
                # written passed a save-time self-replay): freeze a timeline
                failures = self._query_store.replay_failures
                self._flight_dump(
                    "query-replay-failure",
                    detail=f"{len(failures)} rejected entr(y/ies): "
                    + "; ".join(
                        f"{record['goal']}: {record['reason']}"
                        for record in failures[:8]
                    ),
                )
            if not self.flight_dumps:
                fired = self._fired_fault_summary(jobs)
                if fired is not None:
                    self._flight_dump("faults-injected", detail=fired)

        failures = [
            ProjectFailure(
                unit=job.function.unit,
                function=job.function.name,
                error=job.error or "unknown error",
            )
            for job in jobs
            if job.state is JobState.FAILED
        ]
        summaries = [job.summary for job in jobs if job.summary is not None]
        reused_calls = sum(
            summary.summarised_call_sites for summary in summaries
        )
        perf.add("project.scheduler.summary_reuse_calls", reused_calls)
        # static-analysis totals for cache-served summaries: fresh in-process
        # jobs already bumped the sa.* counters inside run_static_analysis,
        # so only results answered from the cache are accounted here
        cached = [summary for summary in summaries if summary.from_cache]
        perf.add(
            "sa.edges_pruned",
            sum(summary.sa_edges_pruned for summary in cached),
        )
        perf.add(
            "sa.loop_bounds_inferred",
            sum(summary.sa_loop_bounds_inferred for summary in cached),
        )
        perf.add(
            "sa.diagnostics",
            sum(len(summary.sa_diagnostics) for summary in cached),
        )
        return ProjectReport(
            functions=summaries,
            failures=failures,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_dir=str(self._cache.root) if self._cache.root else None,
            mode=self.mode,
            fallback_reason=self.fallback_reason,
            workers=self._workers,
            waves=self.waves_executed,
            summary_reuse_calls=reused_calls,
            callgraph=self.callgraph.to_dict() if self.callgraph else None,
            elapsed_seconds=time.perf_counter() - started,
            pool_restarts=self.pool_restarts,
            cache_write_failures=self._cache.write_failures,
            cache_quarantined=self._cache.quarantined,
            fault_plan=self._fault_plan.describe(),
            diagnostics=list(self._cache.diagnostics),
            flight_dumps=list(self.flight_dumps),
            trace_id=self.trace_id,
            trace_spans=len(self._tracer) if self._tracer is not None else 0,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _waves(jobs: list[AnalysisJob]) -> list[list[AnalysisJob]]:
        """Topological waves of the dependency graph (callees before callers)."""
        done: set[int] = set()
        remaining = list(jobs)
        waves: list[list[AnalysisJob]] = []
        while remaining:
            wave = [job for job in remaining if all(d in done for d in job.deps)]
            if not wave:
                cycle = ProjectScheduler._find_dependency_cycle(remaining)
                raise ProjectError(
                    "job graph contains a dependency cycle: "
                    + " -> ".join(cycle)
                )
            waves.append(wave)
            done.update(job.job_id for job in wave)
            remaining = [job for job in remaining if job.job_id not in done]
        return waves

    @staticmethod
    def _find_dependency_cycle(remaining: list[AnalysisJob]) -> list[str]:
        """Name the functions on one dependency cycle among *remaining* jobs."""
        by_id = {job.job_id: job for job in remaining}
        visited: set[int] = set()
        for start in remaining:
            if start.job_id in visited:
                continue
            path: list[int] = []
            position: dict[int, int] = {}
            current: AnalysisJob | None = start
            while current is not None:
                if current.job_id in position:
                    cycle = path[position[current.job_id]:] + [current.job_id]
                    return [by_id[job_id].qualified_name for job_id in cycle]
                if current.job_id in visited:
                    break
                position[current.job_id] = len(path)
                path.append(current.job_id)
                current = next(
                    (by_id[d] for d in current.deps if d in by_id), None
                )
            visited.update(path)
        # unsatisfiable deps that point outside the job graph, not a cycle
        return sorted(job.qualified_name for job in remaining)

    def _fail_on_broken_deps(
        self, job: AnalysisJob, jobs: list[AnalysisJob]
    ) -> bool:
        """Fail *job* when a callee it depends on failed; True when failed."""
        broken = [
            jobs[dep].qualified_name
            for dep in job.deps
            if jobs[dep].state is JobState.FAILED
        ]
        if not broken:
            return False
        job.state = JobState.FAILED
        job.error = (
            "callee analysis failed, no summary to charge: "
            + ", ".join(sorted(broken))
        )
        perf.add("project.jobs_failed")
        self._notify(job)
        return True

    def _callee_bounds_for(self, job: AnalysisJob) -> dict[str, int]:
        """The per-call-name charges of one job, fixed before its wave runs.

        Summarisable resolved callees charge their computed bound; calls
        into the job's own recursion cycle and ambiguous names charge the
        pessimistic unknown-call cost; callees flagged unsummarisable by
        the call graph are left out entirely, so the board inlines their
        real body (the seed behaviour) instead of stubbing it.  The map is
        then closed over those inlined bodies: the calls *they* make keep
        exactly the charges they had in the callee's own standalone
        analysis, so inlining never silently downgrades an interprocedural
        charge to the default external cost.
        """
        summarisable = {
            call_name: callee
            for call_name, callee in job.resolved_map.items()
            if call_name not in job.unsummarisable
        }
        bounds = self._summaries.bounds_for(
            summarisable,
            cyclic_names=job.cyclic_call_names,
            unknown_call_cycles=self._unknown_call_cycles,
        )
        for call_name in job.ambiguous_call_names:
            bounds[call_name] = self._unknown_call_cycles
        if job.unsummarisable and self.callgraph is not None:
            frontier = [job.resolved_map[name] for name in job.unsummarisable]
            visited: set[str] = set()
            demanded_inline = set(job.unsummarisable)
            while frontier:
                qualified = frontier.pop()
                if qualified in visited:
                    continue
                visited.add(qualified)
                inlined = self.callgraph.node(qualified)
                # names this body needs executed for real (e.g. a callee
                # whose return value it uses) must not be stubbed on the
                # caller's board either, even if the caller's own call to
                # the same name could have been summarised
                demanded_inline.update(inlined.unsummarisable)
                inner = self._summaries.bounds_for(
                    {
                        call_name: callee
                        for call_name, callee in inlined.resolved.items()
                        if call_name not in inlined.unsummarisable
                    },
                    cyclic_names=self.callgraph.cyclic_callee_names(qualified),
                    unknown_call_cycles=self._unknown_call_cycles,
                )
                for call_name in inlined.ambiguous:
                    inner[call_name] = self._unknown_call_cycles
                for call_name, bound in inner.items():
                    bounds.setdefault(call_name, bound)
                frontier.extend(
                    inlined.resolved[name] for name in inlined.unsummarisable
                )
            for call_name in demanded_inline:
                # never un-stub a call into the job's own recursion cycle:
                # inlining it would not terminate
                if call_name not in job.cyclic_call_names:
                    bounds.pop(call_name, None)
        return bounds

    def _job_config(self, job: AnalysisJob) -> AnalyzerConfig:
        """The analyzer config for one job.

        Jobs whose call closure contains a recursion cycle -- the cycle
        members and their transitive callers -- get the exhaustive
        end-to-end comparison disabled: recursive calls are stubbed during
        measurement, but the exhaustive check runs real callee bodies and
        unbounded recursion would only die against the interpreter's step
        budget.
        """
        if job.reaches_recursion and self._config.exhaustive_limit is not None:
            return dataclasses.replace(self._config, exhaustive_limit=None)
        return self._config

    def _harvest_summaries(self, wave: list[AnalysisJob]) -> None:
        """Feed the wave's completed bounds to the callers of later waves."""
        from ..callgraph.summaries import CalleeSummary

        for job in wave:
            if job.summary is None:
                continue
            self._summaries.add(
                CalleeSummary(
                    qualified_name=job.qualified_name,
                    call_name=job.function.name,
                    wcet_bound_cycles=job.summary.wcet_bound_cycles,
                    transitive_fingerprint=job.transitive_fingerprint,
                    from_cache=job.summary.from_cache,
                )
            )

    def _probe_cache(self, wave: list[AnalysisJob]) -> list[AnalysisJob]:
        """Resolve cached jobs; return the ones that must actually run."""
        runnable: list[AnalysisJob] = []
        for job in wave:
            job.callee_bounds = self._callee_bounds_for(job)
            job.summary_sites = sum(
                job.site_counts.get(name, 0)
                for name in job.callee_bounds
                if name in job.resolved_map
                and name not in job.cyclic_call_names
                and name not in job.ambiguous_call_names
                and self._summaries.get(job.resolved_map[name]) is not None
            )
            summary = self._cache.get(job.cache_key)
            if summary is not None:
                self._adopt_identity(job, summary)
                job.summary = summary
                job.state = JobState.CACHED
                perf.add("project.jobs_cached")
                self._notify(job)
            else:
                runnable.append(job)
        return runnable

    @staticmethod
    def _adopt_identity(job: AnalysisJob, summary: FunctionSummary) -> None:
        """Restore this job's identity over whatever run stored the entry.

        The cache is content-addressed: identical functions in different
        units (or the same entry reached through a differently-filtered run)
        share one entry, so the labels and scheduling facts are the current
        job's, while the analysis payload is whatever the entry holds.
        """
        summary.cache_key = job.cache_key
        summary.unit = job.function.unit
        summary.function = job.function.name
        summary.wave = job.wave
        summary.callees = list(job.resolved_callees)
        # the analyzer counts every interprocedurally-charged site; the
        # reuse metric only counts the ones backed by a genuine summary
        summary.summarised_call_sites = job.summary_sites
        summary.transitive_fingerprint = job.transitive_fingerprint
        # retries and scheduler-level fault events are properties of this
        # run (excluded from the cached result payload), so the current
        # job's bookkeeping always wins over whatever a cache entry holds
        summary.retries = job.retries
        summary.fault_events = list(job.fault_events) + [
            event
            for event in summary.fault_events
            if event not in job.fault_events
        ]

    # ------------------------------------------------------------------ #
    def _execute(self, jobs: list[AnalysisJob]) -> None:
        if not jobs:
            return
        if self._workers > 1 and len(jobs) > 1:
            remaining = self._execute_pool(jobs)
        else:
            remaining = jobs
        for job in remaining:
            self._execute_serial(job)

    def _note_fallback(self, reason: str) -> None:
        self.mode = "serial-fallback"
        if self.fallback_reason is None:
            self.fallback_reason = reason

    def _job_fault_plan(self) -> FaultPlan | None:
        plan = self._fault_plan.job_plan()
        return plan if not plan.is_empty else None

    def _job_execute_spec(self, job: AnalysisJob, attempt: int) -> FaultSpec | None:
        """The ``job.execute`` fault firing on this job's *attempt*, if any.

        The hit counter of the ``job.execute`` site is the per-job attempt
        number, not a global dispatch counter: the decision is a pure
        function of (plan seed, job name, attempt), so it is identical
        whether the attempt runs serially, on the first pool or on a
        restarted one -- and ``raise@1+`` means "crash every attempt of
        every job" (the retry-exhaustion/quarantine scenario) while
        ``raise@1`` crashes only first attempts, which then retry clean.
        """
        for spec in self._job_execute_specs:
            if spec.fires_on(attempt, self._fault_plan.seed, job.qualified_name):
                perf.add("resilience.injected.job.execute")
                return spec
        return None

    def _execute_pool(self, jobs: list[AnalysisJob]) -> list[AnalysisJob]:
        """Run *jobs* on a process pool; return the jobs still to be executed.

        One pool is created per wave rather than per run: a wave is a full
        submit/drain cycle anyway (callee bounds must be final before the
        next wave submits), and a fresh pool keeps the died-pool path simple
        -- the startup cost is tiny next to a function analysis.  A pool
        that dies mid-wave is re-created and the unfinished jobs resubmitted
        up to ``pool_restart_budget`` times; only past that budget (or on a
        permanent pickling error) does the wave fall back to serial
        execution.
        """
        pending_jobs = jobs
        while pending_jobs:
            try:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self._workers, len(pending_jobs))
                )
            except (OSError, ValueError) as error:
                perf.add("project.scheduler.pool_fallbacks")
                perf.add("project.scheduler.pool_fallback.create_failed")
                self._note_fallback(
                    f"pool-create-failed: {type(error).__name__}: {error}"
                )
                return pending_jobs
            try:
                retry_serially = self._pool_cycle(pool, pending_jobs)
            except (
                concurrent.futures.process.BrokenProcessPool,
                InjectedFault,
            ) as error:
                # the pool died (fork bans, OOM-killed worker, an injected
                # pool.submit fault): restart it for the unfinished jobs
                # while the restart budget lasts
                survivors = [
                    job
                    for job in pending_jobs
                    if job.summary is None and job.state is not JobState.FAILED
                ]
                for job in survivors:
                    job.state = JobState.PENDING
                if self.pool_restarts < self._pool_restart_budget:
                    self.pool_restarts += 1
                    perf.add("project.scheduler.pool_restarts")
                    pending_jobs = survivors
                    continue
                perf.add("project.scheduler.pool_fallbacks")
                perf.add("project.scheduler.pool_fallback.pool_died")
                self._note_fallback(
                    f"pool-died: {type(error).__name__}: {error} "
                    f"(restart budget of {self._pool_restart_budget} spent)"
                )
                return survivors
            except pickle.PicklingError as error:
                # a config that does not pickle is permanent: restarting the
                # pool would fail identically, so go straight to serial
                survivors = [
                    job
                    for job in pending_jobs
                    if job.summary is None and job.state is not JobState.FAILED
                ]
                for job in survivors:
                    job.state = JobState.PENDING
                perf.add("project.scheduler.pool_fallbacks")
                perf.add("project.scheduler.pool_fallback.pool_died")
                self._note_fallback(
                    f"pool-died: {type(error).__name__}: {error}"
                )
                return survivors
            if self.mode != "serial-fallback":
                # a fallback in an earlier wave keeps the report honest even
                # if this wave's pool came up fine
                self.mode = "process-pool"
            # jobs whose worker raised a transient error are retried on the
            # serial path (their attempt count carries over)
            return retry_serially
        return []

    def _pool_cycle(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        jobs: list[AnalysisJob],
    ) -> list[AnalysisJob]:
        """One submit/drain cycle; returns jobs to retry serially."""
        pending: dict[concurrent.futures.Future, AnalysisJob] = {}
        retry_serially: list[AnalysisJob] = []
        # the cross-process span handshake: workers record under the wave
        # span as parent and ship their events back for merging
        trace_payload = None
        context = obs.current_context()
        if self._tracer is not None and context is not None:
            trace_payload = {
                "trace_id": context.trace_id,
                "parent_id": context.span_id,
                "max_events": self._tracer.max_events,
            }
        with pool:
            for job in jobs:
                unit = self._project.unit(job.function.unit)
                if self._injector is not None:
                    # an injected pool.submit fault == the pool broke while
                    # feeding it work; handled by the restart loop above
                    self._injector.check("pool.submit", job.qualified_name)
                job.state = JobState.RUNNING
                spec = self._job_execute_spec(job, job.attempts + 1)
                inject = spec is not None and spec.kind is FaultKind.RAISE
                future = pool.submit(
                    _execute_analysis,
                    unit.name,
                    unit.source,
                    job.function.name,
                    self._job_config(job),
                    job.callee_bounds,
                    self._job_fault_plan(),
                    self._job_timeout,
                    inject,
                    trace_payload,
                    str(self._query_cache.root)
                    if self._query_store is not None
                    and self._query_cache.root is not None
                    else None,
                )
                pending[future] = job
            for future in concurrent.futures.as_completed(pending):
                job = pending.pop(future)
                try:
                    payload, seconds, span_events = future.result()
                except (
                    concurrent.futures.process.BrokenProcessPool,
                    pickle.PicklingError,
                ):
                    # pool-level trouble, not a property of this job
                    raise
                except JobTimeout as error:
                    job.attempts += 1
                    self._quarantine(job, f"wall-clock timeout: {error}")
                    continue
                except Exception as error:
                    job.attempts += 1
                    kind = classify_error(error)
                    job.fault_events.append(
                        f"attempt {job.attempts} failed ({kind}): "
                        f"{type(error).__name__}: {error}"
                    )
                    if (
                        kind == "transient"
                        and job.attempts < self._retry_policy.max_attempts
                    ):
                        job.retries += 1
                        perf.add("project.scheduler.retries")
                        job.state = JobState.PENDING
                        retry_serially.append(job)
                    elif kind == "transient":
                        self._quarantine(
                            job,
                            f"transient failures exhausted "
                            f"{self._retry_policy.max_attempts} attempt(s): "
                            f"{type(error).__name__}: {error}",
                        )
                    else:
                        self._fail(job, error)
                    continue
                if span_events and self._tracer is not None:
                    self._tracer.merge(span_events)
                self._complete(
                    job, FunctionSummary.from_dict(payload), seconds
                )
        return retry_serially

    def _execute_serial(self, job: AnalysisJob) -> None:
        """Run one job in-process, retrying transient failures with backoff."""
        unit = self._project.unit(job.function.unit)
        policy = self._retry_policy
        while True:
            job.state = JobState.RUNNING
            if job.attempts > 0:
                # a backoff sleep precedes every retry attempt; the delay is
                # a pure function of (seed, job, attempt) so chaos runs
                # sleep the same deterministic schedule every time
                time.sleep(policy.delay_for(job.attempts, job.qualified_name))
            job.attempts += 1
            started = time.perf_counter()
            try:
                with obs.span(
                    "project.job",
                    function=job.qualified_name,
                    worker="serial",
                ):
                    summary, seconds = self._run_job(job, unit, started)
            except JobTimeout as error:
                # a deterministic computation would time out again: no retry
                self._quarantine(job, f"wall-clock timeout: {error}")
                return
            except Exception as error:
                kind = classify_error(error)
                job.fault_events.append(
                    f"attempt {job.attempts} failed ({kind}): "
                    f"{type(error).__name__}: {error}"
                )
                if kind == "transient" and job.attempts < policy.max_attempts:
                    job.retries += 1
                    perf.add("project.scheduler.retries")
                    continue
                if kind == "transient":
                    self._quarantine(
                        job,
                        f"transient failures exhausted {policy.max_attempts} "
                        f"attempt(s): {type(error).__name__}: {error}",
                    )
                else:
                    # a genuine, permanent analysis error: the seed
                    # behaviour (fail the job, report it) is the right one
                    self._fail(job, error)
                return
            self._complete(job, summary, seconds)
            return

    def _run_job(
        self, job: AnalysisJob, unit, started: float
    ) -> tuple[FunctionSummary, float]:
        """One in-process analysis attempt under the job's resilience context."""
        injector_plan = self._job_fault_plan()
        injector = (
            FaultInjector(injector_plan) if injector_plan is not None else None
        )
        deadline = Deadline(self._job_timeout) if self._job_timeout else None
        inject = self._job_execute_spec(job, job.attempts)
        with using_query_store(self._query_store):
            if injector is None and deadline is None and inject is None:
                # reuse the unit's already-analysed AST in-process; the
                # pipeline is deterministic, so this matches the worker's
                # re-parse exactly
                report = WcetAnalyzer(
                    unit.analyzed,
                    job.function.name,
                    self._job_config(job),
                    callee_bounds=job.callee_bounds,
                ).analyze()
            else:
                with activate(
                    ResilienceContext(injector=injector, deadline=deadline)
                ):
                    if inject is not None and inject.kind is FaultKind.RAISE:
                        raise InjectedFault(
                            "job.execute", "injected job crash", 1
                        )
                    if inject is not None and inject.kind is FaultKind.DELAY:
                        time.sleep(inject.delay_ms / 1000.0)
                    report = WcetAnalyzer(
                        unit.analyzed,
                        job.function.name,
                        self._job_config(job),
                        callee_bounds=job.callee_bounds,
                    ).analyze()
        summary = FunctionSummary.from_report(
            unit.name, self._config.partitioner, report
        )
        return summary, time.perf_counter() - started

    # ------------------------------------------------------------------ #
    def _flight_dump(self, trigger: str, detail: str | None = None) -> None:
        """Freeze the recent trace timeline into the diagnostics directory."""
        if self._flight is None:
            return
        record = self._flight.dump(
            trigger,
            tracer=self._tracer,
            trace_id=self.trace_id,
            detail=detail,
        )
        if record is not None:
            self.flight_dumps.append(record)
            perf.add("obs.flight.dumps")

    def _fired_fault_summary(self, jobs: list[AnalysisJob]) -> str | None:
        """One line describing the faults this run absorbed (None = clean)."""
        fired: list[str] = []
        if self._injector is not None:
            fired.extend(self._injector.fired)
        for job in jobs:
            fired.extend(job.fault_events)
            if job.summary is not None:
                fired.extend(
                    event
                    for event in job.summary.fault_events
                    if event not in job.fault_events
                )
        if not fired:
            return None
        return f"{len(fired)} fault(s): " + "; ".join(fired[:8])

    def _quarantine(self, job: AnalysisJob, reason: str) -> None:
        """Isolate a crashing/timing-out job behind a static pessimised bound.

        The job's function still gets a *sound* (much coarser) WCET summary
        from :func:`static_pessimised_report`, so its callers analyse
        normally instead of cascading into failures -- one bad job degrades
        one bound, not the wave.
        """
        unit = self._project.unit(job.function.unit)
        try:
            report = static_pessimised_report(
                unit.analyzed,
                job.function.name,
                self._job_config(job),
                callee_bounds=job.callee_bounds,
                reason=f"quarantined: {reason}",
            )
        except Exception as error:
            # not even the static route works (e.g. the partition itself is
            # broken): that is a genuine failure, not a resilience case
            self._fail(job, error)
            return
        summary = FunctionSummary.from_report(
            unit.name, self._config.partitioner, report
        )
        summary.quarantined = True
        self._adopt_identity(job, summary)
        job.summary = summary
        job.state = JobState.QUARANTINED
        job.error = reason
        perf.add("project.jobs_quarantined")
        self._flight_dump(
            f"quarantine-{job.qualified_name}",
            detail=f"{job.qualified_name}: {reason}",
        )
        self._notify(job)

    def _complete(
        self, job: AnalysisJob, summary: FunctionSummary, seconds: float
    ) -> None:
        self._adopt_identity(job, summary)
        job.summary = summary
        job.state = JobState.DONE
        if not summary.degraded:
            # a degraded result is an artefact of this run's faults; caching
            # it would serve pessimised bounds to later clean runs
            self._cache.put(job.cache_key, summary)
        perf.add("project.jobs_executed")
        perf.record_time("project.analyze_function", seconds)
        self._notify(job)

    def _fail(self, job: AnalysisJob, error: Exception) -> None:
        job.state = JobState.FAILED
        job.error = f"{type(error).__name__}: {error}"
        perf.add("project.jobs_failed")
        self._notify(job)


def analyze_project(
    project: Project,
    config: AnalyzerConfig | None = None,
    cache: ResultCache | None = None,
    workers: int = 1,
    only: list[str] | None = None,
    interprocedural: bool = True,
    unknown_call_cycles: int | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    job_timeout_seconds: float | None = None,
    pool_restart_budget: int = 2,
    progress_callback=None,
    query_cache: ResultCache | None = None,
) -> ProjectReport:
    """Convenience wrapper: schedule and run every function of *project*."""
    return ProjectScheduler(
        project,
        config=config,
        cache=cache,
        workers=workers,
        only=only,
        interprocedural=interprocedural,
        unknown_call_cycles=unknown_call_cycles,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        job_timeout_seconds=job_timeout_seconds,
        pool_restart_budget=pool_restart_budget,
        progress_callback=progress_callback,
        query_cache=query_cache,
    ).run()
