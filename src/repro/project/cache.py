"""Persistent on-disk cache of per-function analysis results.

Results are keyed by a SHA-256 over three components:

* the cache schema version (bumping :data:`CACHE_SCHEMA` invalidates
  everything after an incompatible format change),
* the function's *transitive* fingerprint -- its content fingerprint
  (file-scope environment + pretty-printed body, see
  :func:`repro.project.model.function_fingerprint`) closed over the content
  of every resolved callee (see
  :meth:`repro.callgraph.graph.CallGraph.transitive_fingerprints`), so
  editing a leaf callee invalidates exactly the leaf plus its transitive
  callers -- and
* the fingerprint of the :class:`~repro.pipeline.analyzer.AnalyzerConfig`.

Each entry is one small JSON file ``<root>/<key[:2]>/<key>.json`` holding a
:class:`~repro.project.report.FunctionSummary` payload; the two-character
shard keeps directories small for big projects.  Writes are atomic
(temp file + ``os.replace``) so parallel runs sharing a cache directory never
observe torn entries, and corrupt or schema-mismatched entries read as
misses.  Hits and misses are counted per instance and into the global
:mod:`repro.perf` registry (``project.cache.hits`` / ``project.cache.misses``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .. import perf
from ..pipeline.analyzer import AnalyzerConfig
from .model import config_fingerprint
from .report import FunctionSummary

#: schema tag stored in (and required of) every cache entry; /2 added the
#: interprocedural summary fields and switched keys to transitive fingerprints
#: bumped to /3 with the query-engine refactor: cached summaries now
#: carry budget-exhaustion counts in their generator statistics
CACHE_SCHEMA = "repro-project-cache/3"


class ResultCache:
    """Content-addressed store of :class:`FunctionSummary` results."""

    def __init__(self, root: str | Path | None, enabled: bool = True):
        self._root = Path(root) if root is not None else None
        self.enabled = enabled and self._root is not None
        self.hits = 0
        self.misses = 0
        self.store_failures = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def disabled(cls) -> "ResultCache":
        return cls(root=None, enabled=False)

    @property
    def root(self) -> Path | None:
        return self._root

    # ------------------------------------------------------------------ #
    def key_for(self, function_fingerprint: str, config: AnalyzerConfig) -> str:
        """Cache key of one (function content, analyzer config) pair."""
        digest = hashlib.sha256(
            "\n".join(
                [CACHE_SCHEMA, function_fingerprint, config_fingerprint(config)]
            ).encode("utf-8")
        )
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        if self._root is None:
            raise ValueError("cache has no root directory")
        return self._root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> FunctionSummary | None:
        """Load the summary stored under *key*, or ``None`` on a miss."""
        if not self.enabled:
            return None
        with perf.timed("project.cache.lookup"):
            summary = self._read(key)
        if summary is None:
            self.misses += 1
            perf.add("project.cache.misses")
            return None
        self.hits += 1
        perf.add("project.cache.hits")
        summary.from_cache = True
        return summary

    def _read(self, key: str) -> FunctionSummary | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            return None
        summary = payload.get("summary")
        if not isinstance(summary, dict):
            return None
        try:
            return FunctionSummary.from_dict(summary)
        except TypeError:
            return None

    def put(self, key: str, summary: FunctionSummary) -> None:
        """Store *summary* under *key* (atomic; no-op when disabled).

        The cache is an optimization: an unwritable directory must not
        discard the analysis results it was asked to remember, so storage
        failures are swallowed and counted (``store_failures`` /
        ``project.cache.store_failures``) instead of raised.
        """
        if not self.enabled:
            return
        path = self.path_for(key)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "summary": summary.result_payload(),
        }
        try:
            with perf.timed("project.cache.store"):
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = tempfile.NamedTemporaryFile(
                    "w",
                    dir=path.parent,
                    prefix=f".{key[:8]}-",
                    suffix=".tmp",
                    delete=False,
                    encoding="utf-8",
                )
                try:
                    with handle:
                        json.dump(payload, handle, indent=2)
                        handle.write("\n")
                    os.replace(handle.name, path)
                except BaseException:
                    os.unlink(handle.name)
                    raise
        except OSError:
            self.store_failures += 1
            perf.add("project.cache.store_failures")
            return
        perf.add("project.cache.stores")
