"""Persistent on-disk cache of per-function analysis results.

Results are keyed by a SHA-256 over three components:

* the cache schema version (bumping :data:`CACHE_SCHEMA` invalidates
  everything after an incompatible format change),
* the function's *transitive* fingerprint -- its content fingerprint
  (file-scope environment + pretty-printed body, see
  :func:`repro.project.model.function_fingerprint`) closed over the content
  of every resolved callee (see
  :meth:`repro.callgraph.graph.CallGraph.transitive_fingerprints`), so
  editing a leaf callee invalidates exactly the leaf plus its transitive
  callers -- and
* the fingerprint of the :class:`~repro.pipeline.analyzer.AnalyzerConfig`.

Each entry is one small JSON file ``<root>/<key[:2]>/<key>.json`` holding a
:class:`~repro.project.report.FunctionSummary` payload; the two-character
shard keeps directories small for big projects.

Crash safety
------------
Writes are atomic (temp file + ``os.replace``) and serialised against other
writers of the same cache directory by an advisory ``flock`` on
``<root>/.lock``, so parallel runs sharing a cache never observe torn
entries.  Entries that are nevertheless unreadable -- a torn write from a
killed process, bit rot, a hostile edit -- are *quarantined*: moved to the
``corrupt/`` sibling directory next to a ``*.diag.json`` note, and counted
(``project.cache.quarantined``), so a bad entry can never poison a run twice
and the evidence survives for inspection.  Schema-mismatched entries are a
plain miss and are left in place (they belong to another code version).

Write failures are never silent: they are swallowed (the cache is an
optimization; an unwritable directory must not discard results), but counted
per instance (:attr:`ResultCache.write_failures`) and globally
(``project.cache.write_failures``), and the first failure records a
warn-once diagnostic the scheduler copies onto the project report.  No
``.tmp`` file is left behind on any failure path.  :meth:`ResultCache.verify`
sweeps the whole store on demand (CLI ``cache-verify``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .. import obs, perf
from ..pipeline.analyzer import AnalyzerConfig
from ..resilience import FaultInjector, FaultKind, InjectedFault
from .model import config_fingerprint
from .report import FunctionSummary

try:  # advisory locking is POSIX-only; the cache degrades to lockless
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: schema tag stored in (and required of) every cache entry; /2 added the
#: interprocedural summary fields and switched keys to transitive
#: fingerprints; /3 added budget-exhaustion counts to generator statistics;
#: /4 added the resilience fields (degraded/quarantined/retries) to
#: :class:`FunctionSummary` payloads
CACHE_SCHEMA = "repro-project-cache/4"

#: sibling directory quarantined (corrupt) entries are moved into
CORRUPT_DIR = "corrupt"


class ResultCache:
    """Content-addressed store of :class:`FunctionSummary` results."""

    def __init__(self, root: str | Path | None, enabled: bool = True):
        self._root = Path(root) if root is not None else None
        self.enabled = enabled and self._root is not None
        self.hits = 0
        self.misses = 0
        self.write_failures = 0
        self.read_failures = 0
        self.quarantined = 0
        #: entries skipped because they carry another code version's schema
        #: (a plain miss, counted separately from corruption for operators)
        self.schema_mismatches = 0
        #: warn-once diagnostics (first write failure, quarantines, ...)
        self.diagnostics: list[str] = []
        self._warned_write_failure = False
        #: injector for the ``cache.read`` / ``cache.write`` fault sites
        #: (attached by the scheduler or CLI in chaos runs)
        self.fault_injector: FaultInjector | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def disabled(cls) -> "ResultCache":
        return cls(root=None, enabled=False)

    @property
    def root(self) -> Path | None:
        return self._root

    @property
    def store_failures(self) -> int:
        """Backwards-compatible alias of :attr:`write_failures`."""
        return self.write_failures

    # ------------------------------------------------------------------ #
    def key_for(self, function_fingerprint: str, config: AnalyzerConfig) -> str:
        """Cache key of one (function content, analyzer config) pair."""
        digest = hashlib.sha256(
            "\n".join(
                [CACHE_SCHEMA, function_fingerprint, config_fingerprint(config)]
            ).encode("utf-8")
        )
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        if self._root is None:
            raise ValueError("cache has no root directory")
        return self._root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    def _maybe_fault(self, site: str, key: str):
        if self.fault_injector is None:
            return None
        return self.fault_injector.check(site, key)

    def _lock(self):
        """Advisory exclusive lock on ``<root>/.lock`` (context manager)."""
        return _CacheLock(self._root)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> FunctionSummary | None:
        """Load the summary stored under *key*, or ``None`` on a miss.

        Unreadable I/O (real or injected) counts ``read_failures`` and reads
        as a miss; a corrupt entry is quarantined and reads as a miss.
        """
        if not self.enabled:
            return None
        try:
            corrupt_payload = False
            spec = self._maybe_fault("cache.read", key)
            if spec is not None and spec.kind is FaultKind.CORRUPT:
                corrupt_payload = True
            with obs.span("cache.read", key=key[:12]), \
                    perf.timed("project.cache.lookup"):
                summary = self._read(key, force_corrupt=corrupt_payload)
        except InjectedFault as fault:
            self.read_failures += 1
            perf.add("project.cache.read_failures")
            self.diagnostics.append(f"cache read failed for {key[:12]}…: {fault}")
            summary = None
        if summary is None:
            self.misses += 1
            perf.add("project.cache.misses")
            return None
        self.hits += 1
        perf.add("project.cache.hits")
        summary.from_cache = True
        return summary

    def _read(self, key: str, force_corrupt: bool = False) -> FunctionSummary | None:
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            self.read_failures += 1
            perf.add("project.cache.read_failures")
            self.diagnostics.append(f"cache read failed for {key[:12]}…: {error}")
            return None
        if force_corrupt:
            # a CORRUPT fault at cache.read simulates a torn entry being
            # discovered at read time: garble the bytes we just read
            text = text[: max(1, len(text) // 2)]
        try:
            payload = json.loads(text)
        except ValueError as error:
            self._quarantine(path, key, f"unparsable JSON: {error}")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, key, "payload is not a JSON object")
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            # a different (older/newer) code version's entry: miss, not corrupt
            self.schema_mismatches += 1
            perf.add("project.cache.schema_mismatches")
            return None
        summary = payload.get("summary")
        if not isinstance(summary, dict):
            self._quarantine(path, key, "entry has no summary object")
            return None
        try:
            return FunctionSummary.from_dict(summary)
        except TypeError as error:
            self._quarantine(path, key, f"summary payload malformed: {error}")
            return None

    # ------------------------------------------------------------------ #
    def put(self, key: str, summary: FunctionSummary) -> None:
        """Store *summary* under *key* (atomic; no-op when disabled).

        The cache is an optimization: an unwritable directory must not
        discard the analysis results it was asked to remember, so storage
        failures are swallowed -- but counted (``write_failures`` /
        ``project.cache.write_failures``) and surfaced once as a diagnostic,
        and no temp file survives the failure.
        """
        if not self.enabled:
            return
        path = self.path_for(key)
        text = json.dumps(
            {"schema": CACHE_SCHEMA, "key": key, "summary": summary.result_payload()},
            indent=2,
        )
        try:
            with obs.span("cache.write", key=key[:12]), \
                    perf.timed("project.cache.store"), self._lock():
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = tempfile.NamedTemporaryFile(
                    "w",
                    dir=path.parent,
                    prefix=f".{key[:8]}-",
                    suffix=".tmp",
                    delete=False,
                    encoding="utf-8",
                )
                try:
                    spec = self._maybe_fault("cache.write", key)
                    if spec is not None and spec.kind is FaultKind.CORRUPT:
                        # simulate a torn write: persist a truncated entry
                        text = text[: max(1, len(text) // 2)]
                    with handle:
                        handle.write(text)
                        handle.write("\n")
                    os.replace(handle.name, path)
                except BaseException:
                    os.unlink(handle.name)
                    raise
        except (OSError, InjectedFault) as error:
            self.write_failures += 1
            perf.add("project.cache.write_failures")
            perf.add("project.cache.store_failures")
            if not self._warned_write_failure:
                self._warned_write_failure = True
                self.diagnostics.append(
                    f"cache writes are failing (first: {key[:12]}…: {error}); "
                    "results are kept in memory but will not be reused"
                )
            return
        perf.add("project.cache.stores")

    # ------------------------------------------------------------------ #
    def etag(self, key: str) -> str | None:
        """The HTTP entity tag of the entry stored under *key*, if any.

        The store is content-addressed -- the key already commits to the
        schema version, the function's transitive fingerprint and the
        analyzer config -- so the key *is* the strong validator: an entry
        can never change behind an unchanged key, only appear or vanish.
        Returns ``None`` when no entry exists (or caching is disabled).
        """
        if not self.enabled:
            return None
        return key if self.path_for(key).is_file() else None

    def stats(self) -> dict[str, object]:
        """Operational snapshot: store size on disk plus per-instance counts.

        ``entries``/``bytes`` walk the shard directories (cheap for the
        store sizes one daemon accumulates); the remaining fields are the
        counters this instance accumulated since it was opened, with
        schema-mismatched reads reported distinctly from corrupt ones.
        """
        entries = 0
        total_bytes = 0
        if self.enabled and self._root is not None and self._root.is_dir():
            for shard in self._root.iterdir():
                if not shard.is_dir() or shard.name == CORRUPT_DIR:
                    continue
                for path in shard.glob("*.json"):
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        continue
                    entries += 1
        return {
            "enabled": self.enabled,
            "directory": str(self._root) if self._root else None,
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "write_failures": self.write_failures,
            "read_failures": self.read_failures,
            "schema_mismatches": self.schema_mismatches,
            "quarantined": self.quarantined,
        }

    # ------------------------------------------------------------------ #
    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a corrupt entry to ``corrupt/`` with a diagnostic note."""
        assert self._root is not None
        target_dir = self._root / CORRUPT_DIR
        try:
            with self._lock():
                target_dir.mkdir(parents=True, exist_ok=True)
                target = target_dir / path.name
                os.replace(path, target)
                diag = target_dir / f"{path.stem}.diag.json"
                diag.write_text(
                    json.dumps({"key": key, "reason": reason}, indent=2) + "\n",
                    encoding="utf-8",
                )
        except OSError:
            # quarantine is best-effort; the entry still reads as a miss
            pass
        self.quarantined += 1
        perf.add("project.cache.quarantined")
        self.diagnostics.append(
            f"quarantined corrupt cache entry {key[:12]}…: {reason}"
        )

    def verify(self) -> dict[str, object]:
        """Sweep every entry, quarantining corrupt ones.

        Returns ``{"checked": n, "ok": n, "quarantined": n,
        "schema_mismatch": n, "entries": [...diagnostics...]}``.
        """
        report: dict[str, object] = {
            "checked": 0,
            "ok": 0,
            "quarantined": 0,
            "schema_mismatch": 0,
            "entries": [],
        }
        if not self.enabled or self._root is None or not self._root.is_dir():
            return report
        notes: list[str] = report["entries"]  # type: ignore[assignment]
        for shard in sorted(self._root.iterdir()):
            if not shard.is_dir() or shard.name == CORRUPT_DIR:
                continue
            for path in sorted(shard.glob("*.json")):
                key = path.stem
                report["checked"] = int(report["checked"]) + 1
                quarantined_before = self.quarantined
                summary = self._read(key)
                if summary is not None:
                    report["ok"] = int(report["ok"]) + 1
                elif self.quarantined > quarantined_before:
                    report["quarantined"] = int(report["quarantined"]) + 1
                    notes.append(self.diagnostics[-1])
                else:
                    report["schema_mismatch"] = int(report["schema_mismatch"]) + 1
                    notes.append(f"schema mismatch (stale version): {key[:12]}…")
        perf.add("project.cache.verified_entries", int(report["checked"]))
        return report


class _CacheLock:
    """Advisory exclusive ``flock`` on ``<root>/.lock`` (best-effort)."""

    def __init__(self, root: Path | None):
        self._root = root
        self._handle = None

    def __enter__(self):
        if fcntl is None or self._root is None:
            return self
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._root / ".lock", "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            # lockless operation beats failing the write outright
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        return self

    def __exit__(self, *exc_info):
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock cannot really fail
                pass
            self._handle.close()
            self._handle = None
        return False
