"""Persistent on-disk cache of per-function analysis results.

Results are keyed by a SHA-256 over three components:

* the cache schema version (bumping :data:`CACHE_SCHEMA` invalidates
  everything after an incompatible format change),
* the function's *transitive* fingerprint -- its content fingerprint
  (file-scope environment + pretty-printed body, see
  :func:`repro.project.model.function_fingerprint`) closed over the content
  of every resolved callee (see
  :meth:`repro.callgraph.graph.CallGraph.transitive_fingerprints`), so
  editing a leaf callee invalidates exactly the leaf plus its transitive
  callers -- and
* the fingerprint of the :class:`~repro.pipeline.analyzer.AnalyzerConfig`.

Each entry is one small JSON file ``<root>/<key[:2]>/<key>.json`` holding a
:class:`~repro.project.report.FunctionSummary` payload; the two-character
shard keeps directories small for big projects.

Crash safety
------------
Writes are atomic (temp file + ``os.replace``) and serialised against other
writers of the same cache directory by an advisory ``flock`` on
``<root>/.lock``, so parallel runs sharing a cache never observe torn
entries.  Entries that are nevertheless unreadable -- a torn write from a
killed process, bit rot, a hostile edit -- are *quarantined*: moved to the
``corrupt/`` sibling directory next to a ``*.diag.json`` note, and counted
(``project.cache.quarantined``), so a bad entry can never poison a run twice
and the evidence survives for inspection.  Schema-mismatched entries are a
plain miss and are left in place (they belong to another code version).

Write failures are never silent: they are swallowed (the cache is an
optimization; an unwritable directory must not discard results), but counted
per instance (:attr:`ResultCache.write_failures`) and globally
(``project.cache.write_failures``), and the first failure records a
warn-once diagnostic the scheduler copies onto the project report.  No
``.tmp`` file is left behind on any failure path.  :meth:`ResultCache.verify`
sweeps the whole store on demand (CLI ``cache-verify``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .. import obs, perf
from ..pipeline.analyzer import AnalyzerConfig
from ..resilience import FaultInjector, FaultKind, InjectedFault
from .model import config_fingerprint
from .report import FunctionSummary

try:  # advisory locking is POSIX-only; the cache degrades to lockless
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: schema tag stored in (and required of) every cache entry; /2 added the
#: interprocedural summary fields and switched keys to transitive
#: fingerprints; /3 added budget-exhaustion counts to generator statistics;
#: /4 added the resilience fields (degraded/quarantined/retries) to
#: :class:`FunctionSummary` payloads; /5 added the ``kind`` discriminator
#: and the model-checking query namespace (persisted per-(slice, goal)
#: verdicts + witnesses, see :mod:`repro.mc.store`); /6 added the
#: static-analysis fields (sa_diagnostics/sa_edges_pruned/
#: sa_loop_bounds_inferred) to :class:`FunctionSummary` payloads
CACHE_SCHEMA = "repro-project-cache/6"

#: sibling directory quarantined (corrupt) entries are moved into
CORRUPT_DIR = "corrupt"


class ResultCache:
    """Content-addressed store of :class:`FunctionSummary` results."""

    def __init__(self, root: str | Path | None, enabled: bool = True):
        self._root = Path(root) if root is not None else None
        self.enabled = enabled and self._root is not None
        self.hits = 0
        self.misses = 0
        #: query-namespace lookups (kept apart from the function-level
        #: ``hits``/``misses``, which feed the project report's cache stats)
        self.query_hits = 0
        self.query_misses = 0
        self.write_failures = 0
        self.read_failures = 0
        self.quarantined = 0
        #: entries skipped because they carry another code version's schema
        #: (a plain miss, counted separately from corruption for operators)
        self.schema_mismatches = 0
        #: warn-once diagnostics (first write failure, quarantines, ...)
        self.diagnostics: list[str] = []
        self._warned_write_failure = False
        #: injector for the ``cache.read`` / ``cache.write`` fault sites
        #: (attached by the scheduler or CLI in chaos runs)
        self.fault_injector: FaultInjector | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def disabled(cls) -> "ResultCache":
        return cls(root=None, enabled=False)

    @property
    def root(self) -> Path | None:
        return self._root

    @property
    def store_failures(self) -> int:
        """Backwards-compatible alias of :attr:`write_failures`."""
        return self.write_failures

    # ------------------------------------------------------------------ #
    def key_for(self, function_fingerprint: str, config: AnalyzerConfig) -> str:
        """Cache key of one (function content, analyzer config) pair."""
        digest = hashlib.sha256(
            "\n".join(
                [CACHE_SCHEMA, function_fingerprint, config_fingerprint(config)]
            ).encode("utf-8")
        )
        return digest.hexdigest()

    def query_key_for(self, slice_fingerprint: str, goal_fingerprint: str) -> str:
        """Cache key of one (sliced system, goal) model-checking query.

        The ``"query"`` component namespaces these keys away from the
        function-level ones, so both kinds share one directory, lock and
        quarantine machinery without ever colliding.
        """
        digest = hashlib.sha256(
            "\n".join(
                [CACHE_SCHEMA, "query", slice_fingerprint, goal_fingerprint]
            ).encode("utf-8")
        )
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        if self._root is None:
            raise ValueError("cache has no root directory")
        return self._root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    def _maybe_fault(self, site: str, key: str):
        if self.fault_injector is None:
            return None
        return self.fault_injector.check(site, key)

    def _lock(self):
        """Advisory exclusive lock on ``<root>/.lock`` (context manager)."""
        return _CacheLock(self._root)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> FunctionSummary | None:
        """Load the summary stored under *key*, or ``None`` on a miss.

        Unreadable I/O (real or injected) counts ``read_failures`` and reads
        as a miss; a corrupt entry is quarantined and reads as a miss.
        """
        if not self.enabled:
            return None
        try:
            corrupt_payload = False
            spec = self._maybe_fault("cache.read", key)
            if spec is not None and spec.kind is FaultKind.CORRUPT:
                corrupt_payload = True
            with obs.span("cache.read", key=key[:12]), \
                    perf.timed("project.cache.lookup"):
                summary = self._read(key, force_corrupt=corrupt_payload)
        except InjectedFault as fault:
            self.read_failures += 1
            perf.add("project.cache.read_failures")
            self.diagnostics.append(f"cache read failed for {key[:12]}…: {fault}")
            summary = None
        if summary is None:
            self.misses += 1
            perf.add("project.cache.misses")
            return None
        self.hits += 1
        perf.add("project.cache.hits")
        summary.from_cache = True
        return summary

    def _read(self, key: str, force_corrupt: bool = False) -> FunctionSummary | None:
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            self.read_failures += 1
            perf.add("project.cache.read_failures")
            self.diagnostics.append(f"cache read failed for {key[:12]}…: {error}")
            return None
        if force_corrupt:
            # a CORRUPT fault at cache.read simulates a torn entry being
            # discovered at read time: garble the bytes we just read
            text = text[: max(1, len(text) // 2)]
        try:
            payload = json.loads(text)
        except ValueError as error:
            self._quarantine(path, key, f"unparsable JSON: {error}")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, key, "payload is not a JSON object")
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            # a different (older/newer) code version's entry: miss, not corrupt
            self.schema_mismatches += 1
            perf.add("project.cache.schema_mismatches")
            return None
        if payload.get("kind", "function") != "function":
            # a query-namespace entry under a function key cannot happen by
            # construction; treat a mislabelled one as another version's
            self.schema_mismatches += 1
            perf.add("project.cache.schema_mismatches")
            return None
        summary = payload.get("summary")
        if not isinstance(summary, dict):
            self._quarantine(path, key, "entry has no summary object")
            return None
        try:
            return FunctionSummary.from_dict(summary)
        except TypeError as error:
            self._quarantine(path, key, f"summary payload malformed: {error}")
            return None

    # ------------------------------------------------------------------ #
    def put(self, key: str, summary: FunctionSummary) -> None:
        """Store *summary* under *key* (atomic; no-op when disabled).

        The cache is an optimization: an unwritable directory must not
        discard the analysis results it was asked to remember, so storage
        failures are swallowed -- but counted (``write_failures`` /
        ``project.cache.write_failures``) and surfaced once as a diagnostic,
        and no temp file survives the failure.
        """
        if not self.enabled:
            return
        text = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "key": key,
                "kind": "function",
                "summary": summary.result_payload(),
            },
            indent=2,
        )
        self._store_text(key, text)

    def _store_text(self, key: str, text: str) -> bool:
        """Atomically persist one entry's JSON text (shared by both kinds)."""
        path = self.path_for(key)
        try:
            with obs.span("cache.write", key=key[:12]), \
                    perf.timed("project.cache.store"), self._lock():
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = tempfile.NamedTemporaryFile(
                    "w",
                    dir=path.parent,
                    prefix=f".{key[:8]}-",
                    suffix=".tmp",
                    delete=False,
                    encoding="utf-8",
                )
                try:
                    spec = self._maybe_fault("cache.write", key)
                    if spec is not None and spec.kind is FaultKind.CORRUPT:
                        # simulate a torn write: persist a truncated entry
                        text = text[: max(1, len(text) // 2)]
                    with handle:
                        handle.write(text)
                        handle.write("\n")
                    os.replace(handle.name, path)
                except BaseException:
                    os.unlink(handle.name)
                    raise
        except (OSError, InjectedFault) as error:
            self.write_failures += 1
            perf.add("project.cache.write_failures")
            perf.add("project.cache.store_failures")
            if not self._warned_write_failure:
                self._warned_write_failure = True
                self.diagnostics.append(
                    f"cache writes are failing (first: {key[:12]}…: {error}); "
                    "results are kept in memory but will not be reused"
                )
            return False
        perf.add("project.cache.stores")
        return True

    # ------------------------------------------------------------------ #
    # the model-checking query namespace (see repro.mc.store)
    # ------------------------------------------------------------------ #
    def get_query(self, key: str) -> dict | None:
        """Load the raw query-store entry under *key*, or ``None`` on a miss.

        Mirrors :meth:`get` (fault site, span, quarantine on corruption) but
        hands back the raw entry object: *semantic* validation -- checksum,
        fingerprint echo, witness replay -- belongs to
        :class:`repro.mc.store.QueryStore`, which treats anything invalid
        as a miss and quarantines it via :meth:`quarantine_query`.
        """
        if not self.enabled:
            return None
        try:
            corrupt_payload = False
            spec = self._maybe_fault("cache.read", key)
            if spec is not None and spec.kind is FaultKind.CORRUPT:
                corrupt_payload = True
            with obs.span("cache.read", key=key[:12]), \
                    perf.timed("project.cache.lookup"):
                entry = self._read_query(key, force_corrupt=corrupt_payload)
        except InjectedFault as fault:
            self.read_failures += 1
            perf.add("project.cache.read_failures")
            self.diagnostics.append(f"cache read failed for {key[:12]}…: {fault}")
            entry = None
        if entry is None:
            self.query_misses += 1
            perf.add("project.cache.query_misses")
            return None
        self.query_hits += 1
        perf.add("project.cache.query_hits")
        return entry

    def _read_query(self, key: str, force_corrupt: bool = False) -> dict | None:
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            self.read_failures += 1
            perf.add("project.cache.read_failures")
            self.diagnostics.append(f"cache read failed for {key[:12]}…: {error}")
            return None
        if force_corrupt:
            text = text[: max(1, len(text) // 2)]
        try:
            payload = json.loads(text)
        except ValueError as error:
            self._quarantine(path, key, f"unparsable JSON: {error}")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, key, "payload is not a JSON object")
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            self.schema_mismatches += 1
            perf.add("project.cache.schema_mismatches")
            return None
        if payload.get("kind") != "query":
            self.schema_mismatches += 1
            perf.add("project.cache.schema_mismatches")
            return None
        entry = payload.get("entry")
        if not isinstance(entry, dict):
            self._quarantine(path, key, "query entry has no entry object")
            return None
        return entry

    def put_query(self, key: str, entry: dict) -> bool:
        """Store one query-store entry (atomic; ``False`` when not stored)."""
        if not self.enabled:
            return False
        text = json.dumps(
            {"schema": CACHE_SCHEMA, "key": key, "kind": "query", "entry": entry},
            indent=2,
        )
        return self._store_text(key, text)

    def quarantine_query(self, key: str, reason: str) -> None:
        """Quarantine the query entry under *key* (e.g. failed witness replay)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        if path.is_file():
            self._quarantine(path, key, reason)

    # ------------------------------------------------------------------ #
    def etag(self, key: str) -> str | None:
        """The HTTP entity tag of the entry stored under *key*, if any.

        The store is content-addressed -- the key already commits to the
        schema version, the function's transitive fingerprint and the
        analyzer config -- so the key *is* the strong validator: an entry
        can never change behind an unchanged key, only appear or vanish.
        Returns ``None`` when no entry exists (or caching is disabled).
        """
        if not self.enabled:
            return None
        return key if self.path_for(key).is_file() else None

    def stats(self) -> dict[str, object]:
        """Operational snapshot: store size on disk plus per-instance counts.

        ``entries``/``bytes`` walk the shard directories (cheap for the
        store sizes one daemon accumulates); the remaining fields are the
        counters this instance accumulated since it was opened, with
        schema-mismatched reads reported distinctly from corrupt ones.
        """
        entries = 0
        total_bytes = 0
        if self.enabled and self._root is not None and self._root.is_dir():
            for shard in self._root.iterdir():
                if not shard.is_dir() or shard.name == CORRUPT_DIR:
                    continue
                for path in shard.glob("*.json"):
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        continue
                    entries += 1
        return {
            "enabled": self.enabled,
            "directory": str(self._root) if self._root else None,
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "write_failures": self.write_failures,
            "read_failures": self.read_failures,
            "schema_mismatches": self.schema_mismatches,
            "quarantined": self.quarantined,
        }

    # ------------------------------------------------------------------ #
    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a corrupt entry to ``corrupt/`` with a diagnostic note."""
        assert self._root is not None
        target_dir = self._root / CORRUPT_DIR
        try:
            with self._lock():
                target_dir.mkdir(parents=True, exist_ok=True)
                target = target_dir / path.name
                os.replace(path, target)
                diag = target_dir / f"{path.stem}.diag.json"
                diag.write_text(
                    json.dumps({"key": key, "reason": reason}, indent=2) + "\n",
                    encoding="utf-8",
                )
        except OSError:
            # quarantine is best-effort; the entry still reads as a miss
            pass
        self.quarantined += 1
        perf.add("project.cache.quarantined")
        self.diagnostics.append(
            f"quarantined corrupt cache entry {key[:12]}…: {reason}"
        )

    def verify(self) -> dict[str, object]:
        """Sweep every entry of both kinds, quarantining corrupt ones.

        Function entries are checked by re-reading them; query entries get
        the offline structural validation of :mod:`repro.mc.store`
        (checksum over the canonical entry, verdict/witness shape, trace
        chaining) -- witness *replay* needs the sliced system and happens
        on the load path instead.  Returns ``{"checked": n, "ok": n,
        "quarantined": n, "schema_mismatch": n, "query_checked": n,
        "query_ok": n, "query_quarantined": n, "entries": [...]}``.
        """
        report: dict[str, object] = {
            "checked": 0,
            "ok": 0,
            "quarantined": 0,
            "schema_mismatch": 0,
            "query_checked": 0,
            "query_ok": 0,
            "query_quarantined": 0,
            "entries": [],
        }
        if not self.enabled or self._root is None or not self._root.is_dir():
            return report
        from ..mc.store import structural_error

        notes: list[str] = report["entries"]  # type: ignore[assignment]
        for shard in sorted(self._root.iterdir()):
            if not shard.is_dir() or shard.name == CORRUPT_DIR:
                continue
            for path in sorted(shard.glob("*.json")):
                key = path.stem
                report["checked"] = int(report["checked"]) + 1
                is_query = self._entry_kind(path) == "query"
                if is_query:
                    report["query_checked"] = int(report["query_checked"]) + 1
                quarantined_before = self.quarantined
                if is_query:
                    entry = self._read_query(key)
                    if entry is not None:
                        reason = structural_error(entry)
                        if reason is not None:
                            self._quarantine(
                                path, key, f"query entry invalid: {reason}"
                            )
                            entry = None
                    ok = entry is not None
                    if ok:
                        report["query_ok"] = int(report["query_ok"]) + 1
                else:
                    ok = self._read(key) is not None
                if ok:
                    report["ok"] = int(report["ok"]) + 1
                elif self.quarantined > quarantined_before:
                    report["quarantined"] = int(report["quarantined"]) + 1
                    if is_query:
                        report["query_quarantined"] = (
                            int(report["query_quarantined"]) + 1
                        )
                    notes.append(self.diagnostics[-1])
                else:
                    report["schema_mismatch"] = int(report["schema_mismatch"]) + 1
                    notes.append(f"schema mismatch (stale version): {key[:12]}…")
        perf.add("project.cache.verified_entries", int(report["checked"]))
        return report

    def _entry_kind(self, path: Path) -> str | None:
        """Best-effort ``kind`` discriminator of one entry file."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        kind = payload.get("kind", "function")
        return kind if isinstance(kind, str) else None


class _CacheLock:
    """Advisory exclusive ``flock`` on ``<root>/.lock`` (best-effort)."""

    def __init__(self, root: Path | None):
        self._root = root
        self._handle = None

    def __enter__(self):
        if fcntl is None or self._root is None:
            return self
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._root / ".lock", "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            # lockless operation beats failing the write outright
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        return self

    def __exit__(self, *exc_info):
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock cannot really fail
                pass
            self._handle.close()
            self._handle = None
        return False
