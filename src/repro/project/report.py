"""Project-level aggregation of per-function WCET results.

:class:`FunctionSummary` is the JSON-friendly extract of one
:class:`~repro.wcet.report.WcetReport` -- it is what process-pool workers
return to the scheduler and what the persistent result cache stores, so it
deliberately contains only plain data (no ASTs, CFGs or measurement
databases).  :class:`ProjectReport` aggregates the summaries of a whole
batch run together with cache and scheduling statistics and renders them as
text (CLI) or JSON (``--json`` export / tooling).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from ..wcet.report import WcetReport

#: schema tag of the JSON project report
#: bumped to /3 with the query-engine refactor (budget-exhaustion totals);
#: /4 added the resilience section (quarantined/degraded/retries/pool
#: restarts, fault plan, diagnostics); /5 added the observability section
#: (trace id/span count of a traced run) and flight-recorder dump records
#: under resilience; /6 added the static_analysis section and per-function
#: sa fields (diagnostics, pruned edges, inferred loop bounds)
PROJECT_REPORT_SCHEMA = "repro-project-report/6"


@dataclass
class FunctionSummary:
    """Plain-data result of one function analysis."""

    unit: str
    function: str
    path_bound: int
    partitioner: str
    segments: int
    instrumentation_points: int
    measurements_required: int
    measurement_runs: int
    test_vectors_used: int
    infeasible_paths: int
    wcet_bound_cycles: int
    measured_wcet_cycles: int | None
    overestimation: float | None
    safe: bool
    critical_segments: list[int] = field(default_factory=list)
    generator_statistics: dict[str, int] = field(default_factory=dict)
    #: qualified names (unit:function) of the resolved project callees
    callees: list[str] = field(default_factory=list)
    #: callee name -> WCET bound charged per call site (interprocedural mode)
    callee_bounds_used: dict[str, int] = field(default_factory=dict)
    #: syntactic call sites charged with a callee summary
    summarised_call_sites: int = 0
    #: dependency wave the function was scheduled on (0 = leaf callees)
    wave: int = 0
    #: content fingerprint closed over resolved callees (the cache-key basis)
    transitive_fingerprint: str = ""
    #: result-cache key this summary is stored under ("" when caching is off)
    cache_key: str = ""
    #: True when the summary was loaded from the cache instead of computed
    from_cache: bool = False
    #: True when injected faults forced part of the analysis onto the static
    #: pessimisation route (the bound is still sound, just coarser)
    degraded: bool = False
    #: why the result is degraded (None when ``degraded`` is False)
    degraded_reason: str | None = None
    #: True when the job itself kept crashing/timing out and the whole
    #: function was pessimised from static estimates (no measurement at all)
    quarantined: bool = False
    #: transient failures retried before this result was produced
    retries: int = 0
    #: descriptions of injected faults / degradations observed during the job
    fault_events: list[str] = field(default_factory=list)
    #: static-analysis program diagnostics (``repro.sa``) as plain dicts
    sa_diagnostics: list[dict] = field(default_factory=list)
    #: CFG edges the static feasibility pass proved infeasible
    sa_edges_pruned: int = 0
    #: loop headers whose bound the static pass inferred exactly
    sa_loop_bounds_inferred: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_report(
        cls, unit: str, partitioner: str, report: WcetReport, cache_key: str = ""
    ) -> "FunctionSummary":
        return cls(
            unit=unit,
            function=report.function_name,
            path_bound=report.path_bound,
            partitioner=partitioner,
            segments=len(report.partition.segments),
            instrumentation_points=report.partition.instrumentation_points,
            measurements_required=report.partition.measurements,
            measurement_runs=len(report.database),
            test_vectors_used=report.test_vectors_used,
            infeasible_paths=report.infeasible_paths,
            wcet_bound_cycles=report.wcet_bound_cycles,
            measured_wcet_cycles=report.measured_wcet_cycles,
            overestimation=report.overestimation_ratio,
            safe=report.is_safe(),
            critical_segments=sorted(report.bound.critical_segments),
            generator_statistics=dict(report.generator_statistics),
            callee_bounds_used=dict(report.callee_bounds_used),
            summarised_call_sites=report.summarised_call_sites,
            cache_key=cache_key,
            degraded=report.degraded,
            degraded_reason="; ".join(report.fault_events) or None
            if report.degraded
            else None,
            fault_events=list(report.fault_events),
            sa_diagnostics=[dict(d) for d in report.sa_diagnostics],
            sa_edges_pruned=report.sa_edges_pruned,
            sa_loop_bounds_inferred=report.sa_loop_bounds_inferred,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionSummary":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def result_payload(self) -> dict[str, Any]:
        """The cache- and scheduling-independent identity of the result.

        Serial and parallel runs must agree on this payload exactly; it
        excludes ``from_cache``, ``retries`` and ``fault_events`` --
        properties of the run that produced the result (where it ran, what
        infrastructure trouble it survived), not of the result itself.
        """
        payload = self.to_dict()
        payload.pop("from_cache")
        payload.pop("retries")
        payload.pop("fault_events")
        return payload


@dataclass
class ProjectFailure:
    """One function analysis that raised instead of producing a report."""

    unit: str
    function: str
    error: str

    def to_dict(self) -> dict[str, str]:
        return {"unit": self.unit, "function": self.function, "error": self.error}


@dataclass
class ProjectReport:
    """Aggregated result of one project batch run."""

    functions: list[FunctionSummary]
    failures: list[ProjectFailure] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_dir: str | None = None
    #: "serial", "process-pool", or "serial-fallback" (a pool could not be
    #: created or died / could not pickle, and the batch ran serially)
    mode: str = "serial"
    #: why the scheduler fell back to serial execution (None = no fallback)
    fallback_reason: str | None = None
    workers: int = 1
    #: number of dependency waves the job graph was executed in
    waves: int = 1
    #: total call sites charged with a reused callee summary across the batch
    summary_reuse_calls: int = 0
    #: call-graph export (functions, edges, waves, cycles, diagnostics)
    callgraph: dict[str, Any] | None = None
    elapsed_seconds: float = 0.0
    #: process pools re-created after a death before giving up on pooling
    pool_restarts: int = 0
    #: cache writes that failed (swallowed but never silent)
    cache_write_failures: int = 0
    #: corrupt cache entries quarantined to ``corrupt/`` during the run
    cache_quarantined: int = 0
    #: descriptions of the injected fault plan (empty outside chaos runs)
    fault_plan: list[str] = field(default_factory=list)
    #: warn-once run diagnostics (cache write failures, quarantines, ...)
    diagnostics: list[str] = field(default_factory=list)
    #: ``{trigger, trace_id, path}`` records of the flight-recorder dumps
    #: written during the run (quarantines, fired faults)
    flight_dumps: list[dict[str, Any]] = field(default_factory=list)
    #: trace id of the run's root span (None when the run was untraced)
    trace_id: str | None = None
    #: span events the run's tracer held when the report was built
    trace_spans: int = 0

    # ------------------------------------------------------------------ #
    @property
    def total_functions(self) -> int:
        return len(self.functions)

    @property
    def total_segments(self) -> int:
        return sum(summary.segments for summary in self.functions)

    @property
    def total_instrumentation_points(self) -> int:
        return sum(summary.instrumentation_points for summary in self.functions)

    @property
    def total_measurement_runs(self) -> int:
        return sum(summary.measurement_runs for summary in self.functions)

    @property
    def total_test_vectors(self) -> int:
        return sum(summary.test_vectors_used for summary in self.functions)

    @property
    def all_safe(self) -> bool:
        return all(summary.safe for summary in self.functions)

    @property
    def total_budget_exhausted_queries(self) -> int:
        """Model-checking queries that ran out of their QueryBudget."""
        return sum(
            summary.generator_statistics.get("model_checking_budget_exhausted", 0)
            for summary in self.functions
        )

    @property
    def quarantined_functions(self) -> list[str]:
        """Qualified names of functions analysed via quarantine pessimisation."""
        return [
            f"{summary.unit}:{summary.function}"
            for summary in self.functions
            if summary.quarantined
        ]

    @property
    def degraded_functions(self) -> list[str]:
        """Qualified names of functions with (partially) degraded results."""
        return [
            f"{summary.unit}:{summary.function}"
            for summary in self.functions
            if summary.degraded
        ]

    @property
    def total_retries(self) -> int:
        return sum(summary.retries for summary in self.functions)

    @property
    def total_sa_edges_pruned(self) -> int:
        """CFG edges proven infeasible by the static pass across the batch."""
        return sum(summary.sa_edges_pruned for summary in self.functions)

    @property
    def total_sa_loop_bounds_inferred(self) -> int:
        return sum(summary.sa_loop_bounds_inferred for summary in self.functions)

    @property
    def total_sa_diagnostics(self) -> int:
        return sum(len(summary.sa_diagnostics) for summary in self.functions)

    def sa_diagnostics_by_severity(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}`` over the whole batch."""
        counts: dict[str, int] = {}
        for summary in self.functions:
            for diagnostic in summary.sa_diagnostics:
                severity = diagnostic.get("severity", "info")
                counts[severity] = counts.get(severity, 0) + 1
        return counts

    def function_payloads(self) -> list[dict[str, Any]]:
        """Per-function result payloads (the serial-vs-parallel invariant)."""
        return [summary.result_payload() for summary in self.functions]

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PROJECT_REPORT_SCHEMA,
            "totals": {
                "functions": self.total_functions,
                "segments": self.total_segments,
                "instrumentation_points": self.total_instrumentation_points,
                "measurement_runs": self.total_measurement_runs,
                "test_vectors_used": self.total_test_vectors,
                "budget_exhausted_queries": self.total_budget_exhausted_queries,
                "all_safe": self.all_safe,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "directory": self.cache_dir,
                "write_failures": self.cache_write_failures,
                "quarantined_entries": self.cache_quarantined,
            },
            "execution": {
                "mode": self.mode,
                "fallback_reason": self.fallback_reason,
                "workers": self.workers,
                "waves": self.waves,
                "elapsed_seconds": self.elapsed_seconds,
            },
            "resilience": {
                "fault_plan": list(self.fault_plan),
                "quarantined_functions": self.quarantined_functions,
                "degraded_functions": self.degraded_functions,
                "retries": self.total_retries,
                "pool_restarts": self.pool_restarts,
                "diagnostics": list(self.diagnostics),
                "flight_dumps": [dict(dump) for dump in self.flight_dumps],
            },
            "observability": {
                "trace_id": self.trace_id,
                "trace_spans": self.trace_spans,
                "flight_dumps": len(self.flight_dumps),
            },
            "static_analysis": {
                "edges_pruned": self.total_sa_edges_pruned,
                "loop_bounds_inferred": self.total_sa_loop_bounds_inferred,
                "diagnostics": self.total_sa_diagnostics,
                "diagnostics_by_severity": self.sa_diagnostics_by_severity(),
            },
            "interprocedural": {
                "summary_reuse_calls": self.summary_reuse_calls,
                "callgraph": self.callgraph,
            },
            "functions": [summary.to_dict() for summary in self.functions],
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        lines = [
            f"Project WCET report: {self.total_functions} function(s)",
            f"  execution mode            : {self.mode} ({self.workers} worker(s), "
            f"{self.waves} wave(s), {self.elapsed_seconds:.2f}s)",
        ]
        if self.fallback_reason:
            lines.append(f"  serial fallback reason    : {self.fallback_reason}")
        lines += [
            f"  callee summaries reused   : {self.summary_reuse_calls} call site(s)",
            f"  result cache              : {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)"
            + (f" in {self.cache_dir}" if self.cache_dir else " (disabled)"),
            f"  total segments            : {self.total_segments}",
            f"  total instrumentation pts : {self.total_instrumentation_points}",
            f"  total measurement runs    : {self.total_measurement_runs}",
            f"  total test vectors        : {self.total_test_vectors}",
            f"  all bounds safe           : {self.all_safe}",
        ]
        if self.total_budget_exhausted_queries:
            lines.append(
                f"  mc budget exhausted       : "
                f"{self.total_budget_exhausted_queries} query(ies) "
                "(segments pessimised, not hung)"
            )
        if (
            self.total_sa_edges_pruned
            or self.total_sa_loop_bounds_inferred
            or self.total_sa_diagnostics
        ):
            by_severity = self.sa_diagnostics_by_severity()
            severity_text = (
                " ("
                + ", ".join(
                    f"{count} {severity}"
                    for severity, count in sorted(by_severity.items())
                )
                + ")"
                if by_severity
                else ""
            )
            lines.append(
                f"  static analysis           : "
                f"{self.total_sa_edges_pruned} edge(s) pruned, "
                f"{self.total_sa_loop_bounds_inferred} loop bound(s) inferred, "
                f"{self.total_sa_diagnostics} diagnostic(s){severity_text}"
            )
        if self.fault_plan:
            lines.append(
                f"  injected fault plan       : {', '.join(self.fault_plan)}"
            )
        quarantined = self.quarantined_functions
        degraded = self.degraded_functions
        if quarantined:
            lines.append(
                f"  quarantined functions     : {len(quarantined)} "
                f"({', '.join(quarantined)}) -- static pessimisation, "
                "bounds remain sound"
            )
        if degraded:
            lines.append(
                f"  degraded functions        : {len(degraded)} "
                f"({', '.join(degraded)})"
            )
        if self.total_retries:
            lines.append(f"  transient retries         : {self.total_retries}")
        if self.pool_restarts:
            lines.append(f"  pool restarts             : {self.pool_restarts}")
        if self.cache_write_failures:
            lines.append(
                f"  cache write failures      : {self.cache_write_failures}"
            )
        if self.cache_quarantined:
            lines.append(
                f"  cache entries quarantined : {self.cache_quarantined}"
            )
        if self.trace_id:
            lines.append(
                f"  trace                     : {self.trace_id} "
                f"({self.trace_spans} span(s))"
            )
        for dump in self.flight_dumps:
            lines.append(
                f"  flight dump               : {dump.get('path')} "
                f"(trigger: {dump.get('trigger')}, "
                f"trace: {dump.get('trace_id')})"
            )
        for diagnostic in self.diagnostics:
            lines.append(f"  ! {diagnostic}")
        lines.append("  per-function results:")
        header = (
            f"    {'unit':<16} {'function':<16} {'wave':>4} {'seg':>4} {'ip':>5} "
            f"{'runs':>6} {'bound':>7} {'measured':>9} {'safe':>5} {'cache':>6}"
        )
        lines.append(header)
        for summary in self.functions:
            measured = (
                str(summary.measured_wcet_cycles)
                if summary.measured_wcet_cycles is not None
                else "---"
            )
            state = ""
            if summary.quarantined:
                state = "  [quarantined]"
            elif summary.degraded:
                state = "  [degraded]"
            lines.append(
                f"    {summary.unit:<16} {summary.function:<16} "
                f"{summary.wave:>4} "
                f"{summary.segments:>4} {summary.instrumentation_points:>5} "
                f"{summary.measurement_runs:>6} {summary.wcet_bound_cycles:>7} "
                f"{measured:>9} {str(summary.safe):>5} "
                f"{'hit' if summary.from_cache else 'miss':>6}"
                f"{state}"
            )
        for failure in self.failures:
            lines.append(
                f"    {failure.unit:<16} {failure.function:<16} FAILED: {failure.error}"
            )
        return "\n".join(lines)
