"""Project model: source units and the analyzable functions they contribute.

A :class:`Project` is the batch-analysis view of one or many mini-C
translation units.  Each unit is parsed and semantically analysed once
(:class:`SourceUnit`), and every defined function becomes one analyzable
:class:`ProjectFunction` with a *content fingerprint*: a SHA-256 hash over
the unit's file-scope environment (pragmas, externals, globals) and the
pretty-printed function body.  The call-graph layer closes these content
fingerprints over resolved callees into *transitive fingerprints*
(:meth:`repro.callgraph.graph.CallGraph.transitive_fingerprints`), which --
combined with the fingerprint of the
:class:`~repro.pipeline.analyzer.AnalyzerConfig` -- key the persistent
result cache (:mod:`repro.project.cache`): editing one function invalidates
its own cached result and those of its transitive callers, while siblings
in the same file and unrelated functions stay warm.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from ..minic import AnalyzedProgram, parse_and_analyze
from ..minic.pretty import PrettyPrinter
from ..pipeline.analyzer import AnalyzerConfig


class ProjectError(Exception):
    """Raised when a project cannot be assembled or analysed."""


# ---------------------------------------------------------------------- #
# content fingerprints
# ---------------------------------------------------------------------- #
def function_fingerprint(analyzed: AnalyzedProgram, function_name: str) -> str:
    """Content hash of one function and its file-scope environment.

    The hash is computed over the *pretty-printed* AST, not the raw text, so
    whitespace/comment-only edits do not invalidate cached results while any
    semantic edit (including ``#pragma range`` / ``#pragma loopbound``
    changes, which the printer renders) does.
    """
    printer = PrettyPrinter()
    program = analyzed.program
    parts: list[str] = []
    for name in program.input_variables:
        parts.append(f"#pragma input {name}")
    for name, rng in sorted(program.range_annotations.items()):
        parts.append(f"#pragma range {name} {rng.lo} {rng.hi}")
    for name in program.external_functions:
        parts.append(f"extern {name}")
    for decl in program.globals:
        parts.append(printer.print_global(decl))
    parts.append(printer.print_function(program.function(function_name)))
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


def _jsonable(value: object) -> object:
    """Recursively convert configuration values to JSON-stable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def config_fingerprint(config: AnalyzerConfig) -> str:
    """Stable hash of every field of an :class:`AnalyzerConfig`."""
    payload = json.dumps(_jsonable(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# source units
# ---------------------------------------------------------------------- #
@dataclass
class SourceUnit:
    """One parsed and analysed mini-C translation unit."""

    name: str
    source: str
    analyzed: AnalyzedProgram

    @classmethod
    def from_source(cls, name: str, source: str) -> "SourceUnit":
        try:
            analyzed = parse_and_analyze(source, filename=name)
        except Exception as error:
            raise ProjectError(f"cannot analyse unit {name!r}: {error}") from error
        return cls(name=name, source=source, analyzed=analyzed)

    @classmethod
    def from_path(cls, path: str | Path) -> "SourceUnit":
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ProjectError(f"cannot read {path}: {error}") from error
        return cls.from_source(path.name, source)

    def function_names(self) -> list[str]:
        """Names of the functions defined (with a body) in this unit."""
        return [function.name for function in self.analyzed.program.functions]


@dataclass(frozen=True)
class ProjectFunction:
    """One analyzable function of a project."""

    unit: str
    name: str
    #: content hash of (file-scope environment, function body)
    fingerprint: str

    @property
    def qualified_name(self) -> str:
        return f"{self.unit}:{self.name}"


class Project:
    """A set of source units and the functions the batch driver analyses."""

    def __init__(self, units: Iterable[SourceUnit]):
        self._units: dict[str, SourceUnit] = {}
        for unit in units:
            if unit.name in self._units:
                raise ProjectError(f"duplicate unit name {unit.name!r}")
            self._units[unit.name] = unit
        if not self._units:
            raise ProjectError("project has no source units")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_paths(cls, paths: Iterable[str | Path]) -> "Project":
        """Load units from files; colliding basenames fall back to the path.

        Unit names default to the file's basename (readable reports); when
        two files share one (``src/a.c lib/a.c``), the later unit uses the
        path as given so real multi-directory projects stay loadable.
        """
        units: list[SourceUnit] = []
        taken: set[str] = set()
        for path in paths:
            unit = SourceUnit.from_path(path)
            if unit.name in taken:
                unit = SourceUnit(
                    name=str(path), source=unit.source, analyzed=unit.analyzed
                )
            taken.add(unit.name)
            units.append(unit)
        return cls(units)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        return cls(
            SourceUnit.from_source(name, source) for name, source in sources.items()
        )

    # ------------------------------------------------------------------ #
    @property
    def units(self) -> list[SourceUnit]:
        return [self._units[name] for name in sorted(self._units)]

    def unit(self, name: str) -> SourceUnit:
        try:
            return self._units[name]
        except KeyError as exc:
            raise ProjectError(f"no unit named {name!r}") from exc

    def functions(
        self, only: Iterable[str] | None = None
    ) -> list[ProjectFunction]:
        """Every analyzable function, sorted by (unit, function name).

        ``only`` optionally restricts the selection to the given function
        names (matched across all units); unknown names raise
        :class:`ProjectError` so typos do not silently analyse nothing.
        """
        wanted = set(only) if only is not None else None
        selected: list[ProjectFunction] = []
        for unit in self.units:
            for name in unit.function_names():
                if wanted is not None and name not in wanted:
                    continue
                selected.append(
                    ProjectFunction(
                        unit=unit.name,
                        name=name,
                        fingerprint=function_fingerprint(unit.analyzed, name),
                    )
                )
        if wanted is not None:
            found = {function.name for function in selected}
            missing = wanted - found
            if missing:
                raise ProjectError(
                    f"no function named {', '.join(sorted(missing))} in the project"
                )
        if not selected:
            raise ProjectError("project defines no analyzable functions")
        return selected
