"""Project-level WCET orchestration: batch analysis with caching + parallelism.

:class:`~repro.pipeline.analyzer.WcetAnalyzer` analyses one function; this
package is the program-level driver on top of it, turning the reproduction
into a batch service that chews through whole mini-C codebases the way an
industrial WCET tool must:

* :mod:`repro.project.model` -- :class:`Project` loads one or many source
  units (files or in-memory sources) and enumerates every analyzable
  function, each with a content fingerprint over its file-scope environment
  and pretty-printed body.
* :mod:`repro.project.scheduler` -- :class:`ProjectScheduler` runs the
  functions as a job graph in topological *dependency waves* over the
  project call graph (:mod:`repro.callgraph`): callees are analysed before
  their callers and each completed callee's WCET bound is charged at the
  caller's call sites (callee summary reuse).  Waves run serially or on a
  process pool (``workers=N``); results are bit-identical either way
  because every pipeline phase is seeded by the :class:`AnalyzerConfig`
  and callee bounds are fixed before a wave starts.  Pool failures fall
  back to serial execution (with the reason recorded in the report)
  instead of failing the batch.
* :mod:`repro.project.cache` -- :class:`ResultCache` persists per-function
  summaries on disk, keyed by SHA-256 of (transitive function content,
  analyzer config): editing a leaf callee invalidates exactly the leaf
  plus its transitive callers, and re-runs skip everything unchanged.
* :mod:`repro.project.report` -- :class:`ProjectReport` aggregates the
  per-function summaries with cache hit/miss and scheduling statistics, as
  text or JSON.

Workflow
--------

CLI (see ``repro-wcet project --help``)::

    repro-wcet project src1.c src2.c --jobs 4 --cache-dir .repro-wcet-cache
    repro-wcet project --demo --jobs 2          # synthetic multi-function demo
    repro-wcet project src.c --json report.json # machine-readable export

The cache directory defaults to ``.repro-wcet-cache`` next to the current
working directory (one JSON file per (function, config) result, sharded by
key prefix); ``--no-cache`` disables it, a second identical invocation
reports one hit per unchanged function.  ``--jobs N`` sets the process-pool
width (1 = serial).

API::

    from repro.project import Project, ResultCache, analyze_project

    project = Project.from_paths(["a.c", "b.c"])
    report = analyze_project(project, workers=4,
                             cache=ResultCache(".repro-wcet-cache"))
    print(report.to_text())

The scheduler and cache record into the :mod:`repro.perf` registry
(``project.jobs*``, ``project.cache.*``, timers ``project.schedule`` /
``project.analyze_function``), so batch runs show up in perf reports like
the dataflow hot paths do.
"""

from __future__ import annotations

from .cache import CACHE_SCHEMA, ResultCache
from .model import (
    Project,
    ProjectError,
    ProjectFunction,
    SourceUnit,
    config_fingerprint,
    function_fingerprint,
)
from .report import (
    PROJECT_REPORT_SCHEMA,
    FunctionSummary,
    ProjectFailure,
    ProjectReport,
)
from .scheduler import AnalysisJob, JobState, ProjectScheduler, analyze_project

__all__ = [
    "AnalysisJob",
    "CACHE_SCHEMA",
    "FunctionSummary",
    "JobState",
    "PROJECT_REPORT_SCHEMA",
    "Project",
    "ProjectError",
    "ProjectFailure",
    "ProjectFunction",
    "ProjectReport",
    "ProjectScheduler",
    "ResultCache",
    "SourceUnit",
    "analyze_project",
    "config_fingerprint",
    "function_fingerprint",
]
