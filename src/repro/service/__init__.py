"""repro.service -- WCET analysis as a long-running service.

A stdlib-only (``http.server`` + ``threading``) daemon that keeps one
:class:`~repro.project.cache.ResultCache` warm across many submissions:

- :class:`AnalysisServer` -- the HTTP/JSON front-end (``serve`` CLI),
- :class:`JobQueue` -- fingerprint-deduplicated job management driving
  :class:`~repro.project.scheduler.ProjectScheduler` on a worker thread,
- :class:`ServiceClient` -- the urllib-based client (``submit`` CLI).

Repeat submissions of an edited project under a named *session* re-analyse
only the invalidation frontier computed from transitive fingerprints; every
served report is bit-identical to a cold full run of the same sources.
"""

from .client import ServiceClient, ServiceClientError
from .jobs import (
    JobQueue,
    ServiceJob,
    ServiceJobState,
    project_fingerprint,
    report_json,
)
from .server import (
    API_PREFIX,
    CLIENT_CONFIG_FIELDS,
    RETRY_AFTER_SECONDS,
    AnalysisServer,
    ServiceError,
)

__all__ = [
    "API_PREFIX",
    "AnalysisServer",
    "CLIENT_CONFIG_FIELDS",
    "JobQueue",
    "RETRY_AFTER_SECONDS",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceJob",
    "ServiceJobState",
    "project_fingerprint",
    "report_json",
]
