"""The WCET analysis daemon: a stdlib-only HTTP/JSON front-end.

:class:`AnalysisServer` wraps a :class:`~repro.service.jobs.JobQueue` (and
through it the :class:`~repro.project.scheduler.ProjectScheduler` plus the
shared warm :class:`~repro.project.cache.ResultCache`) behind a small,
versioned JSON API served by :class:`http.server.ThreadingHTTPServer`:

``POST /v1/analyze``
    Submit ``{"units": {name: source, ...}}`` with optional ``config``
    overrides (``path_bound``, ``partitioner``, ``no_exhaustive``), an
    optional incremental ``session`` name and an optional ``wait`` (seconds
    to block for completion).  Identical concurrent submissions collapse to
    one scheduler job; the response carries the job id, the content-
    addressed project fingerprint and -- for sessions -- the invalidation
    frontier.
``GET /v1/jobs/<id>``
    Job status and per-function progress; ``?wait=S`` long-polls.
``GET /v1/results/<fingerprint>``
    The completed :class:`~repro.project.report.ProjectReport` JSON.  The
    store is content-addressed, so the fingerprint doubles as a *strong*
    ``ETag``; ``If-None-Match`` re-fetches of an unchanged result cost a
    304 and no body.
``GET /v1/healthz`` / ``GET /v1/stats``
    Liveness, queue/session/cache statistics, per-endpoint request
    counters, per-request latency aggregates and resilience diagnostics.
``GET /v1/metrics``
    Prometheus text exposition (0.0.4) of the server's aggregate perf
    registry -- counters as ``_total``, timers as ``_seconds`` histograms
    backed by the registry's bounded latency buckets -- plus labelled
    per-endpoint/per-status request counts.

Every request runs under a span (``service.request``) in a bounded ring
tracer; 5xx responses freeze that ring into a ``diagnostics/`` flight dump
(when the shared cache is persistent) and echo the request's ``trace_id``
and dump path in the error body.

Failure semantics follow the resilience layer's transient-vs-permanent
classification: transient trouble (including injected ``service.request``
faults) answers **503 + Retry-After** -- well-formed JSON, never a hung
connection -- while permanently-bad submissions (unparsable units, unknown
config fields) answer **422**/**400**.  Injected request faults fire
*before* any job is enqueued, so a chaos-tested daemon can never let a
degraded run reach the shared cache (the scheduler independently enforces
the same rule for analysis-level faults).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .. import obs, perf
from ..pipeline.analyzer import AnalyzerConfig
from ..project import ProjectError, ResultCache
from ..resilience import (
    Deadline,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    classify_error,
)
from .jobs import JobQueue, ServiceJob, ServiceJobState, report_json

#: API version prefix of every route
API_PREFIX = "/v1"

#: seconds clients are asked to back off after a retryable failure
RETRY_AFTER_SECONDS = 1

#: config overrides a client may send with a submission; everything else is
#: server policy (cost model, budgets, hybrid options) and fixed at startup
CLIENT_CONFIG_FIELDS = ("path_bound", "partitioner", "no_exhaustive")


class ServiceError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str, retryable: bool = False):
        super().__init__(message)
        self.status = status
        self.retryable = retryable


class AnalysisServer:
    """Long-running analysis daemon over one shared warm result cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: AnalyzerConfig | None = None,
        cache: ResultCache | None = None,
        workers: int = 1,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout_seconds: float | None = None,
        pool_restart_budget: int = 2,
        request_timeout_seconds: float = 30.0,
        verbose: bool = False,
    ):
        self.queue = JobQueue(
            cache=cache,
            config=config,
            workers=workers,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            job_timeout_seconds=job_timeout_seconds,
            pool_restart_budget=pool_restart_budget,
        )
        self._fault_plan = fault_plan or FaultPlan()
        request_plan = self._fault_plan.for_sites("service.request")
        #: injector of the HTTP-layer ``service.request`` site; its hit
        #: counter advances once per dispatched request, in arrival order
        self._injector = (
            FaultInjector(request_plan) if not request_plan.is_empty else None
        )
        self._request_timeout = request_timeout_seconds
        # monotonic: uptime must never jump when the wall clock is stepped
        self._started_at = time.monotonic()
        #: flight recorder for 5xx responses; persistent-cache servers dump
        #: into the cache's diagnostics/ directory, cacheless ones skip it
        self.flight: obs.FlightRecorder | None = None
        if self.queue.cache.root is not None:
            self.flight = obs.FlightRecorder(
                self.queue.cache.root / obs.DIAGNOSTICS_DIR
            )
        #: server-level aggregate registry (per-request registries are
        #: isolated; their latency/endpoint counts are folded in here)
        self.registry = perf.PerfRegistry()
        self._stats_lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._responses: dict[int, int] = {}
        self._injected_requests = 0
        handler = _make_handler(self)
        handler.verbose = verbose
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def request_timeout_seconds(self) -> float:
        return self._request_timeout

    def start(self) -> None:
        """Start the worker thread and serve requests in the background."""
        self.queue.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Start the worker thread and serve requests on this thread (CLI)."""
        self.queue.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.queue.stop()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        self.queue.stop()

    def __enter__(self) -> "AnalysisServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def count_request(self, endpoint: str) -> None:
        with self._stats_lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def count_response(self, status: int, seconds: float) -> None:
        with self._stats_lock:
            self._responses[status] = self._responses.get(status, 0) + 1
        self.registry.add("service.requests")
        self.registry.record_time("service.request", seconds)

    def note_injected_request(self) -> None:
        with self._stats_lock:
            self._injected_requests += 1

    def check_request_fault(self, key: str) -> None:
        """Fire the ``service.request`` chaos site for one request."""
        if self._injector is not None:
            self._injector.check("service.request", key)

    # ------------------------------------------------------------------ #
    def client_config(self, overrides: dict[str, Any] | None) -> AnalyzerConfig:
        """The server's default config with the client's overrides applied."""
        config = self.queue.default_config
        if not overrides:
            return config
        unknown = set(overrides) - set(CLIENT_CONFIG_FIELDS)
        if unknown:
            raise ServiceError(
                400,
                f"unknown config field(s): {', '.join(sorted(unknown))} "
                f"(clients may set: {', '.join(CLIENT_CONFIG_FIELDS)})",
            )
        changes: dict[str, Any] = {}
        if "path_bound" in overrides:
            bound = overrides["path_bound"]
            if not isinstance(bound, int) or bound < 1:
                raise ServiceError(400, "config.path_bound must be an int >= 1")
            changes["path_bound"] = bound
        if "partitioner" in overrides:
            partitioner = overrides["partitioner"]
            if partitioner not in ("paper", "general"):
                raise ServiceError(
                    400, "config.partitioner must be 'paper' or 'general'"
                )
            changes["partitioner"] = partitioner
        if overrides.get("no_exhaustive"):
            changes["exhaustive_limit"] = None
        return replace(config, **changes) if changes else config

    # ------------------------------------------------------------------ #
    def healthz_payload(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
            "queue_depth": self.queue.depth,
            "cache_enabled": self.queue.cache.enabled,
        }

    def stats_payload(self) -> dict[str, Any]:
        cache = self.queue.cache
        with self._stats_lock:
            requests = dict(sorted(self._requests.items()))
            responses = {
                str(status): count
                for status, count in sorted(self._responses.items())
            }
            injected = self._injected_requests
        return {
            "server": {
                "uptime_seconds": time.monotonic() - self._started_at,
                "request_timeout_seconds": self._request_timeout,
            },
            "requests": {
                "by_endpoint": requests,
                "by_status": responses,
            },
            "jobs": self.queue.stats(),
            "cache": cache.stats(),
            "resilience": {
                "fault_plan": self._fault_plan.describe(),
                "injected_requests": injected,
                "cache_diagnostics": list(cache.diagnostics),
            },
            "perf": self.registry.report(),
        }

    def metrics_text(self) -> str:
        """The Prometheus text exposition served by ``GET /v1/metrics``.

        The aggregate registry's counters and (histogram-backed) timers plus
        the labelled per-endpoint/per-status request counts.
        """
        with self._stats_lock:
            requests = dict(self._requests)
            responses = dict(self._responses)
            injected = self._injected_requests
        extra: list[tuple[str, dict[str, str] | None, int]] = [
            ("service.requests.by_endpoint", {"endpoint": name}, count)
            for name, count in sorted(requests.items())
        ]
        extra.extend(
            ("service.responses.by_status", {"status": str(status)}, count)
            for status, count in sorted(responses.items())
        )
        extra.append(("service.requests.injected", None, injected))
        return obs.prometheus_text(
            self.registry.report(), extra_counters=extra
        )

    def record_failure(
        self,
        status: int,
        trace_id: str | None,
        tracer: obs.Tracer | None,
        detail: str,
    ) -> dict[str, Any] | None:
        """Dump the request's trace ring on a 5xx; returns the dump record."""
        if self.flight is None:
            return None
        record = self.flight.dump(
            f"http-{status}",
            tracer=tracer,
            trace_id=trace_id,
            detail=detail,
        )
        if record is not None:
            self.registry.add("obs.flight.dumps")
        return record


# ---------------------------------------------------------------------- #
# request handling
# ---------------------------------------------------------------------- #
def _make_handler(server: AnalysisServer) -> type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to *server*.

    The binding goes through a closure rather than the
    ``ThreadingHTTPServer`` instance so an :class:`AnalysisServer` can be
    embedded in tests and benchmarks without touching global state.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        #: quiet by default; the CLI flips this on with --verbose
        verbose = False

        # -------------------------------------------------------------- #
        def log_message(self, format: str, *args: Any) -> None:
            if self.verbose:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _send_json(
            self,
            status: int,
            payload: dict[str, Any] | None = None,
            *,
            raw: str | None = None,
            headers: dict[str, str] | None = None,
        ) -> None:
            body = (
                raw if raw is not None else json.dumps(payload, indent=2) + "\n"
            ).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(body)

        def _send_empty(
            self, status: int, headers: dict[str, str] | None = None
        ) -> None:
            self.send_response(status)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.send_header("Content-Length", "0")
            self.end_headers()

        def _send_text(
            self, status: int, text: str, content_type: str
        ) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(body)

        def _send_error_json(
            self, status: int, message: str, retryable: bool = False
        ) -> None:
            headers = (
                {"Retry-After": str(RETRY_AFTER_SECONDS)} if retryable else None
            )
            body: dict[str, Any] = {"error": message, "retryable": retryable}
            trace_id = getattr(self, "_trace_id", None)
            if trace_id is not None:
                body["trace_id"] = trace_id
            if status >= 500:
                # a server-side failure freezes the request's span ring so
                # the 503/500 body names the dump that explains it
                record = server.record_failure(
                    status,
                    trace_id,
                    getattr(self, "_tracer", None),
                    message,
                )
                if record is not None:
                    body["flight_dump"] = record["path"]
            self._send_json(status, body, headers=headers)

        # -------------------------------------------------------------- #
        def _dispatch(self, method: str) -> None:
            started = time.perf_counter()
            split = urlsplit(self.path)
            path = split.path.rstrip("/") or "/"
            query = parse_qs(split.query)
            if path.startswith(API_PREFIX + "/"):
                endpoint = path[len(API_PREFIX) + 1:].split("/")[0]
            else:
                endpoint = path
            server.count_request(f"{method} {endpoint}")
            status = 500
            # every request runs under its own registry: whatever the
            # handling records can never bleed into another request's view
            request_registry = perf.PerfRegistry()
            # ... and under its own bounded span ring, so a failing request
            # has a recent timeline to dump without unbounded growth
            self._tracer = obs.Tracer(max_events=obs.DEFAULT_RING_EVENTS)
            self._trace_id = None
            try:
                with obs.using_tracer(self._tracer), obs.span(
                    "service.request", method=method, endpoint=endpoint
                ) as context, perf.using_registry(request_registry):
                    self._trace_id = context.trace_id
                    # the chaos site fires before any state changes: an
                    # injected request fault is answered 503 and nothing
                    # (job queue, sessions, cache) has been touched
                    server.check_request_fault(f"{method} {path}")
                    status = self._route(method, path, query)
            except InjectedFault as fault:
                server.note_injected_request()
                status = 503
                self._send_error_json(
                    503, f"injected request fault: {fault}", retryable=True
                )
            except ServiceError as error:
                status = error.status
                self._send_error_json(
                    error.status, str(error), retryable=error.retryable
                )
            except ProjectError as error:
                # unparsable/inconsistent sources: permanently bad input
                status = 422
                self._send_error_json(422, str(error), retryable=False)
            except BrokenPipeError:
                status = 499  # client went away; nothing left to answer
            except Exception as error:  # noqa: BLE001 - mapped to HTTP
                kind = classify_error(error)
                if kind == "transient":
                    status = 503
                    self._send_error_json(
                        503,
                        f"transient server error: "
                        f"{type(error).__name__}: {error}",
                        retryable=True,
                    )
                else:
                    status = 500
                    self._send_error_json(
                        500,
                        f"internal error: {type(error).__name__}: {error}",
                        retryable=False,
                    )
            finally:
                server.count_response(status, time.perf_counter() - started)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("POST")

        def do_HEAD(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET")

        # -------------------------------------------------------------- #
        def _route(
            self, method: str, path: str, query: dict[str, list[str]]
        ) -> int:
            if not path.startswith(API_PREFIX + "/"):
                raise ServiceError(404, f"unknown path {path!r} (try /v1/...)")
            route = path[len(API_PREFIX) + 1:]
            if method == "POST" and route == "analyze":
                return self._handle_analyze(query)
            if method == "GET" and route.startswith("jobs/"):
                return self._handle_job(route[len("jobs/"):], query)
            if method == "GET" and route.startswith("results/"):
                return self._handle_result(route[len("results/"):])
            if method == "GET" and route == "healthz":
                self._send_json(200, server.healthz_payload())
                return 200
            if method == "GET" and route == "stats":
                self._send_json(200, server.stats_payload())
                return 200
            if method == "GET" and route == "metrics":
                self._send_text(
                    200, server.metrics_text(), obs.PROMETHEUS_CONTENT_TYPE
                )
                return 200
            raise ServiceError(404, f"no route for {method} {path}")

        # -------------------------------------------------------------- #
        def _read_body(self) -> dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ServiceError(400, "request body required")
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise ServiceError(400, f"request body is not JSON: {error}")
            if not isinstance(payload, dict):
                raise ServiceError(400, "request body must be a JSON object")
            return payload

        def _handle_analyze(self, query: dict[str, list[str]]) -> int:
            payload = self._read_body()
            units = payload.get("units")
            if not isinstance(units, dict) or not units:
                raise ServiceError(
                    400, "payload needs a non-empty 'units' object "
                    "({unit name: mini-C source})"
                )
            if not all(
                isinstance(name, str) and isinstance(source, str)
                for name, source in units.items()
            ):
                raise ServiceError(400, "'units' must map names to sources")
            session = payload.get("session")
            if session is not None and not isinstance(session, str):
                raise ServiceError(400, "'session' must be a string")
            overrides = payload.get("config")
            if overrides is not None and not isinstance(overrides, dict):
                raise ServiceError(400, "'config' must be a JSON object")
            config = server.client_config(overrides)
            job, deduplicated = server.queue.submit(
                units, config=config, session=session
            )
            wait = payload.get("wait")
            if wait:
                self._wait_for(job, float(wait))
            status = 200 if job.state.is_terminal else 202
            body = job.status_payload()
            body["deduplicated"] = deduplicated
            self._send_json(status, body)
            return status

        def _wait_for(self, job: ServiceJob, wait_seconds: float) -> None:
            """Block until *job* finishes, bounded by the request deadline."""
            deadline = Deadline(
                min(max(wait_seconds, 0.0), server.request_timeout_seconds)
            )
            while not job.event.is_set() and not deadline.expired():
                job.event.wait(timeout=0.1)

        def _handle_job(self, job_id: str, query: dict[str, list[str]]) -> int:
            job = server.queue.get(job_id)
            if job is None:
                raise ServiceError(404, f"no job {job_id!r}")
            if "wait" in query:
                try:
                    wait_seconds = float(query["wait"][0] or 0.0)
                except ValueError:
                    raise ServiceError(400, "wait must be a number of seconds")
                self._wait_for(job, wait_seconds)
            self._send_json(200, job.status_payload())
            return 200

        def _handle_result(self, fingerprint: str) -> int:
            job = server.queue.result_for(fingerprint)
            if job is None or job.report is None:
                raise ServiceError(
                    404,
                    f"no completed result for fingerprint {fingerprint[:16]}... "
                    "(submit first, then poll the job)",
                )
            # content-addressed store: the fingerprint IS the strong ETag
            etag = f'"{fingerprint}"'
            candidates = self.headers.get("If-None-Match")
            if candidates:
                tags = {tag.strip() for tag in candidates.split(",")}
                if etag in tags or "*" in tags:
                    perf.add("service.results.not_modified")
                    self._send_empty(304, headers={"ETag": etag})
                    return 304
            self._send_json(
                200, raw=report_json(job.report), headers={"ETag": etag}
            )
            return 200

    return Handler


__all__ = [
    "API_PREFIX",
    "AnalysisServer",
    "CLIENT_CONFIG_FIELDS",
    "RETRY_AFTER_SECONDS",
    "ServiceError",
]
