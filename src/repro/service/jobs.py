"""Job queue of the analysis service: dedup, sessions, worker execution.

The daemon's unit of work is one *submission*: a set of mini-C source units
plus an :class:`~repro.pipeline.analyzer.AnalyzerConfig`.  Every submission
is reduced to a content-addressed **project fingerprint** -- a SHA-256 over
the sorted transitive fingerprints of every analyzable function (the PR 3
cache keys) and the config fingerprint -- before anything is enqueued.  Two
properties follow directly:

* **Work deduplication.**  Concurrent clients submitting identical projects
  map to the *same* :class:`ServiceJob`: the first submission enqueues one
  scheduler run, every later one subscribes to it (``submissions`` counts
  them), and all of them read the identical result.  A completed job keeps
  its slot, so re-submitting an unchanged project is a pure lookup that
  never touches the scheduler.
* **Incremental invalidation.**  A client that names a ``session`` gets the
  edit-distance view: the queue remembers the per-function transitive
  fingerprints of the session's previous submission and reports the
  *invalidation frontier* -- exactly the functions whose transitive
  fingerprint changed (the edited functions plus their transitive callers).
  The scheduler then re-analyses only that frontier, because every
  untouched function's cache key is unchanged and hits the shared warm
  :class:`~repro.project.cache.ResultCache`.

Jobs execute on a dedicated worker thread (FIFO), each under its **own**
:class:`~repro.perf.PerfRegistry` activation (:func:`repro.perf.using_registry`),
so the perf counters of concurrent requests never bleed into each other;
the per-job report is served back through the job-status endpoint.
"""

from __future__ import annotations

import collections
import enum
import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from .. import obs, perf
from ..pipeline.analyzer import AnalyzerConfig
from ..project import (
    AnalysisJob,
    Project,
    ProjectError,
    ProjectReport,
    ProjectScheduler,
    ResultCache,
    config_fingerprint,
)
from ..resilience import FaultPlan, RetryPolicy


class ServiceJobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (ServiceJobState.DONE, ServiceJobState.FAILED)


def project_fingerprint(
    fingerprints: dict[str, str], config: AnalyzerConfig
) -> str:
    """Content address of one submission.

    Hashes the sorted ``qualified name -> transitive fingerprint`` mapping
    together with the config fingerprint -- the same two components that
    key every per-function entry of the :class:`ResultCache`, lifted to
    project granularity.  Identical projects (up to whitespace/comments,
    which the content fingerprints already ignore) under identical configs
    collide by construction; any semantic edit changes the address.
    """
    parts = [f"config:{config_fingerprint(config)}"]
    parts.extend(
        f"{qualified}:{fingerprint}"
        for qualified, fingerprint in sorted(fingerprints.items())
    )
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


@dataclass
class ServiceJob:
    """One deduplicated analysis job of the daemon."""

    job_id: str
    fingerprint: str
    project: Project
    config: AnalyzerConfig
    #: qualified function name -> transitive fingerprint of this submission
    function_fingerprints: dict[str, str]
    session: str | None = None
    state: ServiceJobState = ServiceJobState.QUEUED
    #: POST submissions that mapped to this job (>= 2 means deduplication)
    submissions: int = 1
    #: monotonic timestamps (elapsed arithmetic only -- a stepped wall
    #: clock must never produce a negative or inflated job duration)
    created_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: serialised span context of the submitting HTTP request; the worker
    #: re-attaches under it so the whole analysis shares one trace_id
    trace_context: dict[str, str] | None = None
    #: functions completed so far: qualified name -> terminal job state
    progress: dict[str, str] = field(default_factory=dict)
    #: functions whose transitive fingerprint changed vs the session's
    #: previous submission (None outside sessions / on first submission)
    frontier: list[str] | None = None
    #: session functions untouched by the edit (the expected cache hits)
    reused: list[str] | None = None
    report: ProjectReport | None = None
    error: str | None = None
    #: "transient" or "permanent" (drives the HTTP status of failures)
    error_kind: str | None = None
    #: per-job perf snapshot (the job's own isolated registry)
    perf_report: dict[str, Any] | None = None
    #: set once the job reaches a terminal state
    event: threading.Event = field(default_factory=threading.Event)

    @property
    def total_functions(self) -> int:
        return len(self.function_fingerprints)

    @property
    def elapsed_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return (self.finished_at or time.monotonic()) - self.started_at

    def status_payload(self) -> dict[str, Any]:
        """The JSON body of ``GET /v1/jobs/<id>``."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state.value,
            "fingerprint": self.fingerprint,
            "session": self.session,
            "submissions": self.submissions,
            "progress": {
                "total": self.total_functions,
                "completed": len(self.progress),
                "functions": dict(sorted(self.progress.items())),
            },
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.frontier is not None:
            payload["incremental"] = {
                "session": self.session,
                "frontier": list(self.frontier),
                "reused": list(self.reused or []),
            }
        if self.error is not None:
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind
        if self.state is ServiceJobState.DONE:
            payload["result"] = f"/v1/results/{self.fingerprint}"
            if self.report is not None:
                payload["cache"] = {
                    "hits": self.report.cache_hits,
                    "misses": self.report.cache_misses,
                }
        if self.perf_report is not None:
            payload["perf"] = self.perf_report
        return payload


class JobQueue:
    """FIFO queue of deduplicated analysis jobs behind one worker thread."""

    def __init__(
        self,
        cache: ResultCache | None = None,
        config: AnalyzerConfig | None = None,
        workers: int = 1,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout_seconds: float | None = None,
        pool_restart_budget: int = 2,
    ):
        self._cache = cache or ResultCache.disabled()
        self._default_config = config or AnalyzerConfig()
        self._workers = max(1, int(workers))
        #: scheduler-facing fault sites only; ``service.request`` belongs
        #: to the HTTP layer and must never reach the analysis pipeline
        self._fault_plan = (
            fault_plan.for_sites(
                "cache.read", "cache.write", "pool.submit",
                "job.execute", "mc.solve", "interp.step",
            )
            if fault_plan is not None
            else FaultPlan()
        )
        self._retry_policy = retry_policy
        self._job_timeout = job_timeout_seconds
        self._pool_restart_budget = pool_restart_budget
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: collections.deque[ServiceJob] = collections.deque()
        self._jobs: dict[str, ServiceJob] = {}
        self._by_fingerprint: dict[str, ServiceJob] = {}
        #: session name -> per-function transitive fingerprints of the
        #: session's most recent *completed* submission
        self._sessions: dict[str, dict[str, str]] = {}
        self._next_id = 0
        self._thread: threading.Thread | None = None
        self._running = False
        #: counters surfaced by ``/v1/stats``
        self.submitted = 0
        self.deduplicated = 0
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def default_config(self) -> AnalyzerConfig:
        return self._default_config

    def fingerprint_submission(
        self, sources: dict[str, str], config: AnalyzerConfig
    ) -> tuple[str, dict[str, str], Project]:
        """Parse *sources* and content-address the submission.

        Raises :class:`ProjectError` for unparsable units -- a *permanent*
        client error (HTTP 422), since resubmitting identical bad sources
        can never succeed.
        """
        from ..callgraph.graph import CallGraph

        project = Project.from_sources(sources)
        graph = CallGraph.from_project(project)
        fingerprints = graph.transitive_fingerprints()
        return project_fingerprint(fingerprints, config), fingerprints, project

    # ------------------------------------------------------------------ #
    def submit(
        self,
        sources: dict[str, str],
        config: AnalyzerConfig | None = None,
        session: str | None = None,
    ) -> tuple[ServiceJob, bool]:
        """Enqueue one submission; returns ``(job, deduplicated)``.

        An in-flight or completed job with the same project fingerprint is
        returned as-is (one scheduler run serves every identical client);
        only failed jobs are retried with a fresh job on re-submission.
        """
        config = config or self._default_config
        fingerprint, fingerprints, project = self.fingerprint_submission(
            sources, config
        )
        with self._lock:
            self.submitted += 1
            existing = self._by_fingerprint.get(fingerprint)
            if existing is not None and existing.state is not ServiceJobState.FAILED:
                existing.submissions += 1
                self.deduplicated += 1
                perf.add("service.jobs.deduplicated")
                return existing, True
            self._next_id += 1
            job = ServiceJob(
                job_id=f"job-{self._next_id}",
                fingerprint=fingerprint,
                project=project,
                config=config,
                function_fingerprints=fingerprints,
                session=session,
            )
            context = obs.current_context()
            if context is not None:
                job.trace_context = context.to_dict()
            if session is not None:
                previous = self._sessions.get(session)
                if previous is not None:
                    job.frontier = sorted(
                        qualified
                        for qualified, current in fingerprints.items()
                        if previous.get(qualified) != current
                    )
                    job.reused = sorted(
                        set(fingerprints) - set(job.frontier)
                    )
            self._jobs[job.job_id] = job
            self._by_fingerprint[fingerprint] = job
            self._pending.append(job)
            perf.add("service.jobs.submitted")
            self._wake.notify_all()
            return job, False

    def get(self, job_id: str) -> ServiceJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def result_for(self, fingerprint: str) -> ServiceJob | None:
        """The completed job stored under *fingerprint*, if any."""
        with self._lock:
            job = self._by_fingerprint.get(fingerprint)
        if job is not None and job.state is ServiceJobState.DONE:
            return job
        return None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        with self._lock:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._worker_loop, name="repro-service-worker", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        with self._lock:
            self._running = False
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def running_job(self) -> ServiceJob | None:
        with self._lock:
            for job in self._jobs.values():
                if job.state is ServiceJobState.RUNNING:
                    return job
        return None

    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while self._running and not self._pending:
                    self._wake.wait(timeout=0.5)
                if not self._running:
                    return
                job = self._pending.popleft()
            self._execute(job)

    def _execute(self, job: ServiceJob) -> None:
        job.state = ServiceJobState.RUNNING
        job.started_at = time.monotonic()
        registry = perf.PerfRegistry()
        # the worker's own bounded ring, parented on the submitting HTTP
        # request's span -- request, queueing and scheduler run share one
        # trace_id, and a failing job has a timeline to dump
        tracer = obs.Tracer(max_events=obs.DEFAULT_RING_EVENTS)
        parent = obs.SpanContext.from_dict(job.trace_context)

        def on_progress(analysis_job: AnalysisJob) -> None:
            job.progress[analysis_job.qualified_name] = (
                analysis_job.state.value
            )

        try:
            with perf.using_registry(registry), \
                    obs.using_tracer(tracer, parent), \
                    obs.span("service.job", job_id=job.job_id):
                with perf.timed("service.job.execute"):
                    # query_cache is left at its default: service sessions
                    # share the warm result cache, so the persistent query
                    # store (mc verdicts + witnesses) is shared across
                    # sessions exactly like function summaries are
                    report = ProjectScheduler(
                        job.project,
                        config=job.config,
                        cache=self._cache,
                        workers=self._workers,
                        fault_plan=self._fault_plan,
                        retry_policy=self._retry_policy,
                        job_timeout_seconds=self._job_timeout,
                        pool_restart_budget=self._pool_restart_budget,
                        progress_callback=on_progress,
                    ).run()
        except Exception as error:
            from ..resilience import classify_error

            job.error = f"{type(error).__name__}: {error}"
            job.error_kind = (
                "permanent"
                if isinstance(error, ProjectError)
                else classify_error(error)
            )
            job.state = ServiceJobState.FAILED
            job.finished_at = time.monotonic()
            job.perf_report = registry.report()
            with self._lock:
                self.failed += 1
            perf.add("service.jobs.failed")
            job.event.set()
            return
        job.report = report
        job.perf_report = registry.report()
        job.state = ServiceJobState.DONE
        job.finished_at = time.monotonic()
        with self._lock:
            self.completed += 1
            if job.session is not None:
                self._sessions[job.session] = dict(job.function_fingerprints)
        perf.add("service.jobs.completed")
        job.event.set()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        with self._lock:
            states = collections.Counter(
                job.state.value for job in self._jobs.values()
            )
            return {
                "submitted": self.submitted,
                "deduplicated": self.deduplicated,
                "completed": self.completed,
                "failed": self.failed,
                "queued": len(self._pending),
                "states": dict(sorted(states.items())),
                "sessions": len(self._sessions),
                "scheduler_workers": self._workers,
            }


def report_json(report: ProjectReport) -> str:
    """The canonical JSON serialisation of a project report.

    Exactly what :meth:`ProjectReport.write_json` puts on disk, so a
    service-served result and a direct CLI ``--json`` export of the same
    analysis are byte-comparable.
    """
    return json.dumps(report.to_dict(), indent=2) + "\n"


__all__ = [
    "JobQueue",
    "ServiceJob",
    "ServiceJobState",
    "project_fingerprint",
    "report_json",
]
