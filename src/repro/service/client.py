"""A tiny stdlib client for the analysis service (used by ``submit``).

Wraps :mod:`urllib.request` with the service's failure semantics: JSON
bodies in and out, ``ETag``/``If-None-Match`` conditional result fetches,
and automatic retry (with ``Retry-After``-guided backoff) of 503 responses
-- the server's transient/injected-fault channel.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any


class ServiceClientError(Exception):
    """A request the service rejected (or that never reached it)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One analysis server endpoint plus retry policy."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        max_retries: int = 3,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        #: how many 503s the client absorbed across its lifetime
        self.retried = 0

    # ------------------------------------------------------------------ #
    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange; 503 responses are retried with backoff."""
        data = None
        merged = dict(headers or {})
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            merged["Content-Type"] = "application/json"
        last_error: str = "unreachable"
        for attempt in range(self.max_retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=merged, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return (
                        response.status,
                        dict(response.headers.items()),
                        response.read(),
                    )
            except urllib.error.HTTPError as error:
                payload = error.read()
                if error.code == 503 and attempt < self.max_retries:
                    self.retried += 1
                    retry_after = error.headers.get("Retry-After")
                    try:
                        delay = min(float(retry_after or 0.1), 2.0)
                    except ValueError:
                        delay = 0.1
                    time.sleep(delay)
                    last_error = f"503 after {attempt + 1} attempt(s)"
                    continue
                if error.code == 304:
                    return 304, dict(error.headers.items()), b""
                message = _error_message(payload) or error.reason
                raise ServiceClientError(
                    f"{method} {path}: {message}", status=error.code
                ) from None
            except urllib.error.URLError as error:
                raise ServiceClientError(
                    f"{method} {path}: {error.reason}"
                ) from None
        raise ServiceClientError(
            f"{method} {path}: gave up after {self.max_retries + 1} "
            f"attempts ({last_error})",
            status=503,
        )

    def _json(self, *args, **kwargs) -> dict[str, Any]:
        _, _, payload = self._request(*args, **kwargs)
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, Any]:
        return self._json("GET", "/v1/healthz")

    def stats(self) -> dict[str, Any]:
        return self._json("GET", "/v1/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /v1/metrics``."""
        _, _, payload = self._request("GET", "/v1/metrics")
        return payload.decode("utf-8")

    def analyze(
        self,
        units: dict[str, str],
        *,
        config: dict[str, Any] | None = None,
        session: str | None = None,
        wait: float | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"units": units}
        if config:
            body["config"] = config
        if session is not None:
            body["session"] = session
        if wait is not None:
            body["wait"] = wait
        return self._json("POST", "/v1/analyze", body=body)

    def job(self, job_id: str, wait: float | None = None) -> dict[str, Any]:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._json("GET", path)

    def wait_for(
        self, job_id: str, timeout: float = 120.0, poll: float = 2.0
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state (or *timeout*)."""
        expires = time.monotonic() + timeout
        while True:
            status = self.job(job_id, wait=poll)
            if status.get("state") in ("done", "failed"):
                return status
            if time.monotonic() >= expires:
                raise ServiceClientError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout:.0f}s"
                )

    def result(
        self, fingerprint: str, etag: str | None = None
    ) -> tuple[int, str | None, str]:
        """Fetch a result; returns ``(status, etag, body_text)``.

        Pass the previously seen *etag* back in to get a body-less 304 when
        the content-addressed result is unchanged.
        """
        headers = {"If-None-Match": etag} if etag else None
        status, response_headers, payload = self._request(
            "GET", f"/v1/results/{fingerprint}", headers=headers
        )
        return status, response_headers.get("ETag"), payload.decode("utf-8")


def _error_message(payload: bytes) -> str | None:
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if isinstance(body, dict) and isinstance(body.get("error"), str):
        return body["error"]
    return None


__all__ = ["ServiceClient", "ServiceClientError"]
