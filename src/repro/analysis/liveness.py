"""Live-variable analysis.

The classical backward may-analysis: a variable is *live* at a program point
when its current value may still be read on some path from that point.  The
paper's "Live-Variable Analysis" optimisation (Section 3.2.2) uses it to let
variables with non-overlapping live ranges share one memory location in the
model -- fewer state variables, smaller state space -- and to remove variables
that are never used at all.

Two granularities are provided:

* :func:`block_liveness` -- live-in / live-out sets per basic block,
* :func:`statement_liveness` -- live-after sets per statement inside a block
  (needed by the interference-graph construction of the optimisation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import BasicBlock, ControlFlowGraph
from .dataflow import DataflowProblem, Direction, set_union, solve
from .usedef import block_use_def, statement_use_def


@dataclass
class LivenessResult:
    """Per-block live variable sets."""

    live_in: dict[int, frozenset[str]]
    live_out: dict[int, frozenset[str]]

    def live_anywhere(self) -> frozenset[str]:
        """Variables live at some point in the function."""
        everything: frozenset[str] = frozenset()
        for fact in self.live_in.values():
            everything |= fact
        for fact in self.live_out.values():
            everything |= fact
        return everything


def block_liveness(cfg: ControlFlowGraph) -> LivenessResult:
    """Compute live-in/live-out sets for every block of *cfg*."""
    use_defs = {block.block_id: block_use_def(block) for block in cfg.blocks()}

    def successors(block_id: int) -> list[int]:
        return [edge.target for edge in cfg.out_edges(block_id)]

    def transfer(block_id: int, live_out: frozenset[str]) -> frozenset[str]:
        use_def = use_defs[block_id]
        return use_def.uses | (live_out - use_def.defs)

    problem = DataflowProblem(
        nodes=[block.block_id for block in cfg.blocks()],
        successors=successors,
        direction=Direction.BACKWARD,
        boundary_nodes=[cfg.exit.block_id],
        boundary=frozenset(),
        initial=frozenset(),
        join=set_union,
        transfer=transfer,
    )
    result = solve(problem)
    # for a backward problem: in_facts = fact flowing into the node in flow
    # order = live-out; out_facts = transfer result = live-in
    live_out = {node: result.in_facts[node] for node in result.in_facts}
    live_in = {node: result.out_facts[node] for node in result.out_facts}
    return LivenessResult(live_in=live_in, live_out=live_out)


def statement_liveness(
    cfg: ControlFlowGraph, block: BasicBlock, live_out: frozenset[str]
) -> list[frozenset[str]]:
    """Live-after set of every statement of *block*.

    ``live_out`` is the block-level live-out set (from
    :func:`block_liveness`).  The returned list is parallel to
    ``block.statements``: element *i* is the set of variables live immediately
    after statement *i* executed.  The block's terminator condition counts as
    executing after the last statement.
    """
    from .usedef import block_condition_uses

    del cfg
    after = set(live_out)
    after |= block_condition_uses(block)
    live_after: list[frozenset[str]] = [frozenset()] * len(block.statements)
    for index in range(len(block.statements) - 1, -1, -1):
        live_after[index] = frozenset(after)
        use_def = statement_use_def(block.statements[index])
        after -= use_def.defs
        after |= use_def.uses
    return live_after


def unused_variables(cfg: ControlFlowGraph, candidates: set[str]) -> set[str]:
    """Variables from *candidates* that are never read anywhere in *cfg*.

    "This optimisation technique is also used to remove unused variables"
    (Section 3.2.2): a variable that is never used can be dropped from the
    model entirely, no matter how often it is written.
    """
    from .usedef import block_condition_uses

    read: set[str] = set()
    for block in cfg.blocks():
        # statement-level uses (block_use_def would hide reads that follow an
        # earlier definition in the same block) plus branch-condition reads
        for stmt in block.statements:
            read |= statement_use_def(stmt).uses
        read |= block_condition_uses(block)
    return {name for name in candidates if name not in read}


def live_range_conflicts(cfg: ControlFlowGraph) -> dict[str, set[str]]:
    """Interference graph over variables: edges between simultaneously live vars.

    Two variables interfere when one is defined at a point where the other is
    live (standard register-allocation interference).  The live-variable
    optimisation merges non-interfering variables of equal type.
    """
    liveness = block_liveness(cfg)
    conflicts: dict[str, set[str]] = {}

    def add_conflict(a: str, b: str) -> None:
        if a == b:
            return
        conflicts.setdefault(a, set()).add(b)
        conflicts.setdefault(b, set()).add(a)

    for block in cfg.blocks():
        live_after = statement_liveness(cfg, block, liveness.live_out[block.block_id])
        for index, stmt in enumerate(block.statements):
            use_def = statement_use_def(stmt)
            for defined in use_def.defs:
                conflicts.setdefault(defined, set())
                for other in live_after[index]:
                    add_conflict(defined, other)
    # make sure every live variable appears as a node
    for name in liveness.live_anywhere():
        conflicts.setdefault(name, set())
    return conflicts
