"""Live-variable analysis.

The classical backward may-analysis: a variable is *live* at a program point
when its current value may still be read on some path from that point.  The
paper's "Live-Variable Analysis" optimisation (Section 3.2.2) uses it to let
variables with non-overlapping live ranges share one memory location in the
model -- fewer state variables, smaller state space -- and to remove variables
that are never used at all.

Two granularities are provided:

* :func:`block_liveness` -- live-in / live-out sets per basic block,
* :func:`statement_liveness` -- live-after sets per statement inside a block
  (needed by the interference-graph construction of the optimisation).

The fixpoint runs on the indexed bitset engine
(:mod:`repro.analysis.bitset`): variable names are interned to bit positions
once per CFG and the transfer is a handful of integer operations.  The
public result type stays frozensets of names; the original frozenset
implementation lives on as
:func:`repro.analysis.reference.block_liveness_reference` and the two are
cross-checked bit-for-bit by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import BasicBlock, ControlFlowGraph
from .bitset import bitset_block_liveness
from .usedef import cfg_use_defs


@dataclass
class LivenessResult:
    """Per-block live variable sets."""

    live_in: dict[int, frozenset[str]]
    live_out: dict[int, frozenset[str]]

    def live_anywhere(self) -> frozenset[str]:
        """Variables live at some point in the function."""
        everything: frozenset[str] = frozenset()
        for fact in self.live_in.values():
            everything |= fact
        for fact in self.live_out.values():
            everything |= fact
        return everything


def block_liveness(cfg: ControlFlowGraph) -> LivenessResult:
    """Compute live-in/live-out sets for every block of *cfg*."""
    solved = bitset_block_liveness(cfg)
    names_of = solved.index.interner.names_of
    live_in = {block_id: names_of(mask) for block_id, mask in solved.live_in.items()}
    live_out = {block_id: names_of(mask) for block_id, mask in solved.live_out.items()}
    return LivenessResult(live_in=live_in, live_out=live_out)


def statement_liveness(
    cfg: ControlFlowGraph, block: BasicBlock, live_out: frozenset[str]
) -> list[frozenset[str]]:
    """Live-after set of every statement of *block*.

    ``live_out`` is the block-level live-out set (from
    :func:`block_liveness`).  The returned list is parallel to
    ``block.statements``: element *i* is the set of variables live immediately
    after statement *i* executed.  The block's terminator condition counts as
    executing after the last statement.
    """
    from ..cfg.graph import CfgError
    from .usedef import block_condition_uses, statement_use_def

    try:
        registered = cfg.block(block.block_id)
    except CfgError:
        registered = None
    if registered is block:
        use_defs = cfg_use_defs(cfg)
        condition_uses = use_defs.condition_uses(block.block_id)
        statement_use_defs = use_defs.statements(block.block_id)
    else:
        # a detached or substituted block: honour exactly what was passed
        condition_uses = block_condition_uses(block)
        statement_use_defs = tuple(statement_use_def(s) for s in block.statements)
    after = set(live_out)
    after |= condition_uses
    live_after: list[frozenset[str]] = [frozenset()] * len(block.statements)
    for index in range(len(block.statements) - 1, -1, -1):
        live_after[index] = frozenset(after)
        use_def = statement_use_defs[index]
        after -= use_def.defs
        after |= use_def.uses
    return live_after


def unused_variables(cfg: ControlFlowGraph, candidates: set[str]) -> set[str]:
    """Variables from *candidates* that are never read anywhere in *cfg*.

    "This optimisation technique is also used to remove unused variables"
    (Section 3.2.2): a variable that is never used can be dropped from the
    model entirely, no matter how often it is written.
    """
    use_defs = cfg_use_defs(cfg)
    read: set[str] = set()
    for block in cfg.blocks():
        # statement-level uses (block_use_def would hide reads that follow an
        # earlier definition in the same block) plus branch-condition reads
        for use_def in use_defs.statements(block.block_id):
            read |= use_def.uses
        read |= use_defs.condition_uses(block.block_id)
    return {name for name in candidates if name not in read}


def live_range_conflicts(cfg: ControlFlowGraph) -> dict[str, set[str]]:
    """Interference graph over variables: edges between simultaneously live vars.

    Two variables interfere when one is defined at a point where the other is
    live (standard register-allocation interference).  The live-variable
    optimisation merges non-interfering variables of equal type.
    """
    liveness = block_liveness(cfg)
    use_defs = cfg_use_defs(cfg)
    conflicts: dict[str, set[str]] = {}

    def add_conflict(a: str, b: str) -> None:
        if a == b:
            return
        conflicts.setdefault(a, set()).add(b)
        conflicts.setdefault(b, set()).add(a)

    for block in cfg.blocks():
        live_after = statement_liveness(cfg, block, liveness.live_out[block.block_id])
        statement_use_defs = use_defs.statements(block.block_id)
        for index in range(len(block.statements)):
            use_def = statement_use_defs[index]
            for defined in use_def.defs:
                conflicts.setdefault(defined, set())
                for other in live_after[index]:
                    add_conflict(defined, other)
    # make sure every live variable appears as a node
    for name in liveness.live_anywhere():
        conflicts.setdefault(name, set())
    return conflicts
