"""Use/def extraction from statements and basic blocks.

Every dataflow analysis needs to know which variables a statement reads and
writes.  This module centralises that logic so the CFG-level analyses, the
transition-system optimisations and the interpreter agree on it.

Call arguments count as uses; calls to external functions are assumed not to
write any analysed variable (mini-C has no pointers and the generated code the
paper analyses passes data through global variables set before the call).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import BasicBlock, TerminatorKind
from ..minic.ast_nodes import (
    DeclStmt,
    ExprStmt,
    ReturnStmt,
    Stmt,
)
from ..minic.folding import assigned_variables, expression_variables


@dataclass(frozen=True)
class UseDef:
    """Variables read (``uses``) and written (``defs``) by a statement."""

    uses: frozenset[str]
    defs: frozenset[str]


def statement_use_def(stmt: Stmt) -> UseDef:
    """Uses/defs of a single straight-line statement."""
    if isinstance(stmt, DeclStmt):
        if stmt.init is not None:
            return UseDef(
                uses=frozenset(expression_variables(stmt.init)),
                defs=frozenset({stmt.name}),
            )
        return UseDef(uses=frozenset(), defs=frozenset({stmt.name}))
    if isinstance(stmt, ExprStmt):
        return UseDef(
            uses=frozenset(expression_variables(stmt.expr)),
            defs=frozenset(assigned_variables(stmt.expr)),
        )
    if isinstance(stmt, ReturnStmt):
        if stmt.value is not None:
            return UseDef(uses=frozenset(expression_variables(stmt.value)), defs=frozenset())
        return UseDef(uses=frozenset(), defs=frozenset())
    return UseDef(uses=frozenset(), defs=frozenset())


def block_use_def(block: BasicBlock) -> UseDef:
    """Aggregate uses/defs of a basic block (statements plus terminator).

    The aggregation is flow-aware in the usual way: a variable is a *use* of
    the block only if some statement reads it before the block writes it, and
    a *def* if any statement writes it.
    """
    uses: set[str] = set()
    defs: set[str] = set()
    for stmt in block.statements:
        use_def = statement_use_def(stmt)
        uses |= {name for name in use_def.uses if name not in defs}
        defs |= use_def.defs
    condition = block.terminator.condition
    if condition is not None and block.terminator.kind in (
        TerminatorKind.BRANCH,
        TerminatorKind.SWITCH,
    ):
        uses |= {name for name in expression_variables(condition) if name not in defs}
    return UseDef(uses=frozenset(uses), defs=frozenset(defs))


def block_condition_uses(block: BasicBlock) -> frozenset[str]:
    """Variables read by the block's branch/switch condition (if any)."""
    condition = block.terminator.condition
    if condition is None:
        return frozenset()
    return frozenset(expression_variables(condition))
