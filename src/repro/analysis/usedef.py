"""Use/def extraction from statements and basic blocks.

Every dataflow analysis needs to know which variables a statement reads and
writes.  This module centralises that logic so the CFG-level analyses, the
transition-system optimisations and the interpreter agree on it.

Call arguments count as uses; calls to external functions are assumed not to
write any analysed variable (mini-C has no pointers and the generated code the
paper analyses passes data through global variables set before the call).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import BasicBlock, ControlFlowGraph, TerminatorKind
from ..minic.ast_nodes import (
    DeclStmt,
    ExprStmt,
    ReturnStmt,
    Stmt,
)
from ..minic.folding import assigned_variables, expression_variables


@dataclass(frozen=True)
class UseDef:
    """Variables read (``uses``) and written (``defs``) by a statement."""

    uses: frozenset[str]
    defs: frozenset[str]


def statement_use_def(stmt: Stmt) -> UseDef:
    """Uses/defs of a single straight-line statement."""
    if isinstance(stmt, DeclStmt):
        if stmt.init is not None:
            return UseDef(
                uses=frozenset(expression_variables(stmt.init)),
                defs=frozenset({stmt.name}),
            )
        return UseDef(uses=frozenset(), defs=frozenset({stmt.name}))
    if isinstance(stmt, ExprStmt):
        return UseDef(
            uses=frozenset(expression_variables(stmt.expr)),
            defs=frozenset(assigned_variables(stmt.expr)),
        )
    if isinstance(stmt, ReturnStmt):
        if stmt.value is not None:
            return UseDef(uses=frozenset(expression_variables(stmt.value)), defs=frozenset())
        return UseDef(uses=frozenset(), defs=frozenset())
    return UseDef(uses=frozenset(), defs=frozenset())


def block_use_def(block: BasicBlock) -> UseDef:
    """Aggregate uses/defs of a basic block (statements plus terminator).

    The aggregation is flow-aware in the usual way: a variable is a *use* of
    the block only if some statement reads it before the block writes it, and
    a *def* if any statement writes it.
    """
    uses: set[str] = set()
    defs: set[str] = set()
    for stmt in block.statements:
        use_def = statement_use_def(stmt)
        uses |= {name for name in use_def.uses if name not in defs}
        defs |= use_def.defs
    condition = block.terminator.condition
    if condition is not None and block.terminator.kind in (
        TerminatorKind.BRANCH,
        TerminatorKind.SWITCH,
    ):
        uses |= {name for name in expression_variables(condition) if name not in defs}
    return UseDef(uses=frozenset(uses), defs=frozenset(defs))


def block_condition_uses(block: BasicBlock) -> frozenset[str]:
    """Variables read by the block's branch/switch condition (if any)."""
    condition = block.terminator.condition
    if condition is None:
        return frozenset()
    return frozenset(expression_variables(condition))


class CfgUseDefs:
    """Per-CFG memo of every block's and statement's use/def sets.

    Dataflow transfer functions run once per worklist iteration; without this
    memo they re-walk the statement ASTs on every visit.  The memo is built
    lazily per block and cached on the CFG's analysis cache (see
    :func:`cfg_use_defs`), so a graph analysed by liveness, reaching
    definitions and the bitset engine extracts each use/def set exactly once.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self._cfg = cfg
        self._block: dict[int, UseDef] = {}
        self._statements: dict[int, tuple[UseDef, ...]] = {}
        self._condition: dict[int, frozenset[str]] = {}

    def block(self, block_id: int) -> UseDef:
        self.statements(block_id)  # runs the length guard, dropping stale entries
        cached = self._block.get(block_id)
        if cached is None:
            cached = self._block[block_id] = block_use_def(self._cfg.block(block_id))
        return cached

    def statements(self, block_id: int) -> tuple[UseDef, ...]:
        cached = self._statements.get(block_id)
        if cached is None or len(cached) != len(self._cfg.block(block_id).statements):
            # the length guard catches the common in-place mutation pattern
            # (statements appended/removed after construction) even when the
            # caller forgot to invalidate; same-length replacement still
            # requires an explicit invalidate_analysis_caches()
            cached = self._statements[block_id] = tuple(
                statement_use_def(stmt)
                for stmt in self._cfg.block(block_id).statements
            )
            self._block.pop(block_id, None)
        return cached

    def condition_uses(self, block_id: int) -> frozenset[str]:
        cached = self._condition.get(block_id)
        if cached is None:
            cached = self._condition[block_id] = block_condition_uses(
                self._cfg.block(block_id)
            )
        return cached


def cfg_use_defs(cfg: ControlFlowGraph) -> CfgUseDefs:
    """The memoised :class:`CfgUseDefs` of *cfg* (cached on the graph)."""
    cached = cfg.analysis_cache.get("use_defs")
    if cached is None:
        cached = CfgUseDefs(cfg)
        cfg.analysis_cache["use_defs"] = cached
    return cached  # type: ignore[return-value]
