"""Indexed-bitset dataflow engine.

The generic framework in :mod:`repro.analysis.dataflow` represents facts as
frozensets of variable-name strings; every join re-hashes every string and
every equality check compares sets element-wise.  On an industrial-size CFG
(the paper's ~857-block TargetLink function) that dominates the analysis
time.  This module interns the variables (and, for reaching definitions, the
definition sites) of one CFG into dense bit indices *once* and runs the
fixpoint over plain Python integers: joins become ``|``, the liveness
transfer is ``use | (out & ~defs)``, equality is integer comparison.

Interning tables and per-block use/def masks are memoised on the CFG's
analysis cache, so repeated analyses of the same graph (the optimisation
pipeline runs liveness several times) pay the extraction cost once.  The
public analyses in :mod:`repro.analysis.liveness` and
:mod:`repro.analysis.reaching` run on this engine and convert the final
masks back to their documented frozenset result types; the original
frozenset implementations survive as the cross-check reference in
:mod:`repro.analysis.reference`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Iterator

from .. import perf
from ..cfg.graph import ControlFlowGraph, TerminatorKind
from .usedef import CfgUseDefs, cfg_use_defs


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of *mask* in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class VariableInterner:
    """Bidirectional mapping between variable names and dense bit indices.

    ``names_of`` memoises mask-to-frozenset conversions: fixpoints produce
    the same mask for many blocks (straight-line regions carry identical
    facts), and an interner lives as long as its CFG, so each distinct mask
    is materialised exactly once.
    """

    __slots__ = ("names", "index", "_names_of_mask")

    def __init__(self, names: Iterable[str]):
        self.names: tuple[str, ...] = tuple(sorted(set(names)))
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self._names_of_mask: dict[int, frozenset[str]] = {}

    def __len__(self) -> int:
        return len(self.names)

    def mask_of(self, names: Iterable[str]) -> int:
        index = self.index
        mask = 0
        for name in names:
            mask |= 1 << index[name]
        return mask

    def names_of(self, mask: int) -> frozenset[str]:
        cached = self._names_of_mask.get(mask)
        if cached is None:
            names = self.names
            cached = frozenset(names[bit] for bit in iter_bits(mask))
            self._names_of_mask[mask] = cached
        return cached


class CfgBitsetIndex:
    """Per-CFG variable interner plus per-block use/def masks.

    ``block_use``/``block_def`` mirror :func:`repro.analysis.usedef.block_use_def`
    (upward-exposed uses, branch/switch condition included); ``condition_use``
    mirrors :func:`block_condition_uses` (no terminator-kind filter).
    """

    def __init__(self, cfg: ControlFlowGraph):
        use_defs = cfg_use_defs(cfg)
        names: set[str] = set()
        block_ids = [block.block_id for block in cfg.blocks()]
        statement_count = 0
        for block_id in block_ids:
            for use_def in use_defs.statements(block_id):
                names |= use_def.uses
                names |= use_def.defs
                statement_count += 1
            names |= use_defs.condition_uses(block_id)
        self.interner = VariableInterner(names)
        self.use_defs: CfgUseDefs = use_defs
        #: fingerprint for the staleness guard in :func:`cfg_bitset_index`
        self.statement_count = statement_count

        mask_of = self.interner.mask_of
        self.block_use: dict[int, int] = {}
        self.block_def: dict[int, int] = {}
        self.condition_use: dict[int, int] = {}
        #: parallel to ``block.statements``: per-statement ``(use, def)`` masks
        self.statement_masks: dict[int, tuple[tuple[int, int], ...]] = {}
        for block_id in block_ids:
            block = cfg.block(block_id)
            stmt_masks = tuple(
                (mask_of(ud.uses), mask_of(ud.defs))
                for ud in use_defs.statements(block_id)
            )
            self.statement_masks[block_id] = stmt_masks
            uses = 0
            defs = 0
            for use_mask, def_mask in stmt_masks:
                uses |= use_mask & ~defs
                defs |= def_mask
            condition = mask_of(use_defs.condition_uses(block_id))
            self.condition_use[block_id] = condition
            if block.terminator.kind in (TerminatorKind.BRANCH, TerminatorKind.SWITCH):
                uses |= condition & ~defs
            self.block_use[block_id] = uses
            self.block_def[block_id] = defs


def _statement_count(cfg: ControlFlowGraph) -> int:
    return sum(len(block.statements) for block in cfg.blocks())


def cfg_bitset_index(cfg: ControlFlowGraph) -> CfgBitsetIndex:
    """The memoised :class:`CfgBitsetIndex` of *cfg* (cached on the graph).

    The cheap statement-count fingerprint rebuilds the index when statements
    were appended/removed in place without an explicit cache invalidation
    (same-length replacement still needs ``invalidate_analysis_caches()``).
    """
    cached = cfg.analysis_cache.get("bitset_index")
    if cached is None or cached.statement_count != _statement_count(cfg):
        cached = CfgBitsetIndex(cfg)
        cfg.analysis_cache["bitset_index"] = cached
    return cached  # type: ignore[return-value]


class BitsetLiveness:
    """Result of the bitset liveness fixpoint (masks, not names)."""

    __slots__ = ("live_in", "live_out", "index", "iterations")

    def __init__(
        self,
        live_in: dict[int, int],
        live_out: dict[int, int],
        index: CfgBitsetIndex,
        iterations: int,
    ):
        self.live_in = live_in
        self.live_out = live_out
        self.index = index
        self.iterations = iterations


def bitset_block_liveness(cfg: ControlFlowGraph) -> BitsetLiveness:
    """Backward may-analysis ``live_in = use | (live_out & ~defs)`` on masks.

    The worklist is seeded in reverse postorder of the reversed CFG, so on a
    loop-free graph every block is visited exactly once.
    """
    started = time.perf_counter()
    index = cfg_bitset_index(cfg)
    succ = cfg.successor_map()
    pred = cfg.predecessor_map()
    order = cfg.backward_reverse_postorder()
    use = index.block_use
    defs = index.block_def

    live_in = dict.fromkeys(succ, 0)
    live_out = dict.fromkeys(succ, 0)
    worklist: deque[int] = deque(order)
    pending = set(order)
    iterations = 0
    while worklist:
        iterations += 1
        block_id = worklist.popleft()
        pending.discard(block_id)
        out = 0
        for successor in succ[block_id]:
            out |= live_in[successor]
        live_out[block_id] = out
        new_in = use[block_id] | (out & ~defs[block_id])
        if new_in != live_in[block_id]:
            live_in[block_id] = new_in
            for predecessor in pred[block_id]:
                if predecessor not in pending:
                    pending.add(predecessor)
                    worklist.append(predecessor)
    perf.add("liveness.bitset_runs")
    perf.add("liveness.bitset_iterations", iterations)
    perf.record_time("liveness.bitset", time.perf_counter() - started)
    return BitsetLiveness(live_in=live_in, live_out=live_out, index=index,
                          iterations=iterations)


class DefinitionIndex:
    """Interning of a CFG's definition sites into dense bit indices.

    ``definitions[i]`` is the site represented by bit *i*; sites are ordered
    by block id, then statement index (the same deterministic order the
    frozenset reference produces).
    """

    def __init__(self, cfg: ControlFlowGraph):
        from .reaching import Definition  # local import breaks the cycle

        use_defs = cfg_use_defs(cfg)
        definitions: list[Definition] = []
        defs_in_block: dict[int, list[int]] = {}
        statement_count = 0
        for block in cfg.blocks():
            block_bits = defs_in_block.setdefault(block.block_id, [])
            for stmt_index, use_def in enumerate(use_defs.statements(block.block_id)):
                statement_count += 1
                for variable in sorted(use_def.defs):
                    bit = len(definitions)
                    definitions.append(Definition(variable, block.block_id, stmt_index))
                    block_bits.append(bit)
        #: fingerprint for the staleness guard in :func:`cfg_definition_index`
        self.statement_count = statement_count
        self.definitions: tuple = tuple(definitions)
        self.bit_of: dict = {d: i for i, d in enumerate(definitions)}
        self._defs_of_mask: dict[int, frozenset] = {}
        #: mask of every definition of one variable
        self.variable_defs: dict[str, int] = {}
        for bit, definition in enumerate(definitions):
            self.variable_defs[definition.variable] = (
                self.variable_defs.get(definition.variable, 0) | (1 << bit)
            )
        #: per-block gen/kill masks (later defs of a variable shadow earlier)
        self.gen: dict[int, int] = {}
        self.kill: dict[int, int] = {}
        for block in cfg.blocks():
            gen_by_variable: dict[str, int] = {}
            kill = 0
            for bit in defs_in_block.get(block.block_id, ()):
                definition = definitions[bit]
                kill |= self.variable_defs[definition.variable]
                gen_by_variable[definition.variable] = 1 << bit
            gen = 0
            for mask in gen_by_variable.values():
                gen |= mask
            self.gen[block.block_id] = gen
            self.kill[block.block_id] = kill

    def mask_of(self, definitions: Iterable) -> int:
        bit_of = self.bit_of
        mask = 0
        for definition in definitions:
            mask |= 1 << bit_of[definition]
        return mask

    def definitions_of(self, mask: int) -> frozenset:
        # memoised like VariableInterner.names_of: straight-line regions
        # share reach masks, and the index lives as long as its CFG
        cached = self._defs_of_mask.get(mask)
        if cached is None:
            definitions = self.definitions
            cached = frozenset(definitions[bit] for bit in iter_bits(mask))
            self._defs_of_mask[mask] = cached
        return cached


def cfg_definition_index(cfg: ControlFlowGraph) -> DefinitionIndex:
    """The memoised :class:`DefinitionIndex` of *cfg* (cached on the graph).

    Guarded by the same statement-count fingerprint as
    :func:`cfg_bitset_index`.
    """
    cached = cfg.analysis_cache.get("definition_index")
    if cached is None or cached.statement_count != _statement_count(cfg):
        cached = DefinitionIndex(cfg)
        cfg.analysis_cache["definition_index"] = cached
    return cached  # type: ignore[return-value]


class BitsetReaching:
    """Result of the bitset reaching-definitions fixpoint (masks)."""

    __slots__ = ("reach_in", "reach_out", "index", "iterations")

    def __init__(
        self,
        reach_in: dict[int, int],
        reach_out: dict[int, int],
        index: DefinitionIndex,
        iterations: int,
    ):
        self.reach_in = reach_in
        self.reach_out = reach_out
        self.index = index
        self.iterations = iterations


def bitset_reaching_definitions(cfg: ControlFlowGraph) -> BitsetReaching:
    """Forward may-analysis ``reach_out = gen | (reach_in & ~kill)`` on masks."""
    started = time.perf_counter()
    index = cfg_definition_index(cfg)
    succ = cfg.successor_map()
    pred = cfg.predecessor_map()
    order = cfg.reverse_postorder()
    gen = index.gen
    kill = index.kill

    reach_in = dict.fromkeys(succ, 0)
    reach_out = dict.fromkeys(succ, 0)
    worklist: deque[int] = deque(order)
    pending = set(order)
    iterations = 0
    while worklist:
        iterations += 1
        block_id = worklist.popleft()
        pending.discard(block_id)
        incoming = 0
        for predecessor in pred[block_id]:
            incoming |= reach_out[predecessor]
        reach_in[block_id] = incoming
        new_out = gen[block_id] | (incoming & ~kill[block_id])
        if new_out != reach_out[block_id]:
            reach_out[block_id] = new_out
            for successor in succ[block_id]:
                if successor not in pending:
                    pending.add(successor)
                    worklist.append(successor)
    perf.add("reaching.bitset_runs")
    perf.add("reaching.bitset_iterations", iterations)
    perf.record_time("reaching.bitset", time.perf_counter() - started)
    return BitsetReaching(reach_in=reach_in, reach_out=reach_out, index=index,
                          iterations=iterations)
