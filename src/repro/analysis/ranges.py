"""Interval (value-range) analysis.

The paper's "Variable Range Analysis" optimisation (Section 3.2.4) shrinks the
number of bits used to represent a variable in the model: a C ``int`` that
only ever holds 0/1 needs one bit, a state variable ranging over nine chart
states needs four.  The analysis here is a straightforward forward interval
analysis over the CFG with widening at loop heads:

* declared input ranges (``#pragma range x lo hi``) and type ranges seed the
  environment,
* assignments propagate intervals through expressions with interval
  arithmetic,
* joins take the interval hull, and widening jumps to the type range after a
  bounded number of updates to keep termination trivial.

The product of the analysis is :class:`RangeAnalysisResult`, whose
``global_ranges`` map (the hull over all program points) is what the
transition-system translator uses to size state variables.

Like liveness and reaching definitions, the fixpoint runs on the CFG's
cached adjacency (:meth:`~repro.cfg.graph.ControlFlowGraph.successor_map`)
with the worklist seeded in cached reverse postorder and O(1) membership --
the dict-environment *facts* are unchanged, only the iteration strategy is
the engineered one.  The seed-era loop (entry-seeded FIFO over
``out_edges``) is preserved as
:func:`repro.analysis.reference.analyze_ranges_reference` and cross-checked
in the tests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from .. import perf
from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    CallExpr,
    CastExpr,
    Conditional,
    DeclStmt,
    Expr,
    ExprStmt,
    Identifier,
    IntLiteral,
    Stmt,
    UnaryOp,
    RELATIONAL_OPERATORS,
)
from ..minic.folding import apply_binary
from ..minic.symbols import FunctionSymbolTable
from ..minic.types import IntRange

#: number of interval updates of one variable in one block before widening
_WIDENING_THRESHOLD = 3


def variable_defaults(table: FunctionSymbolTable) -> dict[str, IntRange]:
    """Default interval of every variable: declared (pragma) range or type range.

    Shared between the range analyzer here and the sound feasibility analysis
    in :mod:`repro.sa` so both start from the same environment.
    """
    defaults: dict[str, IntRange] = {}
    for name, symbol in table.variables.items():
        declared = symbol.declared_range
        defaults[name] = declared if declared is not None else symbol.ctype.value_range()
    return defaults


@dataclass
class RangeEnvironment:
    """A mapping from variable names to intervals (missing = type range)."""

    ranges: dict[str, IntRange] = field(default_factory=dict)

    def copy(self) -> "RangeEnvironment":
        return RangeEnvironment(ranges=dict(self.ranges))

    def get(self, name: str, default: IntRange) -> IntRange:
        return self.ranges.get(name, default)

    def join(self, other: "RangeEnvironment", keys: set[str],
             defaults: dict[str, IntRange]) -> "RangeEnvironment":
        joined: dict[str, IntRange] = {}
        for key in keys:
            mine = self.ranges.get(key, defaults[key])
            theirs = other.ranges.get(key, defaults[key])
            joined[key] = mine.union(theirs)
        return RangeEnvironment(ranges=joined)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeEnvironment):
            return NotImplemented
        return self.ranges == other.ranges


@dataclass
class RangeAnalysisResult:
    """Result of the interval analysis for one function."""

    #: hull of every variable's interval over all program points
    global_ranges: dict[str, IntRange]
    #: interval environment at the entry of every block
    block_entry: dict[int, RangeEnvironment]

    def bits_for(self, name: str, default_bits: int = 16) -> int:
        rng = self.global_ranges.get(name)
        if rng is None:
            return default_bits
        return rng.bits()

    def total_state_bits(self, names: list[str] | None = None) -> int:
        names = names if names is not None else sorted(self.global_ranges)
        return sum(self.bits_for(name) for name in names)


class RangeAnalyzer:
    """Forward interval analysis over a function CFG."""

    def __init__(self, cfg: ControlFlowGraph, table: FunctionSymbolTable):
        self._cfg = cfg
        self._table = table
        self._defaults: dict[str, IntRange] = variable_defaults(table)
        #: hull of the values every variable is ever *assigned* (flow-sensitive)
        self._assigned_hull: dict[str, IntRange] = {}

    # ------------------------------------------------------------------ #
    def run(self) -> RangeAnalysisResult:
        started = time.perf_counter()
        names = set(self._defaults)
        entry_env: dict[int, RangeEnvironment] = {}
        # initial environment: inputs get their declared range, other
        # variables start at their initialiser (handled per statement) or the
        # full type range
        initial = RangeEnvironment(ranges=dict(self._defaults))
        entry_env[self._cfg.entry.block_id] = initial

        # cached adjacency + reverse postorder: seeding the worklist in RPO
        # means (back edges aside) a block's predecessors are transferred
        # before the block itself, so the first sweep already propagates the
        # entry environment through the whole graph; blocks seeded before
        # their environment arrives simply skip and are re-queued by their
        # predecessors
        successors = self._cfg.successor_map()
        seed_order = self._cfg.reverse_postorder()

        update_counts: dict[tuple[int, str], int] = {}
        worklist = deque(seed_order)
        pending = set(seed_order)
        out_env: dict[int, RangeEnvironment] = {}
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > 50 * max(1, len(self._cfg)):
                break  # widening guarantees this is unreachable, but be safe
            block_id = worklist.popleft()
            pending.discard(block_id)
            env_in = entry_env.get(block_id)
            if env_in is None:
                continue
            env_out = self._transfer(block_id, env_in.copy())
            if block_id in out_env and out_env[block_id] == env_out:
                continue
            out_env[block_id] = env_out
            for successor in successors.get(block_id, ()):
                if successor in entry_env:
                    joined = entry_env[successor].join(env_out, names, self._defaults)
                    joined = self._widen(successor, entry_env[successor], joined, update_counts)
                    if joined == entry_env[successor]:
                        continue
                    entry_env[successor] = joined
                else:
                    entry_env[successor] = env_out.copy()
                if successor not in pending:
                    pending.add(successor)
                    worklist.append(successor)

        global_ranges = self._global_ranges(names)
        perf.add("ranges.solve_calls")
        perf.add("ranges.iterations", iterations)
        perf.record_time("ranges.solve", time.perf_counter() - started)
        return RangeAnalysisResult(global_ranges=global_ranges, block_entry=entry_env)

    def _global_ranges(self, names: set[str]) -> dict[str, IntRange]:
        """Per-variable hull used to size the model's state variables.

        * analysis inputs keep their declared (pragma) range or type range;
        * variables that may be read before being written (live at function
          entry) keep the full type range -- their uninitialised value is part
          of the state space;
        * every other variable gets the hull of the values it is assigned
          (plus its static initialiser), which is exactly the information the
          paper's variable range analysis feeds back into the model.
        """
        from .liveness import block_liveness

        liveness = block_liveness(self._cfg)
        entry_successors = self._cfg.successors(self._cfg.entry)
        live_at_entry: frozenset[str] = frozenset()
        if entry_successors:
            live_at_entry = liveness.live_in.get(
                entry_successors[0].block_id, frozenset()
            )

        global_ranges: dict[str, IntRange] = {}
        for name in names:
            symbol = self._table.variables.get(name)
            is_input = bool(symbol is not None and symbol.is_input)
            if is_input:
                global_ranges[name] = self._defaults[name]
                continue
            if name in live_at_entry:
                # may be read before written: its junk initial value is state
                global_ranges[name] = self._defaults[name]
                continue
            hull = self._assigned_hull.get(name)
            initial = self._static_initial(name)
            if initial is not None:
                hull = initial if hull is None else hull.union(initial)
            if hull is None:
                # never assigned and never read before written: one value is
                # enough to represent it
                hull = IntRange(0, 0)
            clamped = hull.intersect(self._defaults[name])
            global_ranges[name] = clamped if clamped is not None else self._defaults[name]
        return global_ranges

    def _static_initial(self, name: str) -> IntRange | None:
        symbol = self._table.variables.get(name)
        if symbol is None or symbol.decl is None:
            return None
        init = getattr(symbol.decl, "init", None)
        if init is None:
            return IntRange(0, 0) if getattr(symbol, "kind", None) is not None else None
        from ..minic.ast_nodes import BoolLiteral, IntLiteral
        from ..minic.folding import fold_expr

        folded = fold_expr(init)
        if isinstance(folded, IntLiteral):
            return IntRange(folded.value, folded.value)
        if isinstance(folded, BoolLiteral):
            value = int(folded.value)
            return IntRange(value, value)
        return None

    # ------------------------------------------------------------------ #
    def _widen(
        self,
        block_id: int,
        old: RangeEnvironment,
        new: RangeEnvironment,
        counts: dict[tuple[int, str], int],
    ) -> RangeEnvironment:
        widened = dict(new.ranges)
        for name, new_range in new.ranges.items():
            old_range = old.ranges.get(name, self._defaults[name])
            if new_range != old_range:
                key = (block_id, name)
                counts[key] = counts.get(key, 0) + 1
                if counts[key] > _WIDENING_THRESHOLD:
                    widened[name] = self._defaults[name]
        return RangeEnvironment(ranges=widened)

    def _transfer(self, block_id: int, env: RangeEnvironment) -> RangeEnvironment:
        block = self._cfg.block(block_id)
        for stmt in block.statements:
            self._transfer_stmt(stmt, env)
        return env

    def _transfer_stmt(self, stmt: Stmt, env: RangeEnvironment) -> None:
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                value = self._clamp(stmt.name, self.evaluate(stmt.init, env))
                env.ranges[stmt.name] = value
                self._record_assignment(stmt.name, value)
            return
        if isinstance(stmt, ExprStmt):
            self._transfer_expr(stmt.expr, env)

    def _transfer_expr(self, expr: Expr, env: RangeEnvironment) -> None:
        if isinstance(expr, AssignExpr):
            self._transfer_expr(expr.value, env)
            value = self._clamp(expr.target.name, self.evaluate(expr.value, env))
            env.ranges[expr.target.name] = value
            self._record_assignment(expr.target.name, value)
            return
        for child in expr.children():
            if isinstance(child, Expr):
                self._transfer_expr(child, env)

    def _record_assignment(self, name: str, value: IntRange) -> None:
        if name in self._assigned_hull:
            self._assigned_hull[name] = self._assigned_hull[name].union(value)
        else:
            self._assigned_hull[name] = value

    def _clamp(self, name: str, rng: IntRange) -> IntRange:
        default = self._defaults.get(name)
        if default is None:
            return rng
        clamped = rng.intersect(default)
        return clamped if clamped is not None else default

    # ------------------------------------------------------------------ #
    # interval evaluation of expressions
    # ------------------------------------------------------------------ #
    def evaluate(self, expr: Expr, env: RangeEnvironment) -> IntRange:
        """Interval of the possible values of *expr* under *env*."""
        if isinstance(expr, IntLiteral):
            return IntRange(expr.value, expr.value)
        if isinstance(expr, BoolLiteral):
            value = int(expr.value)
            return IntRange(value, value)
        if isinstance(expr, Identifier):
            default = self._defaults.get(expr.name, IntRange(-(2 ** 15), 2 ** 15 - 1))
            return env.get(expr.name, default)
        if isinstance(expr, UnaryOp):
            operand = self.evaluate(expr.operand, env)
            if expr.op == "-":
                return IntRange(-operand.hi, -operand.lo)
            if expr.op == "+":
                return operand
            if expr.op == "!":
                if operand.lo > 0 or operand.hi < 0:
                    return IntRange(0, 0)
                if operand.lo == 0 and operand.hi == 0:
                    return IntRange(1, 1)
                return IntRange(0, 1)
            return self._type_range(expr)
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr, env)
        if isinstance(expr, Conditional):
            then = self.evaluate(expr.then, env)
            otherwise = self.evaluate(expr.otherwise, env)
            return then.union(otherwise)
        if isinstance(expr, CastExpr):
            operand = self.evaluate(expr.operand, env)
            target = expr.target_type.value_range()
            clamped = operand.intersect(target)
            return clamped if clamped is not None else target
        if isinstance(expr, AssignExpr):
            return self.evaluate(expr.value, env)
        if isinstance(expr, CallExpr):
            return self._type_range(expr)
        return self._type_range(expr)

    def _evaluate_binary(self, expr: BinaryOp, env: RangeEnvironment) -> IntRange:
        if expr.op in RELATIONAL_OPERATORS:
            return IntRange(0, 1)
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if expr.op in ("+", "-", "*"):
            candidates = []
            for a in (left.lo, left.hi):
                for b in (right.lo, right.hi):
                    candidates.append(apply_binary(expr.op, a, b))
            return IntRange(min(candidates), max(candidates))
        if expr.op == "/":
            if right.lo <= 0 <= right.hi:
                return self._type_range(expr)
            candidates = []
            for a in (left.lo, left.hi):
                for b in (right.lo, right.hi):
                    candidates.append(apply_binary("/", a, b))
            return IntRange(min(candidates), max(candidates))
        if expr.op == "%":
            if right.lo <= 0 <= right.hi:
                return self._type_range(expr)
            magnitude = max(abs(right.lo), abs(right.hi)) - 1
            lo = -magnitude if left.lo < 0 else 0
            return IntRange(lo, magnitude)
        if expr.op in ("&",):
            if left.lo >= 0 and right.lo >= 0:
                return IntRange(0, min(left.hi, right.hi))
            return self._type_range(expr)
        if expr.op in ("|", "^"):
            if left.lo >= 0 and right.lo >= 0:
                bits = max(left.hi, right.hi).bit_length()
                return IntRange(0, (1 << bits) - 1)
            return self._type_range(expr)
        return self._type_range(expr)

    def _type_range(self, expr: Expr) -> IntRange:
        if expr.ctype is not None and not expr.ctype.is_void:
            return expr.ctype.value_range()
        return IntRange(-(2 ** 15), 2 ** 15 - 1)


def analyze_ranges(cfg: ControlFlowGraph, table: FunctionSymbolTable) -> RangeAnalysisResult:
    """Run the interval analysis on *cfg* and return the result."""
    return RangeAnalyzer(cfg, table).run()
