"""Dataflow analyses shared by the state-space optimisations and the pipeline."""

from __future__ import annotations

from .bitset import (
    BitsetLiveness,
    BitsetReaching,
    CfgBitsetIndex,
    DefinitionIndex,
    VariableInterner,
    bitset_block_liveness,
    bitset_reaching_definitions,
    cfg_bitset_index,
    cfg_definition_index,
    iter_bits,
)
from .dataflow import (
    DataflowProblem,
    DataflowResult,
    Direction,
    set_intersection,
    set_union,
    solve,
)
from .liveness import (
    LivenessResult,
    block_liveness,
    live_range_conflicts,
    statement_liveness,
    unused_variables,
)
from .ranges import RangeAnalysisResult, RangeAnalyzer, RangeEnvironment, analyze_ranges
from .reaching import Definition, ReachingResult, reaching_definitions
from .relevance import (
    RelevanceResult,
    analyze_relevance,
    control_relevant_variables,
    irrelevant_statements,
)
from .reference import (
    analyze_ranges_reference,
    block_liveness_reference,
    reaching_definitions_reference,
    solve_reference,
)
from .usedef import (
    CfgUseDefs,
    UseDef,
    block_condition_uses,
    block_use_def,
    cfg_use_defs,
    statement_use_def,
)

__all__ = [
    "BitsetLiveness",
    "BitsetReaching",
    "CfgBitsetIndex",
    "CfgUseDefs",
    "DefinitionIndex",
    "VariableInterner",
    "bitset_block_liveness",
    "bitset_reaching_definitions",
    "analyze_ranges_reference",
    "block_liveness_reference",
    "cfg_bitset_index",
    "cfg_definition_index",
    "cfg_use_defs",
    "iter_bits",
    "reaching_definitions_reference",
    "solve_reference",
    "DataflowProblem",
    "DataflowResult",
    "Direction",
    "set_intersection",
    "set_union",
    "solve",
    "LivenessResult",
    "block_liveness",
    "live_range_conflicts",
    "statement_liveness",
    "unused_variables",
    "RangeAnalysisResult",
    "RangeAnalyzer",
    "RangeEnvironment",
    "analyze_ranges",
    "Definition",
    "ReachingResult",
    "reaching_definitions",
    "RelevanceResult",
    "analyze_relevance",
    "control_relevant_variables",
    "irrelevant_statements",
    "UseDef",
    "block_condition_uses",
    "block_use_def",
    "statement_use_def",
]
