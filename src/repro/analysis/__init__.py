"""Dataflow analyses shared by the state-space optimisations and the pipeline."""

from __future__ import annotations

from .dataflow import (
    DataflowProblem,
    DataflowResult,
    Direction,
    set_intersection,
    set_union,
    solve,
)
from .liveness import (
    LivenessResult,
    block_liveness,
    live_range_conflicts,
    statement_liveness,
    unused_variables,
)
from .ranges import RangeAnalysisResult, RangeAnalyzer, RangeEnvironment, analyze_ranges
from .reaching import Definition, ReachingResult, reaching_definitions
from .relevance import (
    RelevanceResult,
    analyze_relevance,
    control_relevant_variables,
    irrelevant_statements,
)
from .usedef import UseDef, block_condition_uses, block_use_def, statement_use_def

__all__ = [
    "DataflowProblem",
    "DataflowResult",
    "Direction",
    "set_intersection",
    "set_union",
    "solve",
    "LivenessResult",
    "block_liveness",
    "live_range_conflicts",
    "statement_liveness",
    "unused_variables",
    "RangeAnalysisResult",
    "RangeAnalyzer",
    "RangeEnvironment",
    "analyze_ranges",
    "Definition",
    "ReachingResult",
    "reaching_definitions",
    "RelevanceResult",
    "analyze_relevance",
    "control_relevant_variables",
    "irrelevant_statements",
    "UseDef",
    "block_condition_uses",
    "block_use_def",
    "statement_use_def",
]
