"""Control-flow relevance: which variables and statements influence branching.

The paper's "Dead Variable and Code Elimination" optimisation
(Section 3.2.6):

    "Since we are not interested in the data flow but only in the control
    flow, all variables that do not affect the control flow directly or
    through assignments to other variables can be removed.  Even code
    segments that do not affect variables involved in the control flow can be
    removed ..."

:func:`control_relevant_variables` computes the backward closure: start from
the variables read by branch/switch conditions and repeatedly add every
variable read by an assignment whose target is already in the set.
:func:`irrelevant_statements` then lists the statements that only write
irrelevant variables (and call no functions), i.e. the removable "code
segments".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import DeclStmt, ExprStmt, ReturnStmt, Stmt
from ..minic.folding import assigned_variables, expression_variables, has_calls
from .usedef import block_condition_uses


@dataclass
class RelevanceResult:
    """Control-flow relevance classification of a function's variables."""

    #: variables that (transitively) influence a branch or switch condition
    relevant: frozenset[str]
    #: analysed variables that do not influence control flow
    irrelevant: frozenset[str]
    #: statements writing only irrelevant variables (removable code)
    removable_statements: list[Stmt]


def control_relevant_variables(
    cfg: ControlFlowGraph,
    keep: frozenset[str] = frozenset(),
) -> frozenset[str]:
    """Variables that affect control flow, directly or transitively.

    ``keep`` forces extra variables into the relevant set -- the test-data
    generator passes the variables mentioned in the target-path constraint so
    that dead-code elimination never removes the very assignments a selected
    path depends on ("as long as we are not looking for test data to reach
    these paths", Section 3.2.6).
    """
    relevant: set[str] = set(keep)
    for block in cfg.blocks():
        relevant |= block_condition_uses(block)

    # dependencies: target -> union of variables read by assignments to it
    dependencies: dict[str, set[str]] = {}
    for block in cfg.blocks():
        for stmt in block.statements:
            for target, sources in _assignment_dependencies(stmt):
                dependencies.setdefault(target, set()).update(sources)

    changed = True
    while changed:
        changed = False
        for target in list(relevant):
            for source in dependencies.get(target, ()):
                if source not in relevant:
                    relevant.add(source)
                    changed = True
    return frozenset(relevant)


def _assignment_dependencies(stmt: Stmt) -> list[tuple[str, set[str]]]:
    if isinstance(stmt, DeclStmt) and stmt.init is not None:
        return [(stmt.name, expression_variables(stmt.init))]
    if isinstance(stmt, ExprStmt):
        targets = assigned_variables(stmt.expr)
        sources = expression_variables(stmt.expr)
        return [(target, set(sources)) for target in targets]
    return []


def irrelevant_statements(
    cfg: ControlFlowGraph, relevant: frozenset[str]
) -> list[Stmt]:
    """Statements that can be removed without changing any branch decision.

    A statement is removable when it only assigns variables outside the
    relevant set, contains no function call (calls are opaque -- and their
    execution time is being measured, so removing them would change the model
    in other ways than state-space size) and is not a ``return``.
    """
    removable: list[Stmt] = []
    for block in cfg.blocks():
        for stmt in block.statements:
            if isinstance(stmt, ReturnStmt):
                continue
            if isinstance(stmt, DeclStmt):
                if stmt.init is None:
                    continue
                if has_calls(stmt.init):
                    continue
                if stmt.name not in relevant:
                    removable.append(stmt)
                continue
            if isinstance(stmt, ExprStmt):
                if has_calls(stmt.expr):
                    continue
                targets = assigned_variables(stmt.expr)
                if targets and targets.isdisjoint(relevant):
                    removable.append(stmt)
    return removable


def analyze_relevance(
    cfg: ControlFlowGraph,
    all_variables: set[str],
    keep: frozenset[str] = frozenset(),
) -> RelevanceResult:
    """Full relevance classification of *all_variables* for *cfg*."""
    relevant = control_relevant_variables(cfg, keep)
    irrelevant = frozenset(name for name in all_variables if name not in relevant)
    removable = irrelevant_statements(cfg, relevant)
    return RelevanceResult(
        relevant=frozenset(name for name in all_variables if name in relevant),
        irrelevant=irrelevant,
        removable_statements=removable,
    )
