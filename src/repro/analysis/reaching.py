"""Reaching-definitions analysis and def-use chains.

Used by the reverse-CSE optimisation (Section 3.2.1): a temporary variable can
be substituted by its defining expression when

* it has exactly one definition,
* that definition reaches every use, and
* none of the variables the defining expression reads is redefined between
  the definition and the use.

The analysis works at statement granularity; definition sites are identified
by ``(block id, statement index)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from .dataflow import DataflowProblem, Direction, set_union, solve
from .usedef import block_condition_uses, statement_use_def


@dataclass(frozen=True, order=True)
class Definition:
    """A definition site of a variable."""

    variable: str
    block_id: int
    statement_index: int


@dataclass
class ReachingResult:
    """Reaching definitions before/after every block plus def-use chains."""

    reach_in: dict[int, frozenset[Definition]]
    reach_out: dict[int, frozenset[Definition]]
    definitions: list[Definition]
    #: definition -> (block id, statement index) pairs of statements using it;
    #: a use site with statement index ``-1`` denotes the block's terminator
    #: condition.
    uses: dict[Definition, set[tuple[int, int]]]

    def definitions_of(self, variable: str) -> list[Definition]:
        return [d for d in self.definitions if d.variable == variable]


def reaching_definitions(cfg: ControlFlowGraph) -> ReachingResult:
    """Compute reaching definitions and def-use chains for *cfg*."""
    # collect definitions
    definitions: list[Definition] = []
    defs_in_block: dict[int, list[Definition]] = {}
    for block in cfg.blocks():
        for index, stmt in enumerate(block.statements):
            for variable in statement_use_def(stmt).defs:
                definition = Definition(variable, block.block_id, index)
                definitions.append(definition)
                defs_in_block.setdefault(block.block_id, []).append(definition)

    defs_by_variable: dict[str, set[Definition]] = {}
    for definition in definitions:
        defs_by_variable.setdefault(definition.variable, set()).add(definition)

    gen_kill: dict[int, tuple[frozenset[Definition], frozenset[Definition]]] = {}
    for block in cfg.blocks():
        gen: dict[str, Definition] = {}
        kill: set[Definition] = set()
        for definition in defs_in_block.get(block.block_id, ()):  # in statement order
            kill |= defs_by_variable[definition.variable]
            gen[definition.variable] = definition  # later defs shadow earlier ones
        gen_kill[block.block_id] = (frozenset(gen.values()), frozenset(kill))

    def successors(block_id: int) -> list[int]:
        return [edge.target for edge in cfg.out_edges(block_id)]

    def transfer(block_id: int, reach_in: frozenset[Definition]) -> frozenset[Definition]:
        gen, kill = gen_kill[block_id]
        return gen | (reach_in - kill)

    problem = DataflowProblem(
        nodes=[block.block_id for block in cfg.blocks()],
        successors=successors,
        direction=Direction.FORWARD,
        boundary_nodes=[cfg.entry.block_id],
        boundary=frozenset(),
        initial=frozenset(),
        join=set_union,
        transfer=transfer,
    )
    result = solve(problem)
    reach_in = dict(result.in_facts)
    reach_out = dict(result.out_facts)

    # def-use chains by walking each block with its reach-in set
    uses: dict[Definition, set[tuple[int, int]]] = {d: set() for d in definitions}
    for block in cfg.blocks():
        current: dict[str, set[Definition]] = {}
        for definition in reach_in[block.block_id]:
            current.setdefault(definition.variable, set()).add(definition)
        for index, stmt in enumerate(block.statements):
            use_def = statement_use_def(stmt)
            for variable in use_def.uses:
                for definition in current.get(variable, ()):
                    uses[definition].add((block.block_id, index))
            for variable in use_def.defs:
                current[variable] = {Definition(variable, block.block_id, index)}
        for variable in block_condition_uses(block):
            for definition in current.get(variable, ()):
                uses[definition].add((block.block_id, -1))

    return ReachingResult(
        reach_in=reach_in, reach_out=reach_out, definitions=definitions, uses=uses
    )
