"""Reaching-definitions analysis and def-use chains.

Used by the reverse-CSE optimisation (Section 3.2.1): a temporary variable can
be substituted by its defining expression when

* it has exactly one definition,
* that definition reaches every use, and
* none of the variables the defining expression reads is redefined between
  the definition and the use.

The analysis works at statement granularity; definition sites are identified
by ``(block id, statement index)``.

Definition sites are interned to bit positions once per CFG and the fixpoint
runs as integer bitmask operations (:mod:`repro.analysis.bitset`); the
def-use chain walk also stays in mask space until the final conversion to the
public frozenset-of-:class:`Definition` result.  The frozenset reference
implementation lives in :mod:`repro.analysis.reference` for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from .bitset import DefinitionIndex, bitset_reaching_definitions, iter_bits
from .usedef import cfg_use_defs


@dataclass(frozen=True, order=True)
class Definition:
    """A definition site of a variable."""

    variable: str
    block_id: int
    statement_index: int


@dataclass
class ReachingResult:
    """Reaching definitions before/after every block plus def-use chains."""

    reach_in: dict[int, frozenset[Definition]]
    reach_out: dict[int, frozenset[Definition]]
    definitions: list[Definition]
    #: definition -> (block id, statement index) pairs of statements using it;
    #: a use site with statement index ``-1`` denotes the block's terminator
    #: condition.
    uses: dict[Definition, set[tuple[int, int]]]

    def definitions_of(self, variable: str) -> list[Definition]:
        return [d for d in self.definitions if d.variable == variable]


def _def_use_chains(
    cfg: ControlFlowGraph,
    reach_in_masks: dict[int, int],
    index: DefinitionIndex,
) -> dict[Definition, set[tuple[int, int]]]:
    """Walk every block with its reach-in mask and record definition uses."""
    use_defs = cfg_use_defs(cfg)
    definitions = index.definitions
    variable_defs = index.variable_defs
    bit_of = index.bit_of
    uses: dict[Definition, set[tuple[int, int]]] = {d: set() for d in definitions}
    for block in cfg.blocks():
        block_id = block.block_id
        #: per-variable mask of the definitions currently reaching this point
        current: dict[str, int] = {}
        reach_mask = reach_in_masks[block_id]
        if reach_mask:
            for variable, defs_mask in variable_defs.items():
                reaching = reach_mask & defs_mask
                if reaching:
                    current[variable] = reaching
        for stmt_index, use_def in enumerate(use_defs.statements(block_id)):
            for variable in use_def.uses:
                for bit in iter_bits(current.get(variable, 0)):
                    uses[definitions[bit]].add((block_id, stmt_index))
            for variable in use_def.defs:
                current[variable] = 1 << bit_of[
                    Definition(variable, block_id, stmt_index)
                ]
        for variable in use_defs.condition_uses(block_id):
            for bit in iter_bits(current.get(variable, 0)):
                uses[definitions[bit]].add((block_id, -1))
    return uses


def reaching_definitions(cfg: ControlFlowGraph) -> ReachingResult:
    """Compute reaching definitions and def-use chains for *cfg*."""
    solved = bitset_reaching_definitions(cfg)
    index = solved.index
    definitions_of = index.definitions_of
    reach_in = {
        block_id: definitions_of(mask) for block_id, mask in solved.reach_in.items()
    }
    reach_out = {
        block_id: definitions_of(mask) for block_id, mask in solved.reach_out.items()
    }
    uses = _def_use_chains(cfg, solved.reach_in, index)
    return ReachingResult(
        reach_in=reach_in,
        reach_out=reach_out,
        definitions=list(index.definitions),
        uses=uses,
    )
