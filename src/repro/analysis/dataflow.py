"""A small generic dataflow framework.

All analyses in this package (liveness, reaching definitions, value ranges)
are instances of the classic iterative worklist algorithm over a CFG.  The
framework is deliberately tiny: an analysis provides

* the direction (forward/backward),
* the initial value of every node,
* a ``join`` of incoming facts, and
* a ``transfer`` function per node,

and :func:`solve` iterates to a fixed point.  Facts can be any value with a
well-defined equality; analyses over infinite-height lattices (the interval
analysis) bound iteration through widening inside their transfer function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, TypeVar

NodeT = TypeVar("NodeT", bound=Hashable)
FactT = TypeVar("FactT")


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass
class DataflowProblem(Generic[NodeT, FactT]):
    """Description of one dataflow analysis instance.

    Attributes
    ----------
    nodes:
        All graph nodes.
    successors:
        Forward successor function (the framework inverts it for backward
        problems).
    direction:
        Forward or backward.
    boundary:
        Fact at the entry (forward) or exit (backward) node(s).
    initial:
        Initial fact of every other node.
    join:
        Combine the facts flowing into a node.
    transfer:
        Per-node transfer function: ``transfer(node, in_fact) -> out_fact``.
    equals:
        Fact equality (defaults to ``==``).
    """

    nodes: list[NodeT]
    successors: Callable[[NodeT], Iterable[NodeT]]
    direction: Direction
    boundary_nodes: list[NodeT]
    boundary: FactT
    initial: FactT
    join: Callable[[list[FactT]], FactT]
    transfer: Callable[[NodeT, FactT], FactT]
    equals: Callable[[FactT, FactT], bool] = lambda a, b: a == b
    max_iterations: int = 10_000


@dataclass
class DataflowResult(Generic[NodeT, FactT]):
    """Fixed-point facts: value *entering* and *leaving* each node.

    For backward problems ``in_facts`` is the fact at node entry in program
    order (i.e. the analysis result usually reported as ``live-in``).
    """

    in_facts: dict[NodeT, FactT]
    out_facts: dict[NodeT, FactT]
    iterations: int


def solve(problem: DataflowProblem[NodeT, FactT]) -> DataflowResult[NodeT, FactT]:
    """Run the iterative worklist algorithm until a fixed point is reached."""
    nodes = list(problem.nodes)
    if problem.direction is Direction.FORWARD:
        flow_pred: dict[NodeT, list[NodeT]] = {n: [] for n in nodes}
        for node in nodes:
            for succ in problem.successors(node):
                flow_pred.setdefault(succ, []).append(node)
        flow_succ = {n: list(problem.successors(n)) for n in nodes}
    else:
        # invert the graph: "predecessors" in flow order are CFG successors
        flow_pred = {n: list(problem.successors(n)) for n in nodes}
        flow_succ = {n: [] for n in nodes}
        for node in nodes:
            for succ in problem.successors(node):
                flow_succ.setdefault(succ, []).append(node)

    in_facts: dict[NodeT, FactT] = {}
    out_facts: dict[NodeT, FactT] = {}
    boundary = set(problem.boundary_nodes)
    for node in nodes:
        in_facts[node] = problem.boundary if node in boundary else problem.initial
        out_facts[node] = problem.transfer(node, in_facts[node])

    worklist = list(nodes)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > problem.max_iterations:
            raise RuntimeError(
                f"dataflow analysis did not converge after {problem.max_iterations} steps"
            )
        node = worklist.pop(0)
        incoming = [out_facts[p] for p in flow_pred.get(node, ()) if p in out_facts]
        if node in boundary:
            new_in = problem.boundary if not incoming else problem.join(
                incoming + [problem.boundary]
            )
        elif incoming:
            new_in = problem.join(incoming)
        else:
            new_in = problem.initial
        new_out = problem.transfer(node, new_in)
        changed = not problem.equals(new_out, out_facts[node]) or not problem.equals(
            new_in, in_facts[node]
        )
        in_facts[node] = new_in
        out_facts[node] = new_out
        if changed:
            for succ in flow_succ.get(node, ()):
                if succ not in worklist:
                    worklist.append(succ)
    return DataflowResult(in_facts=in_facts, out_facts=out_facts, iterations=iterations)


def set_union(facts: list[frozenset]) -> frozenset:
    """Join for may-analyses over sets."""
    result: frozenset = frozenset()
    for fact in facts:
        result |= fact
    return result


def set_intersection(facts: list[frozenset]) -> frozenset:
    """Join for must-analyses over sets."""
    if not facts:
        return frozenset()
    result = facts[0]
    for fact in facts[1:]:
        result &= fact
    return result
