"""A small generic dataflow framework.

All analyses in this package (liveness, reaching definitions, value ranges)
are instances of the classic iterative worklist algorithm over a CFG.  The
framework is deliberately tiny: an analysis provides

* the direction (forward/backward),
* the initial value of every node,
* a ``join`` of incoming facts, and
* a ``transfer`` function per node,

and :func:`solve` iterates to a fixed point.  Facts can be any value with a
well-defined equality; analyses over infinite-height lattices (the interval
analysis) bound iteration through widening inside their transfer function.

The solver is engineered, not textbook: the worklist is a deque with an O(1)
membership set, nodes are seeded in reverse postorder of the flow graph (so
that, ignoring back edges, every flow predecessor is processed before its
successors), and a node's transfer runs for the first time when it is popped
instead of once more at initialisation.  Callers that already know a good
order (the CFG caches its reverse postorder) pass it via
``DataflowProblem.order``; likewise ``predecessors`` avoids re-deriving the
predecessor map from the successor function on every call.  Liveness and
reaching definitions additionally bypass the generic fact representation
entirely through :mod:`repro.analysis.bitset`.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, Sequence, TypeVar

from .. import perf
from ..cfg.graph import depth_first_postorder

NodeT = TypeVar("NodeT", bound=Hashable)
FactT = TypeVar("FactT")


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass
class DataflowProblem(Generic[NodeT, FactT]):
    """Description of one dataflow analysis instance.

    Attributes
    ----------
    nodes:
        All graph nodes.
    successors:
        Forward successor function (the framework inverts it for backward
        problems).
    direction:
        Forward or backward.
    boundary:
        Fact at the entry (forward) or exit (backward) node(s).
    initial:
        Initial fact of every other node.
    join:
        Combine the facts flowing into a node.
    transfer:
        Per-node transfer function: ``transfer(node, in_fact) -> out_fact``.
    equals:
        Fact equality (defaults to ``==``).
    predecessors:
        Optional forward predecessor function.  When omitted the solver
        derives predecessors by inverting ``successors`` (one pass per call);
        the CFG-backed problem builders in :mod:`repro.analysis.reference`
        pass the graph's cached adjacency instead.
    order:
        Optional preferred processing order in *flow* direction (reverse
        postorder of the flow graph).  When omitted the solver computes it
        from the boundary nodes via depth-first search.
    """

    nodes: list[NodeT]
    successors: Callable[[NodeT], Iterable[NodeT]]
    direction: Direction
    boundary_nodes: list[NodeT]
    boundary: FactT
    initial: FactT
    join: Callable[[list[FactT]], FactT]
    transfer: Callable[[NodeT, FactT], FactT]
    equals: Callable[[FactT, FactT], bool] = lambda a, b: a == b
    max_iterations: int = 10_000
    predecessors: Callable[[NodeT], Iterable[NodeT]] | None = None
    order: Sequence[NodeT] | None = None


@dataclass
class DataflowResult(Generic[NodeT, FactT]):
    """Fixed-point facts: value *entering* and *leaving* each node.

    For backward problems ``in_facts`` is the fact at node entry in program
    order (i.e. the analysis result usually reported as ``live-in``).
    """

    in_facts: dict[NodeT, FactT]
    out_facts: dict[NodeT, FactT]
    iterations: int


def _flow_reverse_postorder(
    nodes: list[NodeT],
    flow_succ: dict[NodeT, list[NodeT]],
    roots: Iterable[NodeT],
) -> list[NodeT]:
    """Reverse postorder of the flow graph, covering every node.

    Depth-first from *roots*; nodes unreachable from the roots are appended
    afterwards in their given order so the worklist always seeds the whole
    graph.
    """
    order = list(reversed(depth_first_postorder(roots, flow_succ)))
    if len(order) != len(nodes):
        reached = set(order)
        order.extend(node for node in nodes if node not in reached)
    return order


def solve(problem: DataflowProblem[NodeT, FactT]) -> DataflowResult[NodeT, FactT]:
    """Run the iterative worklist algorithm until a fixed point is reached."""
    started = time.perf_counter()
    nodes = list(problem.nodes)
    node_set = set(nodes)
    if problem.direction is Direction.FORWARD:
        flow_succ = {
            n: [s for s in problem.successors(n) if s in node_set] for n in nodes
        }
        if problem.predecessors is not None:
            flow_pred = {
                n: [p for p in problem.predecessors(n) if p in node_set]
                for n in nodes
            }
        else:
            flow_pred = {n: [] for n in nodes}
            for node in nodes:
                for succ in flow_succ[node]:
                    flow_pred[succ].append(node)
    else:
        # invert the graph: "predecessors" in flow order are CFG successors
        flow_pred = {
            n: [s for s in problem.successors(n) if s in node_set] for n in nodes
        }
        if problem.predecessors is not None:
            flow_succ = {
                n: [p for p in problem.predecessors(n) if p in node_set]
                for n in nodes
            }
        else:
            flow_succ = {n: [] for n in nodes}
            for node in nodes:
                for succ in flow_pred[node]:
                    flow_succ[succ].append(node)

    boundary = set(problem.boundary_nodes)
    in_facts: dict[NodeT, FactT] = {
        node: problem.boundary if node in boundary else problem.initial
        for node in nodes
    }
    out_facts: dict[NodeT, FactT] = {}

    if problem.order is not None:
        seed_order = [n for n in problem.order if n in node_set]
        if len(seed_order) != len(nodes):
            present = set(seed_order)
            seed_order.extend(n for n in nodes if n not in present)
    else:
        seed_order = _flow_reverse_postorder(nodes, flow_succ, problem.boundary_nodes)

    worklist: deque[NodeT] = deque(seed_order)
    pending = set(seed_order)
    join = problem.join
    transfer = problem.transfer
    equals = problem.equals
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > problem.max_iterations:
            raise RuntimeError(
                f"dataflow analysis did not converge after {problem.max_iterations} steps"
            )
        node = worklist.popleft()
        pending.discard(node)
        incoming = [out_facts[p] for p in flow_pred.get(node, ()) if p in out_facts]
        if node in boundary:
            new_in = problem.boundary if not incoming else join(
                incoming + [problem.boundary]
            )
        elif incoming:
            new_in = join(incoming)
        else:
            new_in = problem.initial
        new_out = transfer(node, new_in)
        if node in out_facts:
            changed = not equals(new_out, out_facts[node]) or not equals(
                new_in, in_facts[node]
            )
        else:
            # first visit: the node's out fact did not exist yet
            changed = True
        in_facts[node] = new_in
        out_facts[node] = new_out
        if changed:
            for succ in flow_succ.get(node, ()):
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    # every node was seeded, so every node has been popped at least once;
    # re-key in node order for deterministic result iteration
    out_facts = {node: out_facts[node] for node in nodes}
    perf.add("dataflow.solve_calls")
    perf.add("dataflow.iterations", iterations)
    perf.record_time("dataflow.solve", time.perf_counter() - started)
    return DataflowResult(in_facts=in_facts, out_facts=out_facts, iterations=iterations)


def set_union(facts: list[frozenset]) -> frozenset:
    """Join for may-analyses over sets."""
    result: frozenset = frozenset()
    for fact in facts:
        result |= fact
    return result


def set_intersection(facts: list[frozenset]) -> frozenset:
    """Join for must-analyses over sets."""
    if not facts:
        return frozenset()
    result = facts[0]
    for fact in facts[1:]:
        result &= fact
    return result
