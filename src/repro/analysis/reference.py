"""Frozenset reference implementations of the hot dataflow analyses.

These are verbatim preservations of the original (pre-bitset) algorithms:
a textbook list worklist with ``pop(0)`` and linear membership scans, facts
as frozensets of names / :class:`Definition` sites, and use/def sets
recomputed per call.  They exist for two reasons:

* **ground truth** -- the property tests cross-check the bitset engine
  against these implementations bit-for-bit on randomized CFGs;
* **perf trajectory** -- :mod:`repro.perf.bench` times them against the
  optimised implementations on the synthetic industrial application and
  reports the speedup in ``BENCH_perf.json``.

Nothing in the production pipeline should import this module for analysis
results; use :mod:`repro.analysis.liveness` / :mod:`repro.analysis.reaching`.
"""

from __future__ import annotations

from collections import deque

from .dataflow import DataflowProblem, DataflowResult, Direction, set_union
from ..cfg.graph import ControlFlowGraph
from ..minic.symbols import FunctionSymbolTable
from .liveness import LivenessResult
from .ranges import RangeAnalysisResult, RangeAnalyzer, RangeEnvironment
from .reaching import Definition, ReachingResult
from .usedef import block_condition_uses, block_use_def, statement_use_def


def solve_reference(problem: DataflowProblem) -> DataflowResult:
    """The original textbook worklist solver (list ``pop(0)``, double init).

    Kept byte-for-byte equivalent to the seed implementation so the
    benchmark's "versus seed" comparison stays honest.
    """
    nodes = list(problem.nodes)
    if problem.direction is Direction.FORWARD:
        flow_pred: dict = {n: [] for n in nodes}
        for node in nodes:
            for succ in problem.successors(node):
                flow_pred.setdefault(succ, []).append(node)
        flow_succ = {n: list(problem.successors(n)) for n in nodes}
    else:
        flow_pred = {n: list(problem.successors(n)) for n in nodes}
        flow_succ = {n: [] for n in nodes}
        for node in nodes:
            for succ in problem.successors(node):
                flow_succ.setdefault(succ, []).append(node)

    in_facts: dict = {}
    out_facts: dict = {}
    boundary = set(problem.boundary_nodes)
    for node in nodes:
        in_facts[node] = problem.boundary if node in boundary else problem.initial
        out_facts[node] = problem.transfer(node, in_facts[node])

    worklist = list(nodes)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > problem.max_iterations:
            raise RuntimeError(
                f"dataflow analysis did not converge after {problem.max_iterations} steps"
            )
        node = worklist.pop(0)
        incoming = [out_facts[p] for p in flow_pred.get(node, ()) if p in out_facts]
        if node in boundary:
            new_in = problem.boundary if not incoming else problem.join(
                incoming + [problem.boundary]
            )
        elif incoming:
            new_in = problem.join(incoming)
        else:
            new_in = problem.initial
        new_out = problem.transfer(node, new_in)
        changed = not problem.equals(new_out, out_facts[node]) or not problem.equals(
            new_in, in_facts[node]
        )
        in_facts[node] = new_in
        out_facts[node] = new_out
        if changed:
            for succ in flow_succ.get(node, ()):
                if succ not in worklist:
                    worklist.append(succ)
    return DataflowResult(in_facts=in_facts, out_facts=out_facts, iterations=iterations)


def liveness_problem(cfg: ControlFlowGraph) -> DataflowProblem:
    """The liveness instance as a generic frozenset dataflow problem.

    ``predecessors``/``order`` come from the CFG's cached accessors; the
    seed solver (:func:`solve_reference`) never reads those fields, so the
    benchmark comparison is unaffected, while the engineered solver uses
    them to skip map inversion and seed the worklist in flow order.
    """
    use_defs = {block.block_id: block_use_def(block) for block in cfg.blocks()}
    successor_map = cfg.successor_map()
    predecessor_map = cfg.predecessor_map()

    def successors(block_id: int) -> tuple[int, ...]:
        return successor_map[block_id]

    def transfer(block_id: int, live_out: frozenset[str]) -> frozenset[str]:
        use_def = use_defs[block_id]
        return use_def.uses | (live_out - use_def.defs)

    return DataflowProblem(
        nodes=[block.block_id for block in cfg.blocks()],
        successors=successors,
        direction=Direction.BACKWARD,
        boundary_nodes=[cfg.exit.block_id],
        boundary=frozenset(),
        initial=frozenset(),
        join=set_union,
        transfer=transfer,
        predecessors=lambda block_id: predecessor_map[block_id],
        order=cfg.backward_reverse_postorder(),
    )


def block_liveness_reference(cfg: ControlFlowGraph) -> LivenessResult:
    """Seed implementation of :func:`repro.analysis.liveness.block_liveness`."""
    result = solve_reference(liveness_problem(cfg))
    # for a backward problem: in_facts = fact flowing into the node in flow
    # order = live-out; out_facts = transfer result = live-in
    live_out = {node: result.in_facts[node] for node in result.in_facts}
    live_in = {node: result.out_facts[node] for node in result.out_facts}
    return LivenessResult(live_in=live_in, live_out=live_out)


def reaching_problem(cfg: ControlFlowGraph) -> tuple[DataflowProblem, list[Definition]]:
    """The reaching-definitions instance as a generic frozenset problem."""
    definitions: list[Definition] = []
    defs_in_block: dict[int, list[Definition]] = {}
    for block in cfg.blocks():
        for index, stmt in enumerate(block.statements):
            for variable in statement_use_def(stmt).defs:
                definition = Definition(variable, block.block_id, index)
                definitions.append(definition)
                defs_in_block.setdefault(block.block_id, []).append(definition)

    defs_by_variable: dict[str, set[Definition]] = {}
    for definition in definitions:
        defs_by_variable.setdefault(definition.variable, set()).add(definition)

    gen_kill: dict[int, tuple[frozenset[Definition], frozenset[Definition]]] = {}
    for block in cfg.blocks():
        gen: dict[str, Definition] = {}
        kill: set[Definition] = set()
        for definition in defs_in_block.get(block.block_id, ()):  # in statement order
            kill |= defs_by_variable[definition.variable]
            gen[definition.variable] = definition  # later defs shadow earlier ones
        gen_kill[block.block_id] = (frozenset(gen.values()), frozenset(kill))

    successor_map = cfg.successor_map()
    predecessor_map = cfg.predecessor_map()

    def successors(block_id: int) -> tuple[int, ...]:
        return successor_map[block_id]

    def transfer(block_id: int, reach_in: frozenset[Definition]) -> frozenset[Definition]:
        gen, kill = gen_kill[block_id]
        return gen | (reach_in - kill)

    problem = DataflowProblem(
        nodes=[block.block_id for block in cfg.blocks()],
        successors=successors,
        direction=Direction.FORWARD,
        boundary_nodes=[cfg.entry.block_id],
        boundary=frozenset(),
        initial=frozenset(),
        join=set_union,
        transfer=transfer,
        predecessors=lambda block_id: predecessor_map[block_id],
        order=cfg.reverse_postorder(),
    )
    return problem, definitions


def reaching_definitions_reference(cfg: ControlFlowGraph) -> ReachingResult:
    """Seed implementation of :func:`repro.analysis.reaching.reaching_definitions`."""
    problem, definitions = reaching_problem(cfg)
    result = solve_reference(problem)
    reach_in = dict(result.in_facts)
    reach_out = dict(result.out_facts)

    # def-use chains by walking each block with its reach-in set
    uses: dict[Definition, set[tuple[int, int]]] = {d: set() for d in definitions}
    for block in cfg.blocks():
        current: dict[str, set[Definition]] = {}
        for definition in reach_in[block.block_id]:
            current.setdefault(definition.variable, set()).add(definition)
        for index, stmt in enumerate(block.statements):
            use_def = statement_use_def(stmt)
            for variable in use_def.uses:
                for definition in current.get(variable, ()):
                    uses[definition].add((block.block_id, index))
            for variable in use_def.defs:
                current[variable] = {Definition(variable, block.block_id, index)}
        for variable in block_condition_uses(block):
            for definition in current.get(variable, ()):
                uses[definition].add((block.block_id, -1))

    return ReachingResult(
        reach_in=reach_in, reach_out=reach_out, definitions=definitions, uses=uses
    )


# ---------------------------------------------------------------------- #
# interval (value-range) analysis
# ---------------------------------------------------------------------- #
class _ReferenceRangeAnalyzer(RangeAnalyzer):
    """Seed-era interval fixpoint: entry-seeded FIFO over ``out_edges``.

    The transfer functions, joins and widening are shared with the production
    :class:`~repro.analysis.ranges.RangeAnalyzer`; only the iteration
    strategy is the original one (worklist seeded with the entry block only,
    adjacency re-derived from the edge objects on every visit).
    """

    def run(self) -> RangeAnalysisResult:
        names = set(self._defaults)
        entry_env: dict[int, RangeEnvironment] = {}
        initial = RangeEnvironment(ranges=dict(self._defaults))
        entry_env[self._cfg.entry.block_id] = initial

        update_counts: dict[tuple[int, str], int] = {}
        worklist = deque([self._cfg.entry.block_id])
        pending = {self._cfg.entry.block_id}
        out_env: dict[int, RangeEnvironment] = {}
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > 50 * max(1, len(self._cfg)):
                break  # widening guarantees this is unreachable, but be safe
            block_id = worklist.popleft()
            pending.discard(block_id)
            env_in = entry_env.get(block_id)
            if env_in is None:
                continue
            env_out = self._transfer(block_id, env_in.copy())
            if block_id in out_env and out_env[block_id] == env_out:
                continue
            out_env[block_id] = env_out
            for edge in self._cfg.out_edges(block_id):
                successor = edge.target
                incoming = env_out
                if successor in entry_env:
                    joined = entry_env[successor].join(incoming, names, self._defaults)
                    joined = self._widen(successor, entry_env[successor], joined, update_counts)
                    if joined == entry_env[successor]:
                        continue
                    entry_env[successor] = joined
                else:
                    entry_env[successor] = incoming.copy()
                if successor not in pending:
                    pending.add(successor)
                    worklist.append(successor)

        global_ranges = self._global_ranges(names)
        return RangeAnalysisResult(global_ranges=global_ranges, block_entry=entry_env)


def analyze_ranges_reference(
    cfg: ControlFlowGraph, table: FunctionSymbolTable
) -> RangeAnalysisResult:
    """Seed implementation of :func:`repro.analysis.ranges.analyze_ranges`."""
    return _ReferenceRangeAnalyzer(cfg, table).run()
