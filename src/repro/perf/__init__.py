"""Performance instrumentation and benchmarking subsystem.

:mod:`repro.perf.instrument` provides counters, timers, a ``@profiled``
decorator and a JSON report writer; :mod:`repro.perf.bench` runs the
dataflow hot paths on the synthetic industrial application and writes the
``BENCH_perf.json`` trajectory file (also reachable via
``python -m repro.cli bench``).
"""

from __future__ import annotations

from .instrument import (
    HISTOGRAM_BOUNDS,
    PerfRegistry,
    TimerStat,
    active_registry,
    add,
    global_registry,
    profiled,
    record_time,
    report,
    reset,
    timed,
    using_registry,
    write_report,
)

__all__ = [
    "HISTOGRAM_BOUNDS",
    "PerfRegistry",
    "TimerStat",
    "active_registry",
    "add",
    "global_registry",
    "profiled",
    "record_time",
    "report",
    "reset",
    "timed",
    "using_registry",
    "write_report",
]
