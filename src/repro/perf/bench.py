"""Pipeline hot-path benchmark: optimised engines versus the seed reference.

Times the whole-pipeline trajectory on the synthetic applications:

* **dataflow** -- live-variable analysis, reaching definitions and the
  interval analysis on the industrial application (the stand-in for the
  paper's ~857-block TargetLink function), each with the seed reference
  implementation preserved in :mod:`repro.analysis.reference` versus the
  production engine, cross-checked for exact result equality;
* **partitioning** -- the paper and general partitioners on the industrial
  application;
* **model checking** -- building the optimised model of the industrial
  application, plus a deterministic batch of block-reachability queries on
  the *small* synthetic application (deep queries on the 857-block function
  take minutes, which is a workload for the project scheduler, not for a
  tier-1 benchmark);
* **call-graph scheduling** (since ``repro-bench-perf/3``) -- the project
  scheduler on the call-chain workload: flat (one wave, PR 2 behaviour)
  versus interprocedural (dependency waves + callee summary reuse), plus a
  cold-write/warm-hit pass over the persistent result cache;
* **query engine** (since ``repro-bench-perf/4``) -- the planned/budgeted/
  sliced query pipeline of :mod:`repro.mc.query`: the same block-goal batch
  on the small application with and without cone-of-influence slicing
  (identical verdicts required), and a *budgeted deep-query batch* on the
  857-block industrial function -- the workload that used to take minutes
  per query -- where every query must complete within its
  :class:`~repro.mc.query.QueryBudget` (answered or explicitly
  budget-exhausted, never unbounded);
* **resilience** (since ``repro-bench-perf/5``) -- the fault-injection
  layer of :mod:`repro.resilience`: a clean scheduler run versus the same
  run with an armed-but-never-firing fault plan (the clean-path overhead of
  the injection hooks, required identical bounds), and a chaos run with a
  10% ``job.execute`` / ``mc.solve`` fault rate that must complete with
  every bound at least as large as the fault-free bound;
* **service** (since ``repro-bench-perf/6``) -- the analysis daemon of
  :mod:`repro.service` on an in-process ephemeral-port server: sustained
  request throughput and warm-hit latency (deduplicated re-submission,
  result fetch, ETag 304 -- all content-addressed lookups that must stay
  in single-digit milliseconds), and the cold-versus-incremental session
  comparison (an edited project re-analyses only its invalidation
  frontier, with the served payloads required identical to a cold run of
  the edited sources);
* **query store** (since ``repro-bench-perf/8``) -- the persistent
  model-checking memoisation of :mod:`repro.mc.store`: the budgeted
  industrial deep batch cold (populating a fresh store) versus warm (a
  fresh engine over the same store), where the warm run must answer
  *every* query from disk with **zero** solver runs and bit-identical
  verdicts/witnesses, plus a cross-function pass on a renamed clone of
  the small application (content fingerprints ignore function names, so
  the clone hits the original's entries);
* **static prefilter** (since ``repro-bench-perf/9``) -- the sound static
  analysis of :mod:`repro.sa`: the cold industrial deep batch with and
  without the interval-feasibility prefilter, required to return
  bit-identical verdicts/witnesses while answering some goals with zero
  solver work (``mc.query.static_prunes``), plus the cold pipeline over
  the multi-function workload with and without static analysis --
  bit-identical bounds gated, the overhead percentage reported only;
* **observability** (since ``repro-bench-perf/7``) -- the tracing and
  metrics layer of :mod:`repro.obs`: a plain scheduler run versus the same
  run under a *disabled* ambient tracer (the tracing-off overhead of the
  span call sites, required under 2% with bit-identical payloads) and
  under a full recording tracer (payloads still identical, spans forming
  one connected tree under a single trace id), plus the ``GET
  /v1/metrics`` Prometheus scrape latency on an in-process server.

The report is written as ``BENCH_perf.json`` so that future PRs have a perf
trajectory to compare against.  Entry points:

* ``python -m repro.cli bench``
* ``python benchmarks/run_perf.py``
* the ``benchmarks/test_bench_perf.py`` pytest benchmark (marker ``perf``)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Callable

from .. import perf

#: default output location: the repository root (two levels above ``src/``)
DEFAULT_OUTPUT = "BENCH_perf.json"

#: report schema tag for downstream tooling
BENCH_SCHEMA = "repro-bench-perf/9"

#: block-reachability queries per model-checking timing batch
MODELCHECK_QUERY_COUNT = 12

#: queries in the sliced-vs-unsliced small-app batch (mcquery section)
MCQUERY_SMALL_QUERIES = 24

#: deep queries in the budgeted industrial batch (mcquery section)
MCQUERY_DEEP_QUERIES = 9

#: per-query budget of the industrial deep batch; tight enough to keep the
#: batch tier-1 sized, generous enough that sliced queries normally answer
MCQUERY_DEEP_BUDGET = {
    "max_steps": 20_000,
    "max_solver_calls": 400,
    "deadline_ms": 1_500,
}


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run *fn* *repeats* times; return (best wall-clock seconds, last result)."""
    best = float("inf")
    result: Any = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _block_targets(model, cfg, count: int) -> list[int]:
    """*count* block-goal targets spread evenly over *model*'s blocks."""
    blocks = sorted(
        block.block_id
        for block in cfg.real_blocks()
        if block.block_id in model.translation.block_location
    )
    step = max(1, len(blocks) // count)
    picked = blocks[::step][:count]
    if blocks and picked and picked[-1] != blocks[-1]:
        picked[-1] = blocks[-1]  # always include the deepest block
    return picked


def _liveness_equal(reference, optimised) -> bool:
    return (
        reference.live_in == optimised.live_in
        and reference.live_out == optimised.live_out
    )


def _reaching_equal(reference, optimised) -> bool:
    return (
        reference.reach_in == optimised.reach_in
        and reference.reach_out == optimised.reach_out
        and set(reference.definitions) == set(optimised.definitions)
        and reference.uses == optimised.uses
    )


def _bench_pipeline_stages(
    app, small_app, repeats: int
) -> tuple[dict[str, float], dict[str, Any], Any, Any]:
    """Time partitioning and model checking; return (timings, details, models).

    Partitioning runs on the industrial application.  The optimised model is
    built for the industrial application too, but the reachability-query
    batch runs against the small synthetic application: a single deep query
    on the 857-block function takes minutes and belongs in a soak run, not
    in the tier-1 trajectory.
    """
    from ..mc import EngineKind, ModelChecker, ModelCheckerOptions
    from ..optim.pipeline import OptimizationConfig, build_optimized_model
    from ..partition.general import GeneralPartitionOptions, GeneralPartitioner
    from ..partition.partitioner import PaperPartitioner

    function = app.analyzed.program.function(app.function_name)
    paper_s, paper_partition = _best_of(
        repeats, lambda: PaperPartitioner(4).partition(function, app.cfg)
    )
    general_s, general_partition = _best_of(
        repeats,
        lambda: GeneralPartitioner(4, GeneralPartitionOptions()).partition(
            function, app.cfg
        ),
    )

    # optimised-model construction on the industrial app (timed once: the
    # optimisation pipeline itself re-runs the dataflow analyses timed above)
    build_industrial_s, industrial_model = _best_of(
        1,
        lambda: build_optimized_model(
            app.analyzed, app.function_name, OptimizationConfig.cfg_preserving()
        ),
    )

    build_small_s, small_model = _best_of(
        repeats,
        lambda: build_optimized_model(
            small_app.analyzed,
            small_app.function_name,
            OptimizationConfig.cfg_preserving(),
        ),
    )
    targets = sorted(small_model.translation.block_location)[:MODELCHECK_QUERY_COUNT]

    def query_batch() -> dict[str, int]:
        # a fresh checker per run: the facade memoises query results since
        # the query-engine refactor, and this metric is the *cold* batch
        checker = ModelChecker(
            small_model.translation, ModelCheckerOptions(engine=EngineKind.AUTO)
        )
        verdicts: dict[str, int] = {}
        for block_id in targets:
            verdict = checker.find_test_data_for_block(block_id).verdict.value
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        return verdicts

    queries_s, verdicts = _best_of(repeats, query_batch)

    timings = {
        "partition_paper": paper_s,
        "partition_general": general_s,
        "modelcheck_build_industrial": build_industrial_s,
        "modelcheck_build_small": build_small_s,
        "modelcheck_queries_small": queries_s,
    }
    details = {
        "partition_path_bound": 4,
        "partition_segments_paper": len(paper_partition.segments),
        "partition_segments_general": len(general_partition.segments),
        "modelcheck_queries": len(targets),
        "modelcheck_verdicts": verdicts,
        "modelcheck_state_bits_industrial": {
            "optimised": industrial_model.state_bits,
            "unoptimised": industrial_model.unoptimized_state_bits,
        },
        "modelcheck_state_bits_small": {
            "optimised": small_model.state_bits,
            "unoptimised": small_model.unoptimized_state_bits,
        },
        "small_app_blocks": small_app.basic_blocks,
        "small_app_seed": small_app.seed,
    }
    return timings, details, industrial_model, small_model


def _bench_mc_query(
    app, small_app, industrial_model, small_model, repeats: int
) -> tuple[dict[str, float], dict[str, Any]]:
    """Time the planned/budgeted/sliced query engine (mcquery section).

    The small-app batch runs the *same* block-reachability goals with and
    without cone-of-influence slicing (fresh engines per run, so no memo
    cross-talk) and requires identical verdicts.  The industrial batch runs
    deep block queries -- minutes each on the unsliced model -- under a
    tight :class:`~repro.mc.query.QueryBudget`; a single unsliced probe
    with the same budget documents the "before" behaviour (the budget trips
    instead of the query hanging).
    """
    from ..mc.property import GoalBuilder
    from ..mc.query import QueryBudget, QueryEngine, QueryEngineOptions

    # --- small app: identical goal batch, sliced vs unsliced --------------- #
    small_targets = _block_targets(small_model, small_app.cfg, MCQUERY_SMALL_QUERIES)
    small_builder = GoalBuilder(
        block_location=small_model.translation.block_location
    )

    def small_batch(slicing: bool):
        engine = QueryEngine(
            small_model.translation,
            QueryEngineOptions(budget=QueryBudget(), slicing=slicing),
        )
        verdicts: dict[str, int] = {}
        for block_id in small_targets:
            verdict = engine.check(small_builder.reach_block(block_id)).verdict.value
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        return verdicts, engine.stats.as_dict()

    unsliced_s, (unsliced_verdicts, _) = _best_of(repeats, lambda: small_batch(False))
    sliced_s, (sliced_verdicts, sliced_stats) = _best_of(
        repeats, lambda: small_batch(True)
    )

    # --- industrial app: budgeted deep-query batch ------------------------- #
    budget = QueryBudget(**MCQUERY_DEEP_BUDGET)
    deep_targets = _block_targets(industrial_model, app.cfg, MCQUERY_DEEP_QUERIES)
    deep_builder = GoalBuilder(
        block_location=industrial_model.translation.block_location
    )

    def deep_batch():
        engine = QueryEngine(
            industrial_model.translation,
            QueryEngineOptions(budget=budget, slicing=True),
        )
        verdicts: dict[str, int] = {}
        worst = 0.0
        for block_id in deep_targets:
            started = time.perf_counter()
            verdict = engine.check(deep_builder.reach_block(block_id)).verdict.value
            worst = max(worst, time.perf_counter() - started)
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        return verdicts, engine.stats.as_dict(), worst

    deep_s, (deep_verdicts, deep_stats, deep_worst) = _best_of(1, deep_batch)

    # the "before" datapoint: the same budget on the unsliced model trips
    # instead of running for minutes
    probe_engine = QueryEngine(
        industrial_model.translation,
        QueryEngineOptions(budget=budget, slicing=False),
    )
    probe_s, probe = _best_of(
        1, lambda: probe_engine.check(deep_builder.reach_block(deep_targets[-1]))
    )

    timings = {
        "mcquery_small_unsliced": unsliced_s,
        "mcquery_small_sliced": sliced_s,
        "mcquery_deep_budgeted": deep_s,
        "mcquery_deep_unsliced_probe": probe_s,
    }
    details = {
        "small_queries": len(small_targets),
        "small_verdicts_sliced": sliced_verdicts,
        "small_verdicts_unsliced": unsliced_verdicts,
        "small_verdicts_match": sliced_verdicts == unsliced_verdicts,
        "small_sliced_stats": sliced_stats,
        "deep_queries": len(deep_targets),
        "deep_budget": dict(MCQUERY_DEEP_BUDGET),
        "deep_verdicts": deep_verdicts,
        "deep_stats": deep_stats,
        "deep_budget_exhausted": deep_stats["budget_exhausted"],
        "deep_worst_query_seconds": deep_worst,
        "deep_unsliced_probe_verdict": probe.verdict.value,
    }
    return timings, details


def _bench_query_store(
    app, small_app, industrial_model, small_model
) -> tuple[dict[str, float], dict[str, Any]]:
    """Time the persistent query store (querystore section).

    The cold industrial batch populates a fresh store; the warm batch runs
    the same goals on a *fresh engine and fresh store handle* over the same
    directory, so everything it knows came through the replay-validated
    on-disk entries.  The warm run is the tentpole gate: every query must
    be a store hit, the portfolio must execute **zero** solver runs, and
    verdicts plus witness payloads must be bit-identical to the cold run.
    The cross-function pass re-runs the small-app batch on a renamed clone
    of the same source -- the content fingerprints ignore function names,
    so the clone's queries are answered by the original's entries.
    """
    import tempfile

    from ..mc.property import GoalBuilder
    from ..mc.query import QueryBudget, QueryEngine, QueryEngineOptions
    from ..mc.store import QueryStore, using_query_store
    from ..minic import parse_and_analyze
    from ..optim.pipeline import OptimizationConfig, build_optimized_model
    from ..project.cache import ResultCache

    budget = QueryBudget(**MCQUERY_DEEP_BUDGET)
    deep_targets = _block_targets(industrial_model, app.cfg, MCQUERY_DEEP_QUERIES)
    deep_builder = GoalBuilder(
        block_location=industrial_model.translation.block_location
    )

    def deep_batch(store):
        engine = QueryEngine(
            industrial_model.translation,
            QueryEngineOptions(budget=budget, slicing=True),
        )
        results = {}
        with using_query_store(store):
            for block_id in deep_targets:
                results[block_id] = engine.check(
                    deep_builder.reach_block(block_id)
                )
        return engine.stats.as_dict(), results

    def identical(cold_results, warm_results) -> bool:
        for block_id, cold in cold_results.items():
            warm = warm_results[block_id]
            if warm.verdict is not cold.verdict:
                return False
            if (cold.counterexample is None) != (warm.counterexample is None):
                return False
            if cold.counterexample is not None and (
                warm.counterexample.inputs != cold.counterexample.inputs
                or warm.counterexample.initial_state
                != cold.counterexample.initial_state
            ):
                return False
        return True

    with tempfile.TemporaryDirectory() as tmp:
        cold_s, (cold_stats, cold_results) = _best_of(
            1, lambda: deep_batch(QueryStore(ResultCache(tmp)))
        )
        warm_s, (warm_stats, warm_results) = _best_of(
            1, lambda: deep_batch(QueryStore(ResultCache(tmp)))
        )
        warm_identical = identical(cold_results, warm_results)

    # --- cross-function transfer: a renamed clone of the small app --------- #
    clone_name = small_app.function_name + "_clone"
    clone_model = build_optimized_model(
        parse_and_analyze(
            small_app.source.replace(
                f"void {small_app.function_name}", f"void {clone_name}", 1
            )
        ),
        clone_name,
        OptimizationConfig.cfg_preserving(),
    )

    def small_batch(model, cfg, store):
        engine = QueryEngine(
            model.translation, QueryEngineOptions(budget=QueryBudget())
        )
        builder = GoalBuilder(block_location=model.translation.block_location)
        with using_query_store(store):
            for block_id in _block_targets(model, cfg, MCQUERY_SMALL_QUERIES):
                engine.check(builder.reach_block(block_id))
        return engine.stats.as_dict()

    with tempfile.TemporaryDirectory() as tmp:
        seed_s, _ = _best_of(
            1,
            lambda: small_batch(small_model, small_app.cfg, QueryStore(ResultCache(tmp))),
        )
        clone_s, clone_stats = _best_of(
            1,
            lambda: small_batch(clone_model, small_app.cfg, QueryStore(ResultCache(tmp))),
        )

    def hit_rate(stats: dict[str, Any]) -> float:
        return stats["store_hits"] / max(stats["planned"], 1)

    timings = {
        "querystore_cold_deep": cold_s,
        "querystore_warm_deep": warm_s,
        "querystore_cross_function": clone_s,
    }
    details = {
        "deep_queries": len(deep_targets),
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
        "cross_run_hit_rate": hit_rate(warm_stats),
        "warm_zero_solver_runs": (
            warm_stats["solver_runs"] == 0
            and warm_stats["store_hits"] == warm_stats["planned"]
            and warm_stats["replay_failures"] == 0
        ),
        "warm_identical": warm_identical,
        "cross_function_stats": clone_stats,
        "cross_function_hit_rate": hit_rate(clone_stats),
    }
    return timings, details


def _bench_sa(
    app, industrial_model
) -> tuple[dict[str, float], dict[str, Any]]:
    """Time the static prefilter (sa section, since ``repro-bench-perf/9``).

    The cold industrial deep-query batch runs twice against fresh engines
    and no query store: once without the prefilter and once with the
    :class:`~repro.sa.feasibility.StaticPrefilter` of the industrial
    function installed.  The prefiltered run must return bit-identical
    verdicts and witnesses while answering some goals statically
    (``static_prunes > 0``) and therefore executing strictly fewer solver
    runs -- the sound-for-free gate of the sa arc.  Two costs are
    reported, neither gated: the raw interval fixpoint over the 857-block
    industrial CFG (``sa_prefilter_analysis``), and the end-to-end
    pipeline overhead of leaving static analysis on -- the multi-function
    workload analysed cold with and without it, where the pass should
    stay in the low single-digit percents (bounds must be bit-identical
    either way; that part *is* wired into ``results_match``).
    """
    from ..mc.property import GoalBuilder
    from ..mc.query import QueryBudget, QueryEngine, QueryEngineOptions
    from ..sa import analyze_feasibility
    from ..sa.feasibility import StaticPrefilter

    budget = QueryBudget(**MCQUERY_DEEP_BUDGET)
    deep_targets = _block_targets(industrial_model, app.cfg, MCQUERY_DEEP_QUERIES)
    deep_builder = GoalBuilder(
        block_location=industrial_model.translation.block_location
    )

    prefilter_s, feasibility = _best_of(
        1, lambda: analyze_feasibility(app.cfg, app.analyzed.table(app.function_name))
    )
    prefilter = StaticPrefilter(feasibility)

    def deep_batch(active: StaticPrefilter | None):
        engine = QueryEngine(
            industrial_model.translation,
            QueryEngineOptions(budget=budget, slicing=True, prefilter=active),
        )
        results = {}
        for block_id in deep_targets:
            results[block_id] = engine.check(deep_builder.reach_block(block_id))
        return engine.stats.as_dict(), results

    off_s, (off_stats, off_results) = _best_of(1, lambda: deep_batch(None))
    on_s, (on_stats, on_results) = _best_of(1, lambda: deep_batch(prefilter))

    def identical() -> bool:
        for block_id, off in off_results.items():
            on = on_results[block_id]
            if on.verdict is not off.verdict:
                return False
            if (off.counterexample is None) != (on.counterexample is None):
                return False
            if off.counterexample is not None and (
                on.counterexample.inputs != off.counterexample.inputs
                or on.counterexample.initial_state
                != off.counterexample.initial_state
            ):
                return False
        return True

    # end-to-end overhead: the full pipeline over the multi-function
    # workload, cold, with and without static analysis.  The per-function
    # sa pass is one interval fixpoint on a tiny CFG, so this is where
    # the "low single-digit percents" claim actually lives.
    from ..pipeline.analyzer import AnalyzerConfig, WcetAnalyzer
    from ..minic import parse_and_analyze
    from ..testgen.hybrid import HybridOptions
    from ..workloads.multi import generate_multi_function_workload

    workload = generate_multi_function_workload(seed=2005, functions=3, units=2)
    analysed_units = [parse_and_analyze(s) for s in workload.sources.values()]

    def pipeline_batch(sa_on: bool) -> dict[str, int]:
        config = AnalyzerConfig(
            path_bound=2,
            hybrid=HybridOptions(
                plateau_patterns=20, max_random_vectors=60, seed=1
            ),
            extra_random_vectors=5,
            exhaustive_limit=None,
            static_analysis=sa_on,
        )
        bounds: dict[str, int] = {}
        for analyzed in analysed_units:
            for function in analyzed.program.functions:
                if function.body is None:
                    continue
                report = WcetAnalyzer(analyzed, function.name, config).analyze()
                bounds[function.name] = report.wcet_bound_cycles
        return bounds

    pipeline_off_s, bounds_off = _best_of(1, lambda: pipeline_batch(False))
    pipeline_on_s, bounds_on = _best_of(1, lambda: pipeline_batch(True))
    pipeline_overhead = (
        (pipeline_on_s - pipeline_off_s) / max(pipeline_off_s, 1e-9) * 100.0
    )

    timings = {
        "sa_prefilter_analysis": prefilter_s,
        "sa_deep_prefilter_off": off_s,
        "sa_deep_prefilter_on": on_s,
        "sa_pipeline_off": pipeline_off_s,
        "sa_pipeline_on": pipeline_on_s,
    }
    details = {
        "deep_queries": len(deep_targets),
        "edges_pruned": len(feasibility.infeasible_edges),
        "unreachable_blocks": len(feasibility.unreachable_blocks),
        "stats_prefilter_off": off_stats,
        "stats_prefilter_on": on_stats,
        "static_prunes": on_stats["static_prunes"],
        "solver_runs_off": off_stats["solver_runs"],
        "solver_runs_on": on_stats["solver_runs"],
        "solver_runs_reduced": on_stats["solver_runs"] < off_stats["solver_runs"],
        "verdicts_identical": identical(),
        "pipeline_bounds_identical": bounds_on == bounds_off,
        "pipeline_overhead_percent": pipeline_overhead,
        "prefilter_vs_deep_batch_percent": prefilter_s / max(off_s, 1e-9) * 100.0,
    }
    return timings, details


def _bench_callgraph_scheduling(seed: int) -> tuple[dict[str, float], dict[str, Any]]:
    """Time call-graph scheduling on the call-chain workload.

    Single-shot timings (the scheduler itself amortises its costs over the
    per-function pipeline runs): a flat one-wave batch, the interprocedural
    multi-wave batch with callee summary reuse, then a cold cache-filling
    pass and a warm fully-cached pass.  The workload stays tiny and the
    exhaustive end-to-end comparison is disabled so the section remains a
    tier-1-sized measurement.
    """
    import tempfile

    from ..pipeline.analyzer import AnalyzerConfig
    from ..project import Project, ProjectScheduler, ResultCache
    from ..testgen.hybrid import HybridOptions
    from ..workloads.multi import generate_call_chain_workload

    workload = generate_call_chain_workload(seed=seed)
    project = Project.from_sources(workload.sources)

    def config() -> AnalyzerConfig:
        return AnalyzerConfig(
            path_bound=2,
            hybrid=HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1),
            extra_random_vectors=5,
            exhaustive_limit=None,
        )

    flat_s, flat = _best_of(
        1,
        lambda: ProjectScheduler(
            project, config=config(), interprocedural=False
        ).run(),
    )
    interproc_s, interproc = _best_of(
        1, lambda: ProjectScheduler(project, config=config()).run()
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        cold_s, _ = _best_of(
            1,
            lambda: ProjectScheduler(
                project, config=config(), cache=ResultCache(cache_dir)
            ).run(),
        )
        warm_s, warm = _best_of(
            1,
            lambda: ProjectScheduler(
                project, config=config(), cache=ResultCache(cache_dir)
            ).run(),
        )

    bounds = {
        summary.function: {
            "flat": next(
                s.wcet_bound_cycles
                for s in flat.functions
                if (s.unit, s.function) == (summary.unit, summary.function)
            ),
            "interprocedural": summary.wcet_bound_cycles,
        }
        for summary in interproc.functions
        if summary.summarised_call_sites
    }
    timings = {
        "callgraph_flat": flat_s,
        "callgraph_interprocedural": interproc_s,
        "callgraph_cache_cold": cold_s,
        "callgraph_cache_warm": warm_s,
    }
    details = {
        "workload_seed": workload.seed,
        "functions": len(interproc.functions),
        "waves": interproc.waves,
        "summary_reuse_calls": interproc.summary_reuse_calls,
        "cache_warm_hits": warm.cache_hits,
        "cache_warm_misses": warm.cache_misses,
        "bounds_with_summaries": bounds,
    }
    return timings, details


def _bench_resilience(seed: int) -> tuple[dict[str, float], dict[str, Any]]:
    """Time the fault-injection layer (resilience section).

    Four scheduler runs on the call-chain workload:

    * *clean* -- no fault plan at all;
    * *empty plan* -- ``FaultPlan()`` exactly as the CLI builds one when no
      ``--inject-fault`` flag is given: this is the production fault-free
      path, and its delta against *clean* is the clean-path overhead that
      must stay under 2%;
    * *armed plan* -- specs on ``mc.solve`` and ``interp.step`` at a hit
      count that never arrives, so the injector and ambient context are
      live on every hot path but nothing fires; must be bit-identical to
      the clean run;
    * *chaos* -- a 10% ``job.execute``/``mc.solve`` fault rate; must
      complete with every bound >= its fault-free counterpart.
    """
    from ..pipeline.analyzer import AnalyzerConfig
    from ..project import Project, ProjectScheduler
    from ..resilience import FaultPlan, FaultSpec
    from ..testgen.hybrid import HybridOptions
    from ..workloads.multi import generate_call_chain_workload

    workload = generate_call_chain_workload(seed=seed)
    project = Project.from_sources(workload.sources)

    def config() -> AnalyzerConfig:
        return AnalyzerConfig(
            path_bound=2,
            hybrid=HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1),
            extra_random_vectors=5,
            exhaustive_limit=None,
        )

    def run(plan: FaultPlan | None):
        return ProjectScheduler(
            project, config=config(), fault_plan=plan
        ).run()

    armed_plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec.parse("mc.solve:raise@1000000000"),
            FaultSpec.parse("interp.step:raise@1000000000"),
        ),
    )
    chaos_plan = FaultPlan.from_args(
        ["job.execute:rate=0.1", "mc.solve:rate=0.1"], seed=seed
    )

    clean_s, clean = _best_of(3, lambda: run(None))
    empty_s, empty = _best_of(3, lambda: run(FaultPlan(seed=seed)))
    armed_s, armed = _best_of(2, lambda: run(armed_plan))
    chaos_s, chaos = _best_of(1, lambda: run(chaos_plan))

    def payloads(report) -> list[dict]:
        return [summary.result_payload() for summary in report.functions]

    clean_bounds = {
        (s.unit, s.function): s.wcet_bound_cycles for s in clean.functions
    }
    bound_safety = all(
        s.wcet_bound_cycles >= clean_bounds[(s.unit, s.function)]
        for s in chaos.functions
        if s.wcet_bound_cycles is not None
    )
    overhead_percent = (empty_s - clean_s) / max(clean_s, 1e-9) * 100.0
    armed_overhead_percent = (armed_s - clean_s) / max(clean_s, 1e-9) * 100.0

    timings = {
        "resilience_clean": clean_s,
        "resilience_empty_plan": empty_s,
        "resilience_armed_plan": armed_s,
        "resilience_chaos": chaos_s,
    }
    details = {
        "workload_seed": workload.seed,
        "functions": len(clean.functions),
        "armed_plan": armed_plan.describe(),
        "chaos_plan": chaos_plan.describe(),
        "clean_identical_under_empty_plan": payloads(clean) == payloads(empty),
        "clean_identical_under_armed_plan": payloads(clean) == payloads(armed),
        "overhead_percent": overhead_percent,
        "overhead_within_2_percent": overhead_percent < 2.0,
        "armed_overhead_percent": armed_overhead_percent,
        "chaos_completed": all(
            s.wcet_bound_cycles is not None for s in chaos.functions
        ),
        "chaos_quarantined": chaos.quarantined_functions,
        "chaos_degraded": chaos.degraded_functions,
        "chaos_retries": chaos.total_retries,
        "bound_safety": bound_safety,
    }
    return timings, details


#: warm-hit requests per latency batch (service section)
SERVICE_WARM_REQUESTS = 40


def _bench_service(seed: int) -> tuple[dict[str, float], dict[str, Any]]:
    """Time the analysis service (service section).

    One in-process :class:`~repro.service.AnalysisServer` on an ephemeral
    loopback port with a fresh shared cache, driven over the same
    call-chain workload the scheduling sections use:

    * *cold run* -- first submission of the project (analyses all 9
      functions);
    * *incremental run* -- the project with ``diamond_left`` edited, under
      the same session: the invalidation frontier is exactly
      ``diamond_left`` plus its one transitive caller ``task_0``, the
      other 7 functions are warm cache hits, and the served payloads must
      be identical to a cold run of the edited sources in a separate
      fresh cache;
    * *warm hits* -- batches of deduplicated re-submissions, result
      fetches and ETag 304 conditional gets: pure content-addressed
      lookups whose per-request latency must stay in single-digit
      milliseconds.
    """
    import tempfile

    from ..pipeline.analyzer import AnalyzerConfig
    from ..project import Project, ProjectScheduler, ResultCache
    from ..service import AnalysisServer, ServiceClient
    from ..testgen.hybrid import HybridOptions
    from ..workloads.multi import (
        edit_call_chain_function,
        generate_call_chain_workload,
    )

    def config() -> AnalyzerConfig:
        return AnalyzerConfig(
            path_bound=2,
            hybrid=HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1),
            extra_random_vectors=5,
            exhaustive_limit=None,
        )

    workload = generate_call_chain_workload(seed=seed)
    sources_v1 = dict(workload.sources)
    # the incremental edit: a semantic change local to ``diamond_left``,
    # whose only transitive caller is ``task_0``
    sources_v2 = edit_call_chain_function(sources_v1, "diamond_left")

    def strip_provenance(functions: list[dict]) -> str:
        return json.dumps(
            [
                {
                    key: value
                    for key, value in payload.items()
                    if key not in ("from_cache", "retries", "fault_events")
                }
                for payload in functions
            ],
            indent=2,
        )

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "service-cache"
        with AnalysisServer(
            config=config(), cache=ResultCache(cache_dir)
        ) as server:
            client = ServiceClient(server.base_url, timeout=120.0)

            started = time.perf_counter()
            cold = client.analyze(sources_v1, session="bench", wait=120)
            cold_s = time.perf_counter() - started
            assert cold["state"] == "done", cold

            started = time.perf_counter()
            incremental = client.analyze(
                sources_v2, session="bench", wait=120
            )
            incremental_s = time.perf_counter() - started
            assert incremental["state"] == "done", incremental
            frontier = incremental["incremental"]["frontier"]
            reused = incremental["incremental"]["reused"]

            # warm hits: every request below is a content-addressed lookup
            fingerprint = incremental["fingerprint"]
            _, etag, served = client.result(fingerprint)

            started = time.perf_counter()
            for _ in range(SERVICE_WARM_REQUESTS):
                client.analyze(sources_v2, session="bench")
            warm_submit_s = (time.perf_counter() - started) / SERVICE_WARM_REQUESTS

            started = time.perf_counter()
            for _ in range(SERVICE_WARM_REQUESTS):
                client.result(fingerprint)
            fetch_s = (time.perf_counter() - started) / SERVICE_WARM_REQUESTS

            started = time.perf_counter()
            for _ in range(SERVICE_WARM_REQUESTS):
                client.result(fingerprint, etag=etag)
            conditional_s = (time.perf_counter() - started) / SERVICE_WARM_REQUESTS

            stats = client.stats()

        # a cold direct run of the *edited* sources in a fresh cache: the
        # incremental session result must be payload-identical to it
        reference = ProjectScheduler(
            Project.from_sources(sources_v2),
            config=config(),
            cache=ResultCache(Path(tmp) / "reference-cache"),
        ).run()

    served_functions = json.loads(served)["functions"]
    incremental_identical = strip_provenance(served_functions) == strip_provenance(
        [summary.to_dict() for summary in reference.functions]
    )

    warm_total = 3 * SERVICE_WARM_REQUESTS
    warm_seconds = (warm_submit_s + fetch_s + conditional_s) * SERVICE_WARM_REQUESTS
    # the warm-hit latency target covers *serving* a warm result (fetch and
    # conditional 304) -- deduplicated re-submission additionally re-parses
    # and re-fingerprints the whole project and is reported separately
    warm_latency_ms = max(fetch_s, conditional_s) * 1000.0
    timings = {
        "service_cold_run": cold_s,
        "service_incremental_run": incremental_s,
        "service_warm_submit": warm_submit_s,
        "service_result_fetch": fetch_s,
        "service_result_304": conditional_s,
    }
    details = {
        "functions": cold["progress"]["total"],
        "warm_requests": warm_total,
        "requests_per_second": warm_total / max(warm_seconds, 1e-9),
        "warm_hit_latency_ms": warm_latency_ms,
        "warm_hit_under_10ms": warm_latency_ms < 10.0,
        "dedup_submit_ms": warm_submit_s * 1000.0,
        "incremental_frontier": frontier,
        "incremental_reused": reused,
        "incremental_speedup": cold_s / max(incremental_s, 1e-9),
        "incremental_identical": incremental_identical,
        "jobs": {
            "submitted": stats["jobs"]["submitted"],
            "deduplicated": stats["jobs"]["deduplicated"],
            "completed": stats["jobs"]["completed"],
        },
        "cache_entries": stats["cache"]["entries"],
    }
    return timings, details


#: ``/v1/metrics`` scrapes per latency batch (obs section)
OBS_METRICS_SCRAPES = 20


def _bench_obs(seed: int) -> tuple[dict[str, float], dict[str, Any]]:
    """Time the observability layer (obs section).

    Three scheduler runs on the call-chain workload plus a metrics-scrape
    batch against an in-process server:

    * *untraced* -- no ambient tracer at all: the production default, and
      the baseline the tracing-off overhead is measured against;
    * *disabled tracer* -- an ambient ``Tracer(enabled=False)`` installed
      for the whole run, so every ``obs.span(...)`` call site pays the
      lookup-and-bail path; this is the "tracing disabled" cost that must
      stay under 2% with payloads bit-identical to the untraced run;
    * *full tracer* -- an unbounded recording tracer: payloads must still
      be bit-identical, and the exported spans must form one connected
      tree (a single trace id, no orphaned parents, exactly one
      ``project.run`` root);
    * *metrics scrape* -- ``GET /v1/metrics`` latency on an in-process
      :class:`~repro.service.AnalysisServer`: the Prometheus rendering is
      a pure registry snapshot and must stay in single-digit milliseconds.
    """
    import tempfile

    from .. import obs
    from ..pipeline.analyzer import AnalyzerConfig
    from ..project import Project, ProjectScheduler, ResultCache
    from ..service import AnalysisServer, ServiceClient
    from ..testgen.hybrid import HybridOptions
    from ..workloads.multi import generate_call_chain_workload

    workload = generate_call_chain_workload(seed=seed)
    project = Project.from_sources(workload.sources)

    def config() -> AnalyzerConfig:
        return AnalyzerConfig(
            path_bound=2,
            hybrid=HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1),
            extra_random_vectors=5,
            exhaustive_limit=None,
        )

    def run():
        return ProjectScheduler(project, config=config()).run()

    last_tracer: list[Any] = []

    def run_traced(enabled: bool):
        tracer = obs.Tracer(enabled=enabled)
        with obs.using_tracer(tracer):
            report = ProjectScheduler(project, config=config()).run()
        last_tracer.append(tracer)
        return report

    untraced_s, untraced = _best_of(3, run)
    disabled_s, disabled = _best_of(3, lambda: run_traced(enabled=False))
    traced_s, traced = _best_of(2, lambda: run_traced(enabled=True))

    def payloads(report) -> list[dict]:
        return [summary.result_payload() for summary in report.functions]

    span_summary = obs.summarize(last_tracer[-1].events())
    root_spans = span_summary["by_name"].get("project.run", {}).get("spans", 0)
    trace_connected = (
        len(span_summary["traces"]) == 1
        and span_summary["orphans"] == 0
        and root_spans == 1
    )
    off_overhead_percent = (disabled_s - untraced_s) / max(untraced_s, 1e-9) * 100.0
    traced_overhead_percent = (traced_s - untraced_s) / max(untraced_s, 1e-9) * 100.0

    # /v1/metrics scrape latency: a registry snapshot rendered as Prometheus
    # text, measured against a live (but idle) server so the exposition has
    # real request histograms in it
    with tempfile.TemporaryDirectory() as tmp:
        with AnalysisServer(
            config=config(), cache=ResultCache(Path(tmp) / "obs-cache")
        ) as server:
            client = ServiceClient(server.base_url, timeout=30.0)
            client.healthz()
            metrics_text = client.metrics()  # warm the route once
            started = time.perf_counter()
            for _ in range(OBS_METRICS_SCRAPES):
                metrics_text = client.metrics()
            scrape_s = (time.perf_counter() - started) / OBS_METRICS_SCRAPES

    timings = {
        "obs_untraced": untraced_s,
        "obs_tracing_disabled": disabled_s,
        "obs_tracing_enabled": traced_s,
        "obs_metrics_scrape": scrape_s,
    }
    details = {
        "functions": len(untraced.functions),
        "tracing_off_overhead_percent": off_overhead_percent,
        "tracing_off_within_2_percent": off_overhead_percent < 2.0,
        "tracing_on_overhead_percent": traced_overhead_percent,
        "untraced_identical_under_disabled_tracer": (
            payloads(untraced) == payloads(disabled)
        ),
        "untraced_identical_under_full_tracer": (
            payloads(untraced) == payloads(traced)
        ),
        "trace_spans": span_summary["spans"],
        "trace_count": len(span_summary["traces"]),
        "trace_orphans": span_summary["orphans"],
        "trace_connected": trace_connected,
        "metrics_scrapes": OBS_METRICS_SCRAPES,
        "metrics_scrape_ms": scrape_s * 1000.0,
        "metrics_scrape_under_10ms": scrape_s * 1000.0 < 10.0,
        "metrics_bytes": len(metrics_text.encode("utf-8")),
        "metrics_has_histograms": "service_request_seconds_bucket" in metrics_text,
    }
    return timings, details


def run_perf_bench(
    seed: int = 2005,
    repeats: int = 3,
    output: str | Path | None = DEFAULT_OUTPUT,
    app=None,
    small_app=None,
) -> dict[str, Any]:
    """Benchmark the pipeline hot paths; optionally write the JSON report.

    ``app`` / ``small_app`` let callers reuse already-generated synthetic
    applications (the pytest benchmark shares the session fixture); otherwise
    they are generated from ``seed``.
    """
    from ..analysis.bitset import bitset_block_liveness, bitset_reaching_definitions
    from ..analysis.liveness import block_liveness
    from ..analysis.ranges import analyze_ranges
    from ..analysis.reaching import reaching_definitions
    from ..analysis.reference import (
        analyze_ranges_reference,
        block_liveness_reference,
        reaching_definitions_reference,
    )
    from ..workloads.targetlink import (
        generate_small_application,
        generate_synthetic_application,
    )

    if app is None:
        app = generate_synthetic_application(seed=seed)
    if small_app is None:
        small_app = generate_small_application()
    cfg = app.cfg
    table = app.analyzed.table(app.function_name)

    perf.reset()

    reference_liveness_s, reference_liveness = _best_of(
        repeats, lambda: block_liveness_reference(cfg)
    )
    reference_reaching_s, reference_reaching = _best_of(
        repeats, lambda: reaching_definitions_reference(cfg)
    )

    # warm the per-CFG caches once, then measure the steady state the
    # pipeline actually runs in (interning + use/def extraction are paid on
    # the first analysis of a graph); a shared `app` may arrive pre-analysed,
    # so drop its caches to make the cold measurement actually cold
    cfg.invalidate_analysis_caches()
    cold_started = time.perf_counter()
    optimised_liveness = block_liveness(cfg)
    optimised_reaching = reaching_definitions(cfg)
    cold_seconds = time.perf_counter() - cold_started

    optimised_liveness_s, optimised_liveness = _best_of(
        repeats, lambda: block_liveness(cfg)
    )
    optimised_reaching_s, optimised_reaching = _best_of(
        repeats, lambda: reaching_definitions(cfg)
    )
    ranges_reference_s, ranges_reference = _best_of(
        repeats, lambda: analyze_ranges_reference(cfg, table)
    )
    ranges_s, ranges_result = _best_of(repeats, lambda: analyze_ranges(cfg, table))

    results_match = (
        _liveness_equal(reference_liveness, optimised_liveness)
        and _reaching_equal(reference_reaching, optimised_reaching)
        and ranges_result.global_ranges == ranges_reference.global_ranges
        and ranges_result.block_entry == ranges_reference.block_entry
    )

    pipeline_timings, pipeline_details, industrial_model, small_model = (
        _bench_pipeline_stages(app, small_app, repeats)
    )
    mcquery_timings, mcquery_details = _bench_mc_query(
        app, small_app, industrial_model, small_model, repeats
    )
    querystore_timings, querystore_details = _bench_query_store(
        app, small_app, industrial_model, small_model
    )
    sa_timings, sa_details = _bench_sa(app, industrial_model)
    callgraph_timings, callgraph_details = _bench_callgraph_scheduling(seed)
    resilience_timings, resilience_details = _bench_resilience(seed)
    service_timings, service_details = _bench_service(seed)
    obs_timings, obs_details = _bench_obs(seed)

    liveness_iterations = bitset_block_liveness(cfg).iterations
    reaching_iterations = bitset_reaching_definitions(cfg).iterations

    reference_total = reference_liveness_s + reference_reaching_s
    optimised_total = optimised_liveness_s + optimised_reaching_s
    report: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "workload": {
            "generator": "generate_synthetic_application",
            "seed": app.seed,
            "basic_blocks": app.basic_blocks,
            "conditional_branches": app.conditional_branches,
            "source_lines": app.source_lines,
            "variables": len(table.variables),
        },
        "timings_seconds": {
            "liveness_reference": reference_liveness_s,
            "liveness_optimised": optimised_liveness_s,
            "reaching_reference": reference_reaching_s,
            "reaching_optimised": optimised_reaching_s,
            "ranges_reference": ranges_reference_s,
            "ranges_optimised": ranges_s,
            "optimised_cold_first_run": cold_seconds,
            **pipeline_timings,
            **mcquery_timings,
            **querystore_timings,
            **sa_timings,
            **callgraph_timings,
            **resilience_timings,
            **service_timings,
            **obs_timings,
        },
        "speedup": {
            "liveness": reference_liveness_s / max(optimised_liveness_s, 1e-9),
            "reaching": reference_reaching_s / max(optimised_reaching_s, 1e-9),
            "ranges": ranges_reference_s / max(ranges_s, 1e-9),
            "combined": reference_total / max(optimised_total, 1e-9),
        },
        "iterations": {
            "liveness_bitset": liveness_iterations,
            "reaching_bitset": reaching_iterations,
        },
        "pipeline": pipeline_details,
        "mcquery": mcquery_details,
        "querystore": querystore_details,
        "sa": sa_details,
        "callgraph": callgraph_details,
        "resilience": resilience_details,
        "service": service_details,
        "obs": obs_details,
        "results_match": results_match
        and querystore_details["warm_zero_solver_runs"]
        and querystore_details["warm_identical"]
        and sa_details["verdicts_identical"]
        and sa_details["pipeline_bounds_identical"]
        and sa_details["static_prunes"] > 0
        and sa_details["solver_runs_reduced"]
        and resilience_details["clean_identical_under_empty_plan"]
        and resilience_details["clean_identical_under_armed_plan"]
        and resilience_details["bound_safety"]
        and service_details["incremental_identical"]
        and obs_details["untraced_identical_under_disabled_tracer"]
        and obs_details["untraced_identical_under_full_tracer"]
        and obs_details["trace_connected"],
        "repeats": repeats,
        "global_ranges_variables": len(ranges_result.global_ranges),
        "perf": perf.report(),
    }
    if output is not None:
        Path(output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        report["output_path"] = str(Path(output).resolve())
    return report


def format_summary(report: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a benchmark report."""
    workload = report["workload"]
    timings = report["timings_seconds"]
    speedup = report["speedup"]
    lines = [
        f"workload: {workload['basic_blocks']} basic blocks, "
        f"{workload['conditional_branches']} conditional branches "
        f"(seed {workload['seed']})",
        f"{'analysis':<22} {'reference':>12} {'optimised':>12} {'speedup':>9}",
        f"{'liveness':<22} {timings['liveness_reference']:>11.4f}s "
        f"{timings['liveness_optimised']:>11.4f}s {speedup['liveness']:>8.1f}x",
        f"{'reaching definitions':<22} {timings['reaching_reference']:>11.4f}s "
        f"{timings['reaching_optimised']:>11.4f}s {speedup['reaching']:>8.1f}x",
        f"{'combined':<22} "
        f"{timings['liveness_reference'] + timings['reaching_reference']:>11.4f}s "
        f"{timings['liveness_optimised'] + timings['reaching_optimised']:>11.4f}s "
        f"{speedup['combined']:>8.1f}x",
        f"{'interval analysis':<22} {timings['ranges_reference']:>11.4f}s "
        f"{timings['ranges_optimised']:>11.4f}s {speedup['ranges']:>8.1f}x",
        f"results identical to seed reference: {report['results_match']}",
    ]
    pipeline = report.get("pipeline")
    if pipeline:
        verdicts = ", ".join(
            f"{count} {name}"
            for name, count in sorted(pipeline["modelcheck_verdicts"].items())
        )
        lines += [
            "pipeline stages:",
            f"{'partition (paper)':<22} {'-':>12} "
            f"{timings['partition_paper']:>11.4f}s "
            f"({pipeline['partition_segments_paper']} segments, "
            f"b={pipeline['partition_path_bound']})",
            f"{'partition (general)':<22} {'-':>12} "
            f"{timings['partition_general']:>11.4f}s "
            f"({pipeline['partition_segments_general']} segments)",
            f"{'mc model (industrial)':<22} {'-':>12} "
            f"{timings['modelcheck_build_industrial']:>11.4f}s "
            f"({pipeline['modelcheck_state_bits_industrial']['optimised']} of "
            f"{pipeline['modelcheck_state_bits_industrial']['unoptimised']} state bits)",
            f"{'mc model (small)':<22} {'-':>12} "
            f"{timings['modelcheck_build_small']:>11.4f}s "
            f"({pipeline['small_app_blocks']} blocks)",
            f"{'mc queries (small)':<22} {'-':>12} "
            f"{timings['modelcheck_queries_small']:>11.4f}s "
            f"({pipeline['modelcheck_queries']} queries: {verdicts})",
        ]
    mcquery = report.get("mcquery")
    if mcquery:
        speed = timings["mcquery_small_unsliced"] / max(
            timings["mcquery_small_sliced"], 1e-9
        )
        deep_verdicts = ", ".join(
            f"{count} {name}"
            for name, count in sorted(mcquery["deep_verdicts"].items())
        )
        lines += [
            "query engine (planned/budgeted/sliced):",
            f"{'small batch unsliced':<22} {'-':>12} "
            f"{timings['mcquery_small_unsliced']:>11.4f}s "
            f"({mcquery['small_queries']} block goals)",
            f"{'small batch sliced':<22} {'-':>12} "
            f"{timings['mcquery_small_sliced']:>11.4f}s "
            f"({speed:.1f}x, verdicts match: {mcquery['small_verdicts_match']})",
            f"{'deep batch (industrial)':<22} {'-':>12} "
            f"{timings['mcquery_deep_budgeted']:>11.4f}s "
            f"({mcquery['deep_queries']} queries: {deep_verdicts}; "
            f"{mcquery['deep_budget_exhausted']} budget-exhausted, "
            f"worst {mcquery['deep_worst_query_seconds']:.3f}s)",
            f"{'deep unsliced probe':<22} {'-':>12} "
            f"{timings['mcquery_deep_unsliced_probe']:>11.4f}s "
            f"(verdict: {mcquery['deep_unsliced_probe_verdict']})",
        ]
    querystore = report.get("querystore")
    if querystore:
        speed = timings["querystore_cold_deep"] / max(
            timings["querystore_warm_deep"], 1e-9
        )
        lines += [
            "persistent query store (verdicts + replay-validated witnesses):",
            f"{'deep batch cold':<22} {'-':>12} "
            f"{timings['querystore_cold_deep']:>11.4f}s "
            f"({querystore['deep_queries']} queries, "
            f"{querystore['cold_stats']['store_writes']} entries written)",
            f"{'deep batch warm':<22} {'-':>12} "
            f"{timings['querystore_warm_deep']:>11.4f}s "
            f"({speed:.1f}x, hit rate {querystore['cross_run_hit_rate']:.2f}, "
            f"{querystore['warm_stats']['solver_runs']} solver runs, "
            f"identical: {querystore['warm_identical']})",
            f"{'cross-function clone':<22} {'-':>12} "
            f"{timings['querystore_cross_function']:>11.4f}s "
            f"(hit rate {querystore['cross_function_hit_rate']:.2f})",
        ]
    sa_section = report.get("sa")
    if sa_section:
        lines += [
            "static prefilter (sound interval feasibility):",
            f"{'sa analysis':<22} {'-':>12} "
            f"{timings['sa_prefilter_analysis']:>11.4f}s "
            f"({sa_section['edges_pruned']} infeasible edge(s), "
            f"{sa_section['unreachable_blocks']} unreachable block(s))",
            f"{'deep batch unfiltered':<22} {'-':>12} "
            f"{timings['sa_deep_prefilter_off']:>11.4f}s "
            f"({sa_section['solver_runs_off']} solver runs)",
            f"{'deep batch prefiltered':<22} {'-':>12} "
            f"{timings['sa_deep_prefilter_on']:>11.4f}s "
            f"({sa_section['solver_runs_on']} solver runs, "
            f"{sa_section['static_prunes']} pruned statically, "
            f"identical: {sa_section['verdicts_identical']})",
            f"{'pipeline sa off/on':<22} "
            f"{timings['sa_pipeline_off']:>11.4f}s "
            f"{timings['sa_pipeline_on']:>11.4f}s "
            f"(overhead {sa_section['pipeline_overhead_percent']:+.1f}%, "
            f"bounds identical: {sa_section['pipeline_bounds_identical']})",
        ]
    callgraph = report.get("callgraph")
    if callgraph:
        lines += [
            "call-graph scheduling (call-chain workload, "
            f"{callgraph['functions']} functions):",
            f"{'project flat (1 wave)':<22} {'-':>12} "
            f"{timings['callgraph_flat']:>11.4f}s",
            f"{'project interproc':<22} {'-':>12} "
            f"{timings['callgraph_interprocedural']:>11.4f}s "
            f"({callgraph['waves']} waves, "
            f"{callgraph['summary_reuse_calls']} summarised call sites)",
            f"{'cache cold / warm':<22} "
            f"{timings['callgraph_cache_cold']:>11.4f}s "
            f"{timings['callgraph_cache_warm']:>11.4f}s "
            f"({callgraph['cache_warm_hits']} warm hits)",
        ]
    resilience = report.get("resilience")
    if resilience:
        lines += [
            "resilience (fault-injection layer):",
            f"{'clean run':<22} {'-':>12} "
            f"{timings['resilience_clean']:>11.4f}s "
            f"({resilience['functions']} functions)",
            f"{'empty fault plan':<22} {'-':>12} "
            f"{timings['resilience_empty_plan']:>11.4f}s "
            f"(clean-path overhead {resilience['overhead_percent']:+.1f}%, "
            f"identical results: {resilience['clean_identical_under_empty_plan']})",
            f"{'armed (never fires)':<22} {'-':>12} "
            f"{timings['resilience_armed_plan']:>11.4f}s "
            f"(overhead {resilience['armed_overhead_percent']:+.1f}%, "
            f"identical results: {resilience['clean_identical_under_armed_plan']})",
            f"{'chaos (10% faults)':<22} {'-':>12} "
            f"{timings['resilience_chaos']:>11.4f}s "
            f"(completed: {resilience['chaos_completed']}, "
            f"{len(resilience['chaos_degraded'])} degraded, "
            f"{len(resilience['chaos_quarantined'])} quarantined, "
            f"bound safety: {resilience['bound_safety']})",
        ]
    service = report.get("service")
    if service:
        lines += [
            "analysis service (in-process daemon, "
            f"{service['functions']} functions):",
            f"{'cold run':<22} {'-':>12} "
            f"{timings['service_cold_run']:>11.4f}s",
            f"{'incremental run':<22} {'-':>12} "
            f"{timings['service_incremental_run']:>11.4f}s "
            f"({len(service['incremental_frontier'])} re-analysed, "
            f"{len(service['incremental_reused'])} reused, "
            f"{service['incremental_speedup']:.1f}x; "
            f"identical payloads: {service['incremental_identical']})",
            f"{'warm submit (dedup)':<22} {'-':>12} "
            f"{timings['service_warm_submit'] * 1000:>10.2f}ms",
            f"{'result fetch / 304':<22} "
            f"{timings['service_result_fetch'] * 1000:>10.2f}ms "
            f"{timings['service_result_304'] * 1000:>10.2f}ms "
            f"({service['requests_per_second']:.0f} req/s sustained, "
            f"warm hits under 10ms: {service['warm_hit_under_10ms']})",
        ]
    obs_section = report.get("obs")
    if obs_section:
        lines += [
            "observability (tracing + metrics):",
            f"{'untraced run':<22} {'-':>12} "
            f"{timings['obs_untraced']:>11.4f}s "
            f"({obs_section['functions']} functions)",
            f"{'tracing disabled':<22} {'-':>12} "
            f"{timings['obs_tracing_disabled']:>11.4f}s "
            f"(overhead {obs_section['tracing_off_overhead_percent']:+.1f}%, "
            f"identical results: "
            f"{obs_section['untraced_identical_under_disabled_tracer']})",
            f"{'tracing enabled':<22} {'-':>12} "
            f"{timings['obs_tracing_enabled']:>11.4f}s "
            f"({obs_section['trace_spans']} spans, "
            f"{obs_section['trace_count']} trace(s), "
            f"connected: {obs_section['trace_connected']}, "
            f"identical results: "
            f"{obs_section['untraced_identical_under_full_tracer']})",
            f"{'/v1/metrics scrape':<22} {'-':>12} "
            f"{timings['obs_metrics_scrape'] * 1000:>10.2f}ms "
            f"({obs_section['metrics_bytes']} bytes, histograms: "
            f"{obs_section['metrics_has_histograms']}, under 10ms: "
            f"{obs_section['metrics_scrape_under_10ms']})",
        ]
    if "output_path" in report:
        lines.append(f"report written to {report['output_path']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-perf",
        description="Time the pipeline hot paths on the synthetic applications",
    )
    parser.add_argument("--seed", type=int, default=2005, help="generator seed")
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions")
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="JSON report path (BENCH_perf.json)"
    )
    args = parser.parse_args(argv)
    report = run_perf_bench(seed=args.seed, repeats=args.repeats, output=args.output)
    print(format_summary(report))
    return 0 if report["results_match"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
