"""Dataflow hot-path benchmark: optimised engine versus the seed reference.

Times live-variable analysis and reaching definitions on the synthetic
industrial application (the stand-in for the paper's ~857-block TargetLink
function) twice: once with the frozenset reference implementations preserved
in :mod:`repro.analysis.reference` (the seed algorithms) and once with the
production bitset engine.  The interval analysis is timed as well to extend
the trajectory, and the results of both liveness/reaching implementations
are compared for exact equality before any speedup is reported.

The report is written as ``BENCH_perf.json`` so that future PRs have a perf
trajectory to compare against.  Entry points:

* ``python -m repro.cli bench``
* ``python benchmarks/run_perf.py``
* the ``benchmarks/test_bench_perf.py`` pytest benchmark (marker ``perf``)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Callable

from .. import perf

#: default output location: the repository root (two levels above ``src/``)
DEFAULT_OUTPUT = "BENCH_perf.json"

#: report schema tag for downstream tooling
BENCH_SCHEMA = "repro-bench-perf/1"


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run *fn* *repeats* times; return (best wall-clock seconds, last result)."""
    best = float("inf")
    result: Any = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _liveness_equal(reference, optimised) -> bool:
    return (
        reference.live_in == optimised.live_in
        and reference.live_out == optimised.live_out
    )


def _reaching_equal(reference, optimised) -> bool:
    return (
        reference.reach_in == optimised.reach_in
        and reference.reach_out == optimised.reach_out
        and set(reference.definitions) == set(optimised.definitions)
        and reference.uses == optimised.uses
    )


def run_perf_bench(
    seed: int = 2005,
    repeats: int = 3,
    output: str | Path | None = DEFAULT_OUTPUT,
    app=None,
) -> dict[str, Any]:
    """Benchmark the dataflow hot paths; optionally write the JSON report.

    ``app`` lets callers reuse an already-generated synthetic application
    (the pytest benchmark shares the session fixture); otherwise one is
    generated from ``seed``.
    """
    from ..analysis.bitset import bitset_block_liveness, bitset_reaching_definitions
    from ..analysis.liveness import block_liveness
    from ..analysis.ranges import analyze_ranges
    from ..analysis.reaching import reaching_definitions
    from ..analysis.reference import (
        block_liveness_reference,
        reaching_definitions_reference,
    )
    from ..workloads.targetlink import generate_synthetic_application

    if app is None:
        app = generate_synthetic_application(seed=seed)
    cfg = app.cfg
    table = app.analyzed.table(app.function_name)

    perf.reset()

    reference_liveness_s, reference_liveness = _best_of(
        repeats, lambda: block_liveness_reference(cfg)
    )
    reference_reaching_s, reference_reaching = _best_of(
        repeats, lambda: reaching_definitions_reference(cfg)
    )

    # warm the per-CFG caches once, then measure the steady state the
    # pipeline actually runs in (interning + use/def extraction are paid on
    # the first analysis of a graph); a shared `app` may arrive pre-analysed,
    # so drop its caches to make the cold measurement actually cold
    cfg.invalidate_analysis_caches()
    cold_started = time.perf_counter()
    optimised_liveness = block_liveness(cfg)
    optimised_reaching = reaching_definitions(cfg)
    cold_seconds = time.perf_counter() - cold_started

    optimised_liveness_s, optimised_liveness = _best_of(
        repeats, lambda: block_liveness(cfg)
    )
    optimised_reaching_s, optimised_reaching = _best_of(
        repeats, lambda: reaching_definitions(cfg)
    )
    ranges_s, ranges_result = _best_of(repeats, lambda: analyze_ranges(cfg, table))

    results_match = _liveness_equal(
        reference_liveness, optimised_liveness
    ) and _reaching_equal(reference_reaching, optimised_reaching)

    liveness_iterations = bitset_block_liveness(cfg).iterations
    reaching_iterations = bitset_reaching_definitions(cfg).iterations

    reference_total = reference_liveness_s + reference_reaching_s
    optimised_total = optimised_liveness_s + optimised_reaching_s
    report: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "workload": {
            "generator": "generate_synthetic_application",
            "seed": app.seed,
            "basic_blocks": app.basic_blocks,
            "conditional_branches": app.conditional_branches,
            "source_lines": app.source_lines,
            "variables": len(table.variables),
        },
        "timings_seconds": {
            "liveness_reference": reference_liveness_s,
            "liveness_optimised": optimised_liveness_s,
            "reaching_reference": reference_reaching_s,
            "reaching_optimised": optimised_reaching_s,
            "ranges_optimised": ranges_s,
            "optimised_cold_first_run": cold_seconds,
        },
        "speedup": {
            "liveness": reference_liveness_s / max(optimised_liveness_s, 1e-9),
            "reaching": reference_reaching_s / max(optimised_reaching_s, 1e-9),
            "combined": reference_total / max(optimised_total, 1e-9),
        },
        "iterations": {
            "liveness_bitset": liveness_iterations,
            "reaching_bitset": reaching_iterations,
        },
        "results_match": results_match,
        "repeats": repeats,
        "global_ranges_variables": len(ranges_result.global_ranges),
        "perf": perf.report(),
    }
    if output is not None:
        Path(output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        report["output_path"] = str(Path(output).resolve())
    return report


def format_summary(report: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a benchmark report."""
    workload = report["workload"]
    timings = report["timings_seconds"]
    speedup = report["speedup"]
    lines = [
        f"workload: {workload['basic_blocks']} basic blocks, "
        f"{workload['conditional_branches']} conditional branches "
        f"(seed {workload['seed']})",
        f"{'analysis':<22} {'reference':>12} {'optimised':>12} {'speedup':>9}",
        f"{'liveness':<22} {timings['liveness_reference']:>11.4f}s "
        f"{timings['liveness_optimised']:>11.4f}s {speedup['liveness']:>8.1f}x",
        f"{'reaching definitions':<22} {timings['reaching_reference']:>11.4f}s "
        f"{timings['reaching_optimised']:>11.4f}s {speedup['reaching']:>8.1f}x",
        f"{'combined':<22} "
        f"{timings['liveness_reference'] + timings['reaching_reference']:>11.4f}s "
        f"{timings['liveness_optimised'] + timings['reaching_optimised']:>11.4f}s "
        f"{speedup['combined']:>8.1f}x",
        f"{'interval analysis':<22} {'-':>12} "
        f"{timings['ranges_optimised']:>11.4f}s {'-':>9}",
        f"results identical to frozenset reference: {report['results_match']}",
    ]
    if "output_path" in report:
        lines.append(f"report written to {report['output_path']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-perf",
        description="Time the dataflow hot paths on the synthetic industrial app",
    )
    parser.add_argument("--seed", type=int, default=2005, help="generator seed")
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions")
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="JSON report path (BENCH_perf.json)"
    )
    args = parser.parse_args(argv)
    report = run_perf_bench(seed=args.seed, repeats=args.repeats, output=args.output)
    print(format_summary(report))
    return 0 if report["results_match"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
