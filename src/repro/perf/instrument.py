"""Lightweight performance instrumentation: counters, timers, profiling.

The hot paths of the reproduction (the dataflow fixpoint solver, path
enumeration, the explicit-state engine) record how much work they do into a
:class:`PerfRegistry`.  The registry is deliberately simple -- plain dicts
behind a lock -- so that instrumenting a hot loop costs one dict update per
*call*, not per iteration: callers aggregate locally and record once.

A process-wide default registry is available through the module-level
helpers (:func:`add`, :func:`record_time`, :func:`timed`, :func:`profiled`,
:func:`report`, :func:`write_report`, :func:`reset`).  Benchmarks reset it,
run a workload and serialise the report next to their timing numbers (see
:mod:`repro.perf.bench`).

The *ambient* registry the helpers write to is a
:class:`contextvars.ContextVar` whose default is the process-wide registry:
single-process batch runs (the CLI, the benchmarks) see exactly the
behaviour they always had, while concurrent executions that must not bleed
counters into each other -- one analysis request per client of the
long-running :mod:`repro.service` daemon -- activate their own registry
with :func:`using_registry` for the duration of the work.  ``ContextVar``
gives every thread (and every :mod:`asyncio` task, should one appear) its
own activation slot, so two requests instrumented on two worker threads
never see each other's counters.
"""

from __future__ import annotations

import bisect
import contextvars
import functools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, TypeVar

FuncT = TypeVar("FuncT", bound=Callable[..., Any])

#: schema tag written into every JSON report; /2 added min/max and the
#: bounded histogram buckets to every timer (old readers that only consume
#: calls/total/mean keep working -- the fields are additive)
REPORT_SCHEMA = "repro-perf/2"

#: upper bounds (seconds) of the fixed latency-histogram buckets; one
#: implicit +Inf bucket follows the last bound.  Log-scaled from sub-ms
#: cache lookups to multi-second scheduler runs -- fixed bounds keep every
#: timer's histogram mergeable and the Prometheus exposition label-stable.
HISTOGRAM_BOUNDS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class TimerStat:
    """Accumulated wall-clock time of one named operation."""

    __slots__ = ("calls", "total_seconds", "min_seconds", "max_seconds", "buckets")

    def __init__(self) -> None:
        self.calls = 0
        self.total_seconds = 0.0
        self.min_seconds = 0.0
        self.max_seconds = 0.0
        #: per-bucket call counts; ``buckets[i]`` counts calls with
        #: ``seconds <= HISTOGRAM_BOUNDS[i]`` (last slot = +Inf overflow)
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def record(self, seconds: float) -> None:
        if self.calls == 0:
            self.min_seconds = seconds
            self.max_seconds = seconds
        else:
            if seconds < self.min_seconds:
                self.min_seconds = seconds
            if seconds > self.max_seconds:
                self.max_seconds = seconds
        self.calls += 1
        self.total_seconds += seconds
        self.buckets[bisect.bisect_left(HISTOGRAM_BOUNDS, seconds)] += 1

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "histogram": {
                "bounds": list(HISTOGRAM_BOUNDS),
                "counts": list(self.buckets),
            },
        }


class PerfRegistry:
    """Named monotonic counters and wall-clock timers.

    Thread-safe; disabling a registry turns every recording operation into a
    cheap no-op so instrumented code needs no conditional logic of its own.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, int] = {}
        self._timers: dict[str, TimerStat] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_time(self, name: str, seconds: float) -> None:
        """Record one timed call of *seconds* under *name*."""
        if not self.enabled:
            return
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.record(seconds)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its body with ``time.perf_counter``."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - started)

    def profiled(self, name: str | None = None) -> Callable[[FuncT], FuncT]:
        """Decorator recording call count and wall-clock time of a function.

        Usable as ``@registry.profiled()`` or ``@registry.profiled("label")``;
        the default label is the function's qualified name.
        """

        def decorate(func: FuncT) -> FuncT:
            label = name or f"{func.__module__}.{func.__qualname__}"

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return func(*args, **kwargs)
                started = time.perf_counter()
                try:
                    return func(*args, **kwargs)
                finally:
                    self.record_time(label, time.perf_counter() - started)

            return wrapper  # type: ignore[return-value]

        return decorate

    # ------------------------------------------------------------------ #
    # inspection and reporting
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timer(self, name: str) -> TimerStat | None:
        with self._lock:
            return self._timers.get(name)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def report(self) -> dict[str, Any]:
        """Snapshot of all counters and timers as plain JSON-friendly data."""
        with self._lock:
            return {
                "schema": REPORT_SCHEMA,
                "counters": dict(sorted(self._counters.items())),
                "timers": {
                    name: stat.as_dict()
                    for name, stat in sorted(self._timers.items())
                },
            }

    def write_report(
        self, path: str | Path, extra: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Serialise :meth:`report` (merged with *extra*) as JSON to *path*."""
        payload = self.report()
        if extra:
            payload.update(extra)
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
        return payload


#: process-wide default registry used by the instrumented hot paths
_GLOBAL_REGISTRY = PerfRegistry()

#: the ambient registry the module-level helpers record into; defaults to
#: the process-wide registry, so nothing changes outside scoped activations
_ACTIVE_REGISTRY: contextvars.ContextVar[PerfRegistry] = contextvars.ContextVar(
    "repro_perf_registry", default=_GLOBAL_REGISTRY
)


def global_registry() -> PerfRegistry:
    return _GLOBAL_REGISTRY


def active_registry() -> PerfRegistry:
    """The registry the module-level helpers currently record into."""
    return _ACTIVE_REGISTRY.get()


@contextmanager
def using_registry(registry: PerfRegistry) -> Iterator[PerfRegistry]:
    """Make *registry* the ambient recording target for the body.

    Activations are per-context (thread/task): a registry activated on one
    worker thread is invisible to every other thread, which is what gives
    the analysis service per-request counter isolation.
    """
    token = _ACTIVE_REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_REGISTRY.reset(token)


def add(name: str, amount: int = 1) -> None:
    _ACTIVE_REGISTRY.get().add(name, amount)


def record_time(name: str, seconds: float) -> None:
    _ACTIVE_REGISTRY.get().record_time(name, seconds)


def timed(name: str):
    return _ACTIVE_REGISTRY.get().timed(name)


def profiled(name: str | None = None) -> Callable[[FuncT], FuncT]:
    """Decorator profiling a function against the *ambient* registry.

    The registry is resolved per call, not at decoration time, so module
    import order never pins a profiled function to the global registry.
    """

    def decorate(func: FuncT) -> FuncT:
        label = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            registry = _ACTIVE_REGISTRY.get()
            if not registry.enabled:
                return func(*args, **kwargs)
            started = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                registry.record_time(label, time.perf_counter() - started)

        return wrapper  # type: ignore[return-value]

    return decorate


def report() -> dict[str, Any]:
    return _ACTIVE_REGISTRY.get().report()


def write_report(path: str | Path, extra: dict[str, Any] | None = None) -> dict[str, Any]:
    return _ACTIVE_REGISTRY.get().write_report(path, extra)


def reset() -> None:
    _ACTIVE_REGISTRY.get().reset()
