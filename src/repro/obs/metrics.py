"""Prometheus text-format exposition of a perf-registry report.

Renders the counters and timers of a :class:`repro.perf.PerfRegistry`
report (schema ``repro-perf/2``) in the Prometheus text exposition format
0.0.4: counters as ``<name>_total``, timers as ``<name>_seconds``
histograms backed by the registry's bounded latency buckets
(``_bucket{le=...}`` cumulative counts plus ``_sum``/``_count``).  Metric
names are sanitised (dots become underscores) and prefixed, so
``service.request`` scrapes as ``repro_service_request_seconds``.

The renderer works on the plain report *dict*, not the registry object:
the server snapshots its aggregate registry under its own lock and hands
the frozen report here, and the same code can expose a report loaded from
disk.  Older ``repro-perf/1`` reports (no histogram field) degrade to
``_sum``/``_count``-only histograms rather than failing.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

#: Content-Type of the exposition (served by ``GET /v1/metrics``)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro_") -> str:
    """A raw counter/timer name as a valid Prometheus metric name."""
    sanitised = _INVALID.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return prefix + sanitised


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def _labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_counter(
    name: str, value: int | float, labels: dict[str, str] | None = None
) -> list[str]:
    return [f"{name}{_labels(labels)} {_format_value(value)}"]


def prometheus_text(
    report: dict[str, Any],
    prefix: str = "repro_",
    extra_counters: Iterable[tuple[str, dict[str, str] | None, int]] = (),
) -> str:
    """Render one perf report (plus optional labelled counters) as text.

    ``extra_counters`` is ``(metric name, labels, value)`` triples for
    counters that live outside the registry (the server's per-endpoint and
    per-status request counts).
    """
    lines: list[str] = []
    for raw_name, value in (report.get("counters") or {}).items():
        name = metric_name(raw_name, prefix) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.extend(render_counter(name, value))
    timers = report.get("timers") or {}
    for raw_name, stat in timers.items():
        name = metric_name(raw_name, prefix) + "_seconds"
        calls = int(stat.get("calls", 0))
        total = float(stat.get("total_seconds", 0.0))
        lines.append(f"# TYPE {name} histogram")
        histogram = stat.get("histogram")
        if isinstance(histogram, dict):
            bounds = list(histogram.get("bounds") or [])
            counts = list(histogram.get("counts") or [])
            cumulative = 0
            for bound, count in zip(bounds + [float("inf")], counts):
                cumulative += int(count)
                lines.append(
                    f'{name}_bucket{{le="{_format_le(float(bound))}"}} '
                    f"{cumulative}"
                )
        else:
            # a pre-/2 report: no buckets recorded, expose the +Inf bucket
            lines.append(f'{name}_bucket{{le="+Inf"}} {calls}')
        lines.append(f"{name}_sum {_format_value(total)}")
        lines.append(f"{name}_count {calls}")
    grouped: dict[str, list[str]] = {}
    for raw_name, labels, value in extra_counters:
        name = metric_name(raw_name, prefix) + "_total"
        grouped.setdefault(name, []).extend(render_counter(name, value, labels))
    for name in sorted(grouped):
        lines.append(f"# TYPE {name} counter")
        lines.extend(grouped[name])
    return "\n".join(lines) + "\n"


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "metric_name",
    "prometheus_text",
]
