"""repro.obs -- end-to-end observability for the analysis pipeline.

Three cooperating layers on top of the :mod:`repro.perf` counters/timers:

- :mod:`repro.obs.trace` -- structured spans with ``trace_id``/``span_id``/
  parent links, propagated from a service HTTP request through the job
  queue, scheduler waves and process-pool workers down to analyzer stages,
  model-checking queries and cache I/O; exportable as JSONL and Chrome
  trace-event JSON (``repro-wcet project --trace`` / ``repro-wcet trace``);
- :mod:`repro.obs.metrics` -- Prometheus text exposition of a perf report
  (histogram timers included), served by ``GET /v1/metrics``;
- :mod:`repro.obs.flight` -- the crash flight recorder: a bounded ring of
  recent spans dumped to ``diagnostics/`` when a job is quarantined, a
  fault fires or the server answers 5xx.

Tracing is off unless a :class:`Tracer` is activated; the disabled path is
a single ``ContextVar`` read per instrumented region.
"""

from __future__ import annotations

from .flight import (
    DEFAULT_MAX_DUMPS,
    DIAGNOSTICS_DIR,
    FLIGHT_SCHEMA,
    FlightRecorder,
)
from .metrics import PROMETHEUS_CONTENT_TYPE, metric_name, prometheus_text
from .trace import (
    DEFAULT_RING_EVENTS,
    TRACE_SCHEMA,
    SpanContext,
    Tracer,
    active_tracer,
    chrome_trace,
    current_context,
    read_trace_file,
    span,
    summarize,
    using_tracer,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "DEFAULT_MAX_DUMPS",
    "DEFAULT_RING_EVENTS",
    "DIAGNOSTICS_DIR",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "PROMETHEUS_CONTENT_TYPE",
    "SpanContext",
    "TRACE_SCHEMA",
    "Tracer",
    "active_tracer",
    "chrome_trace",
    "current_context",
    "metric_name",
    "prometheus_text",
    "read_trace_file",
    "span",
    "summarize",
    "using_tracer",
    "write_chrome",
    "write_jsonl",
]
