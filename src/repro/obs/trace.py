"""Structured trace spans with cross-process propagation.

A *span* is one named, timed region of work; spans form a tree through
``parent_id`` links and every span of one logical operation shares a
``trace_id`` -- the service request, the scheduler run it enqueues, the
per-function jobs that run on process-pool workers and the analyzer /
model-checking / cache stages inside them all hang off one root, so a slow
or degraded run can be read as a single timeline.

The design mirrors :mod:`repro.perf.instrument`: a :class:`Tracer` collects
span events behind a lock, and the *ambient* tracer the module-level
:func:`span` helper records into is a :class:`contextvars.ContextVar` --
``None`` by default, so untraced runs pay exactly one ``ContextVar.get``
plus an ``is None`` test per instrumented region (the <2% overhead bar).
:func:`using_tracer` activates a tracer for one context (thread/task), and
can seed the *current span* with a deserialised :class:`SpanContext`, which
is how a process-pool worker re-attaches its spans to the scheduler's tree:
the scheduler ships ``{trace_id, parent_id}`` in the job payload, the
worker records into its own tracer under that parent, and the events are
merged back on completion (:meth:`Tracer.merge`).

Two export formats, both loadable by the ``repro-wcet trace`` subcommand:

* **JSONL** -- one span event per line (grep/jq-friendly);
* **Chrome trace-event JSON** -- ``{"traceEvents": [...]}`` with complete
  (``"ph": "X"``) events, loadable in Perfetto / ``chrome://tracing``.

Timestamps are epoch microseconds (``time.time``), so spans recorded in
different processes land on one comparable timeline; durations are measured
with ``time.perf_counter`` so they never go backwards.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

#: schema tag written into JSONL exports and flight-recorder dumps
TRACE_SCHEMA = "repro-trace/1"

#: default ring-buffer capacity of bounded tracers (flight recorder)
DEFAULT_RING_EVENTS = 256

#: process-wide span-id counter; combined with the pid so ids stay unique
#: across pool workers without any cross-process coordination
_SPAN_COUNTER = itertools.count(1)


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_SPAN_COUNTER):x}"


@dataclass(frozen=True)
class SpanContext:
    """The serialisable identity of a span: what children link against.

    Plain strings only, so a context crosses process boundaries as two dict
    entries in a pickled job payload.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "SpanContext | None":
        if not data:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Tracer:
    """Collects span events; bounded (ring buffer) or unbounded (export).

    ``max_events=None`` keeps every span (the ``--trace`` export mode);
    an integer keeps only the most recent ones -- the flight-recorder ring
    that is cheap enough to leave armed during chaos runs and long-running
    service requests.  ``enabled=False`` turns recording into a no-op while
    keeping the tracer activatable (the overhead-measurement baseline).
    """

    def __init__(self, max_events: int | None = None, enabled: bool = True):
        self.enabled = enabled
        self.max_events = max_events
        self._events: deque[dict[str, Any]] | list[dict[str, Any]]
        if max_events is not None:
            self._events = deque(maxlen=max(1, int(max_events)))
        else:
            self._events = []
        self._lock = threading.Lock()
        #: trace id of the most recently started root span (reporting hook)
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------ #
    def record(self, event: dict[str, Any]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._events.append(event)

    def merge(self, events: list[dict[str, Any]]) -> None:
        """Fold span events recorded elsewhere (a pool worker) into this tracer."""
        if not self.enabled or not events:
            return
        with self._lock:
            self._events.extend(events)

    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the recorded span events (oldest first)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------ #
    def write_jsonl(self, path: str | Path) -> int:
        """Export one span event per line; returns the event count."""
        events = self.events()
        write_jsonl(path, events)
        return len(events)

    def write_chrome(self, path: str | Path) -> int:
        """Export the Chrome trace-event JSON; returns the event count."""
        events = self.events()
        write_chrome(path, events)
        return len(events)


#: the ambient tracer :func:`span` records into; ``None`` = tracing off
_ACTIVE_TRACER: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)

#: the span context new spans become children of
_CURRENT_SPAN: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def active_tracer() -> Tracer | None:
    """The tracer the module-level helpers currently record into."""
    return _ACTIVE_TRACER.get()


def current_context() -> SpanContext | None:
    """The span context a new span would be a child of (``None`` untraced)."""
    return _CURRENT_SPAN.get()


class _UsingTracer:
    """Context manager activating a tracer (and optional parent context)."""

    def __init__(self, tracer: Tracer | None, context: SpanContext | None):
        self._tracer = tracer
        self._context = context
        self._tracer_token: contextvars.Token | None = None
        self._span_token: contextvars.Token | None = None

    def __enter__(self) -> Tracer | None:
        self._tracer_token = _ACTIVE_TRACER.set(self._tracer)
        if self._context is not None:
            self._span_token = _CURRENT_SPAN.set(self._context)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        if self._span_token is not None:
            _CURRENT_SPAN.reset(self._span_token)
            self._span_token = None
        if self._tracer_token is not None:
            _ACTIVE_TRACER.reset(self._tracer_token)
            self._tracer_token = None


def using_tracer(
    tracer: Tracer | None, context: SpanContext | None = None
) -> _UsingTracer:
    """Make *tracer* the ambient recording target for the body.

    Activations are per-context (thread/task), exactly like
    :func:`repro.perf.using_registry`.  *context* seeds the current span, so
    spans opened in the body become children of a span that lives in another
    process or thread -- the propagation half of the worker handshake.
    """
    return _UsingTracer(tracer, context)


class _NoopSpan:
    """Shared do-nothing span: the fast path when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span: context-manager recording a complete ("X") event."""

    __slots__ = (
        "_tracer", "_name", "_attrs", "context", "_parent_id",
        "_token", "_ts_us", "_started",
    )

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.context: SpanContext | None = None
        self._parent_id: str | None = None
        self._token: contextvars.Token | None = None
        self._ts_us = 0
        self._started = 0.0

    def __enter__(self) -> SpanContext:
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            trace_id = parent.trace_id
            self._parent_id = parent.span_id
        else:
            trace_id = _new_trace_id()
            self._tracer.last_trace_id = trace_id
        self.context = SpanContext(trace_id=trace_id, span_id=_new_span_id())
        self._token = _CURRENT_SPAN.set(self.context)
        self._ts_us = int(time.time() * 1_000_000)
        self._started = time.perf_counter()
        return self.context

    def __exit__(self, exc_type, *exc_info) -> None:
        duration_us = int((time.perf_counter() - self._started) * 1_000_000)
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        assert self.context is not None
        event: dict[str, Any] = {
            "name": self._name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self._parent_id,
            "ts_us": self._ts_us,
            "dur_us": duration_us,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self._attrs:
            event["attrs"] = self._attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        self._tracer.record(event)


def span(name: str, **attrs: Any):
    """Open a span named *name* under the ambient tracer.

    With no (or a disabled) ambient tracer this returns a shared no-op
    context manager -- one ``ContextVar.get`` and one attribute test, so
    instrumented hot paths stay within the disabled-overhead budget.  The
    live span yields its :class:`SpanContext` (``None`` from the no-op).
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None or not tracer.enabled:
        return _NOOP_SPAN
    return _Span(tracer, name, attrs)


# ---------------------------------------------------------------------- #
# export / import
# ---------------------------------------------------------------------- #
def write_jsonl(path: str | Path, events: list[dict[str, Any]]) -> None:
    """One header line plus one span event per line."""
    lines = [json.dumps({"schema": TRACE_SCHEMA})]
    lines.extend(json.dumps(event, sort_keys=True) for event in events)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def chrome_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
    """The Chrome trace-event (Perfetto-loadable) view of *events*."""
    trace_events = []
    for event in events:
        args = dict(event.get("attrs") or {})
        args["trace_id"] = event.get("trace_id")
        args["span_id"] = event.get("span_id")
        args["parent_id"] = event.get("parent_id")
        if "error" in event:
            args["error"] = event["error"]
        trace_events.append(
            {
                "name": event.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": event.get("ts_us", 0),
                "dur": event.get("dur_us", 0),
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "args": args,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
    }


def write_chrome(path: str | Path, events: list[dict[str, Any]]) -> None:
    Path(path).write_text(
        json.dumps(chrome_trace(events), indent=2) + "\n", encoding="utf-8"
    )


def _event_from_chrome(entry: dict[str, Any]) -> dict[str, Any]:
    args = entry.get("args") or {}
    event = {
        "name": entry.get("name", "?"),
        "trace_id": args.get("trace_id"),
        "span_id": args.get("span_id"),
        "parent_id": args.get("parent_id"),
        "ts_us": entry.get("ts", 0),
        "dur_us": entry.get("dur", 0),
        "pid": entry.get("pid", 0),
        "tid": entry.get("tid", 0),
    }
    attrs = {
        key: value
        for key, value in args.items()
        if key not in ("trace_id", "span_id", "parent_id")
    }
    if attrs:
        event["attrs"] = attrs
    return event


def read_trace_file(path: str | Path) -> list[dict[str, Any]]:
    """Load span events from either export format (JSONL or Chrome JSON)."""
    text = Path(path).read_text(encoding="utf-8")
    # both formats open with "{": a Chrome export is one JSON document,
    # a JSONL export only parses line by line -- so try the document first
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return [
                _event_from_chrome(entry)
                for entry in payload["traceEvents"]
                if isinstance(entry, dict)
            ]
        if set(payload) == {"schema"}:
            return []  # a JSONL export holding only its header line
        raise ValueError(f"{path}: not a trace export")
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError(f"{path}: JSONL line is not an object")
        if set(record) == {"schema"}:
            continue  # header line
        events.append(record)
    return events


def summarize(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a span list: traces, per-name counts/durations, roots."""
    traces: dict[str, int] = {}
    by_name: dict[str, dict[str, Any]] = {}
    span_ids = {event.get("span_id") for event in events}
    roots = 0
    orphans = 0
    for event in events:
        trace_id = event.get("trace_id") or "?"
        traces[trace_id] = traces.get(trace_id, 0) + 1
        name = event.get("name", "?")
        stat = by_name.setdefault(name, {"spans": 0, "total_us": 0, "max_us": 0})
        stat["spans"] += 1
        duration = int(event.get("dur_us") or 0)
        stat["total_us"] += duration
        stat["max_us"] = max(stat["max_us"], duration)
        parent = event.get("parent_id")
        if parent is None:
            roots += 1
        elif parent not in span_ids:
            orphans += 1
    return {
        "spans": len(events),
        "traces": dict(sorted(traces.items(), key=lambda kv: -kv[1])),
        "roots": roots,
        #: spans whose parent was not exported (e.g. rotated out of a ring)
        "orphans": orphans,
        "by_name": dict(
            sorted(by_name.items(), key=lambda kv: -kv[1]["total_us"])
        ),
    }


__all__ = [
    "DEFAULT_RING_EVENTS",
    "SpanContext",
    "TRACE_SCHEMA",
    "Tracer",
    "active_tracer",
    "chrome_trace",
    "current_context",
    "read_trace_file",
    "span",
    "summarize",
    "using_tracer",
    "write_chrome",
    "write_jsonl",
]
