"""Crash flight recorder: dump the recent trace timeline on trouble.

A :class:`FlightRecorder` owns a ``diagnostics/`` directory (conventionally
next to the result cache's ``corrupt/`` quarantine) and writes one JSON
dump per *trigger* -- a quarantined job, a fired fault plan, a server 5xx.
Each dump freezes whatever the active tracer's (ring) buffer holds at that
moment plus the triggering context, so an operator can go from "job X was
quarantined" or "request Y answered 503" straight to the span timeline that
led up to it: the returned ``{"trigger", "trace_id", "path"}`` record is
what the project report's resilience section and the 503 body echo.

Dumps are bounded (``max_dumps``, oldest kept -- the *first* failures of a
run are usually the informative ones) and best-effort: an unwritable
diagnostics directory must never turn an already-degraded run into a
failed one, so I/O errors are swallowed and counted.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from .trace import TRACE_SCHEMA, Tracer

#: schema tag of every flight-recorder dump file
FLIGHT_SCHEMA = "repro-flight/1"

#: default cap on dump files one recorder writes (oldest kept)
DEFAULT_MAX_DUMPS = 16

#: name of the dump directory, conventionally ``<cache root>/diagnostics``
DIAGNOSTICS_DIR = "diagnostics"

_SLUG = re.compile(r"[^a-zA-Z0-9_.-]+")


class FlightRecorder:
    """Writes bounded, best-effort trace dumps into one directory."""

    def __init__(
        self, directory: str | Path, max_dumps: int = DEFAULT_MAX_DUMPS
    ):
        self._directory = Path(directory)
        self._max_dumps = max(1, int(max_dumps))
        self._sequence = 0
        #: dumps suppressed by the cap or lost to I/O errors
        self.dropped = 0
        #: records of the dumps actually written
        self.dumps: list[dict[str, Any]] = []

    @property
    def directory(self) -> Path:
        return self._directory

    # ------------------------------------------------------------------ #
    def dump(
        self,
        trigger: str,
        *,
        tracer: Tracer | None = None,
        trace_id: str | None = None,
        detail: str | None = None,
        extra: dict[str, Any] | None = None,
    ) -> dict[str, Any] | None:
        """Write one dump; returns its ``{trigger, trace_id, path}`` record.

        Returns ``None`` when the dump was suppressed (cap reached) or
        could not be written.  ``trace_id`` defaults to the tracer's most
        recent root trace so a dump is attributable even when the
        triggering code did not thread a context through.
        """
        if len(self.dumps) >= self._max_dumps:
            self.dropped += 1
            return None
        events = tracer.events() if tracer is not None else []
        if trace_id is None and tracer is not None:
            trace_id = tracer.last_trace_id
        self._sequence += 1
        slug = _SLUG.sub("-", trigger).strip("-") or "trigger"
        path = self._directory / f"flight-{self._sequence:04d}-{slug[:48]}.json"
        payload: dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "trigger": trigger,
            "trace_id": trace_id,
            "detail": detail,
            "events_schema": TRACE_SCHEMA,
            "events": events,
        }
        if extra:
            payload["extra"] = extra
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
        except OSError:
            self.dropped += 1
            return None
        record = {
            "trigger": trigger,
            "trace_id": trace_id,
            "path": str(path),
        }
        self.dumps.append(record)
        return record


__all__ = [
    "DEFAULT_MAX_DUMPS",
    "DIAGNOSTICS_DIR",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
]
