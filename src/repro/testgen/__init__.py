"""Test-data generation: random, genetic, model-checking and the hybrid driver."""

from __future__ import annotations

from .genetic import (
    GeneticOptions,
    GeneticOutcome,
    GeneticStatistics,
    GeneticTestDataGenerator,
)
from .hybrid import (
    CoverageSource,
    HybridOptions,
    HybridTestDataGenerator,
    TargetReport,
    TestSuite,
)
from .inputs import InputSpace, InputVariable
from .modelcheck_gen import (
    ModelCheckGeneratorOptions,
    ModelCheckGeneratorStatistics,
    ModelCheckOutcome,
    ModelCheckingTestDataGenerator,
    TargetStatus,
)
from .random_gen import RandomTestDataGenerator
from .targets import CoverageTracker, PathTarget, build_targets

__all__ = [
    "GeneticOptions",
    "GeneticOutcome",
    "GeneticStatistics",
    "GeneticTestDataGenerator",
    "CoverageSource",
    "HybridOptions",
    "HybridTestDataGenerator",
    "TargetReport",
    "TestSuite",
    "InputSpace",
    "InputVariable",
    "ModelCheckGeneratorOptions",
    "ModelCheckGeneratorStatistics",
    "ModelCheckOutcome",
    "ModelCheckingTestDataGenerator",
    "TargetStatus",
    "RandomTestDataGenerator",
    "CoverageTracker",
    "PathTarget",
    "build_targets",
]
