"""Random test-data generation.

The cheapest heuristic: uniform sampling of the input space.  The hybrid
driver runs it first because for well-conditioned generated code a large share
of segment paths is hit by random data alone; the genetic algorithm then works
on what is left, and model checking finishes the job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .inputs import InputSpace


@dataclass
class RandomGeneratorStatistics:
    vectors_generated: int = 0


class RandomTestDataGenerator:
    """Seeded uniform random vector generator."""

    def __init__(self, input_space: InputSpace, seed: int = 0):
        self._space = input_space
        self._rng = random.Random(seed)
        self.statistics = RandomGeneratorStatistics()

    @property
    def input_space(self) -> InputSpace:
        return self._space

    def generate(self, count: int) -> list[dict[str, int]]:
        """Generate *count* random input vectors."""
        vectors = []
        for _ in range(count):
            vectors.append(self._space.random_vector(self._rng))
        self.statistics.vectors_generated += count
        return vectors

    def generate_unique(self, count: int, max_attempts_factor: int = 10) -> list[dict[str, int]]:
        """Generate up to *count* pairwise distinct vectors.

        Falls back to returning fewer vectors when the input space is smaller
        than requested (tiny case-study input spaces).
        """
        seen: set[tuple[tuple[str, int], ...]] = set()
        vectors: list[dict[str, int]] = []
        attempts = 0
        limit = count * max_attempts_factor
        while len(vectors) < count and attempts < limit:
            attempts += 1
            vector = self._space.random_vector(self._rng)
            key = tuple(sorted(vector.items()))
            if key in seen:
                continue
            seen.add(key)
            vectors.append(vector)
        self.statistics.vectors_generated += attempts
        return vectors
