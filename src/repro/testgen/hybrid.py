"""The hybrid test-data generation driver (heuristics first, model checking last).

Section 3 of the paper:

    "For this reason a hybrid approach has been chosen: first, test data are
    generated using heuristic methods (i.e. genetic algorithms) until a given
    coverage bound is reached.  A possible bound could be that no new paths
    have been reached with the last 10^6 generated data patterns. [...] In a
    second step the remaining test data are generated using model checking.
    If no data pattern is found for a selected path the path is deemed
    infeasible."

:class:`HybridTestDataGenerator` implements exactly that control loop:

1. random sampling until no new segment path is covered for
   ``plateau_patterns`` consecutive vectors,
2. one genetic-algorithm search per still-uncovered path target,
3. one model-checking query per target that the heuristics missed, yielding
   either a test vector or an infeasibility proof.

The resulting :class:`TestSuite` carries the vectors, the per-target
provenance (random / genetic / model checking / infeasible) and the statistics
the paper cites (the share of targets the heuristics covered, expected to be
above 90 %).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..hw.board import EvaluationBoard
from ..minic.semantic import AnalyzedProgram
from ..resilience import InjectedFault
from ..partition.segment import PartitionResult
from .genetic import GeneticOptions, GeneticTestDataGenerator
from .inputs import InputSpace
from .modelcheck_gen import (
    ModelCheckGeneratorOptions,
    ModelCheckingTestDataGenerator,
    TargetStatus,
)
from .random_gen import RandomTestDataGenerator
from .targets import CoverageTracker, PathTarget


class CoverageSource(enum.Enum):
    """How a path target was covered."""

    RANDOM = "random"
    GENETIC = "genetic"
    MODEL_CHECKING = "model-checking"
    INFEASIBLE = "infeasible"
    UNCOVERED = "uncovered"


@dataclass
class HybridOptions:
    """Budgets of the hybrid generation process."""

    #: stop the random phase after this many consecutive vectors without a
    #: newly covered path (the paper suggests 10^6; simulation is slower than
    #: silicon, so the default is smaller but plays the same role)
    plateau_patterns: int = 200
    #: hard cap on random vectors
    max_random_vectors: int = 2_000
    genetic: GeneticOptions = field(default_factory=GeneticOptions)
    model_checking: ModelCheckGeneratorOptions = field(
        default_factory=ModelCheckGeneratorOptions
    )
    #: random seed of the random phase
    seed: int = 0
    #: skip the genetic phase entirely (for experiments)
    use_genetic: bool = True
    #: skip the model-checking phase entirely (for experiments)
    use_model_checking: bool = True


@dataclass
class TargetReport:
    """Provenance of one path target."""

    target: PathTarget
    source: CoverageSource
    vector: dict[str, int] | None = None


@dataclass
class TestSuite:
    """The outcome of hybrid test-data generation."""

    function_name: str
    vectors: list[dict[str, int]] = field(default_factory=list)
    reports: list[TargetReport] = field(default_factory=list)
    random_vectors_used: int = 0
    genetic_evaluations: int = 0
    model_checking_queries: int = 0
    #: queries whose QueryBudget ran out (reported uncovered, pessimised)
    budget_exhausted_queries: int = 0
    #: queries where every engine stage died on an (injected) solver fault
    engine_fault_queries: int = 0
    #: query-engine counters (planned/sliced/cache_hits/escalations/...)
    mc_diagnostics: dict[str, int] = field(default_factory=dict)
    #: injected faults that cut a generation phase short (degradation
    #: diagnostics; the analyzer pessimises the bound when any occurred)
    fault_events: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def targets_by_source(self, source: CoverageSource) -> list[TargetReport]:
        return [report for report in self.reports if report.source is source]

    @property
    def infeasible_targets(self) -> list[TargetReport]:
        return self.targets_by_source(CoverageSource.INFEASIBLE)

    @property
    def uncovered_targets(self) -> list[TargetReport]:
        return self.targets_by_source(CoverageSource.UNCOVERED)

    @property
    def heuristic_share(self) -> float:
        """Fraction of feasible, covered targets found without model checking.

        The paper (citing Tracey et al.) expects heuristics to deliver more
        than 90 % of the required test cases.
        """
        heuristic = len(self.targets_by_source(CoverageSource.RANDOM)) + len(
            self.targets_by_source(CoverageSource.GENETIC)
        )
        exact = len(self.targets_by_source(CoverageSource.MODEL_CHECKING))
        total = heuristic + exact
        return heuristic / total if total else 1.0

    def is_complete(self) -> bool:
        """True when every target is covered or proven infeasible."""
        return not self.uncovered_targets

    def add_vector(self, vector: dict[str, int]) -> None:
        if vector not in self.vectors:
            self.vectors.append(dict(vector))

    def summary(self) -> dict[str, object]:
        return {
            "targets": len(self.reports),
            "vectors": len(self.vectors),
            "random": len(self.targets_by_source(CoverageSource.RANDOM)),
            "genetic": len(self.targets_by_source(CoverageSource.GENETIC)),
            "model_checking": len(self.targets_by_source(CoverageSource.MODEL_CHECKING)),
            "infeasible": len(self.infeasible_targets),
            "uncovered": len(self.uncovered_targets),
            "budget_exhausted": self.budget_exhausted_queries,
            "heuristic_share": round(self.heuristic_share, 3),
        }


class HybridTestDataGenerator:
    """Runs the three-phase test-data generation process."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        function_name: str,
        board: EvaluationBoard,
        partition: PartitionResult,
        cfg: ControlFlowGraph,
        options: HybridOptions | None = None,
    ):
        self._analyzed = analyzed
        self._function = function_name
        self._board = board
        self._partition = partition
        self._cfg = cfg
        self._options = options or HybridOptions()
        self._space = InputSpace.from_program(analyzed, function_name)

    # ------------------------------------------------------------------ #
    @property
    def input_space(self) -> InputSpace:
        return self._space

    def generate(self) -> TestSuite:
        """Run all three phases and return the complete test suite."""
        coverage = CoverageTracker.create(self._partition, self._cfg)
        suite = TestSuite(function_name=self._function)

        # an injected fault (a crashed interpreter run, a dying solver) cuts
        # the phase it hit short but never aborts generation: whatever the
        # remaining phases cover still improves the suite, uncovered targets
        # keep their pessimistic static charge, and the analyzer floors the
        # whole bound once any fault fired
        phases = [("random", lambda: self._random_phase(coverage, suite))]
        if self._options.use_genetic:
            phases.append(("genetic", lambda: self._genetic_phase(coverage, suite)))
        if self._options.use_model_checking:
            phases.append(
                ("model-checking", lambda: self._model_checking_phase(coverage, suite))
            )
        for phase_name, phase in phases:
            try:
                phase()
            except InjectedFault as fault:
                suite.fault_events.append(
                    f"{phase_name} phase cut short by injected fault: {fault}"
                )

        # final bookkeeping: record provenance of targets covered in phase 1/2
        reported = {report.target.key for report in suite.reports}
        for target in coverage.targets:
            if target.key in reported:
                continue
            vector = coverage.covering_vector(target)
            if vector is not None:
                suite.reports.append(
                    TargetReport(target=target, source=CoverageSource.RANDOM, vector=vector)
                )
            else:
                suite.reports.append(
                    TargetReport(target=target, source=CoverageSource.UNCOVERED)
                )
        return suite

    # ------------------------------------------------------------------ #
    def _random_phase(self, coverage: CoverageTracker, suite: TestSuite) -> None:
        generator = RandomTestDataGenerator(self._space, seed=self._options.seed)
        without_progress = 0
        produced = 0
        while (
            produced < self._options.max_random_vectors
            and without_progress < self._options.plateau_patterns
            and not coverage.is_complete()
        ):
            vector = generator.generate(1)[0]
            produced += 1
            run = self._board.run(self._function, vector)
            newly = coverage.record_run(run)
            if newly:
                without_progress = 0
                suite.add_vector(vector)
                for target in newly:
                    suite.reports.append(
                        TargetReport(
                            target=target, source=CoverageSource.RANDOM, vector=dict(vector)
                        )
                    )
            else:
                without_progress += 1
        suite.random_vectors_used = produced

    def _genetic_phase(self, coverage: CoverageTracker, suite: TestSuite) -> None:
        generator = GeneticTestDataGenerator(
            self._board, self._function, self._space, self._options.genetic
        )
        seeds = [dict(vector) for vector in suite.vectors]
        for target in list(coverage.uncovered_targets()):
            if target.key in {r.target.key for r in suite.reports}:
                continue
            if coverage.covering_vector(target) is not None:
                continue
            outcome = generator.search(target, coverage=coverage, seed_vectors=seeds)
            if outcome.covered and outcome.vector is not None:
                suite.add_vector(outcome.vector)
                suite.reports.append(
                    TargetReport(
                        target=target, source=CoverageSource.GENETIC, vector=outcome.vector
                    )
                )
        suite.genetic_evaluations = generator.statistics.evaluations

    def _model_checking_phase(self, coverage: CoverageTracker, suite: TestSuite) -> None:
        generator = ModelCheckingTestDataGenerator(
            self._analyzed, self._function, self._options.model_checking
        )
        # one query plan for every remaining target: shared path prefixes are
        # probed once and witnesses found for one target answer its siblings
        targets = list(coverage.uncovered_targets())
        for outcome in generator.generate_for_targets(targets):
            target = outcome.target
            if outcome.status is TargetStatus.COVERED and outcome.vector is not None:
                vector = self._space.clamp(outcome.vector)
                suite.add_vector(vector)
                suite.reports.append(
                    TargetReport(
                        target=target, source=CoverageSource.MODEL_CHECKING, vector=vector
                    )
                )
                # replay the witness so the coverage tracker (and later the
                # measurement campaign) sees the newly covered path
                run = self._board.run(self._function, vector)
                coverage.record_run(run)
            elif outcome.status is TargetStatus.INFEASIBLE:
                suite.reports.append(
                    TargetReport(target=target, source=CoverageSource.INFEASIBLE)
                )
            else:
                # UNKNOWN, BUDGET_EXHAUSTED and ENGINE_FAULT all pessimise:
                # the target stays uncovered, the segment keeps its static
                # charge
                suite.reports.append(
                    TargetReport(target=target, source=CoverageSource.UNCOVERED)
                )
        suite.model_checking_queries = generator.statistics.queries
        suite.budget_exhausted_queries = generator.statistics.budget_exhausted
        suite.engine_fault_queries = generator.statistics.engine_faults
        suite.mc_diagnostics = generator.query_diagnostics()
