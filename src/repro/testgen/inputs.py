"""Input-space model for test-data generation.

The analysis inputs are the variables annotated with ``#pragma input`` (plus
the parameters of the analysed function).  Their value ranges come from
``#pragma range`` annotations when present ("the code generator will have this
information from the MatLab/Simulink model in most of the cases",
Section 3.2.4) and fall back to the declared C type's range otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..minic.semantic import AnalyzedProgram
from ..minic.types import IntRange


@dataclass(frozen=True)
class InputVariable:
    """One analysis input."""

    name: str
    value_range: IntRange

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.value_range.lo, self.value_range.hi)


@dataclass
class InputSpace:
    """The set of input variables and their ranges."""

    variables: list[InputVariable] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_program(cls, analyzed: AnalyzedProgram, function_name: str) -> "InputSpace":
        table = analyzed.table(function_name)
        variables: list[InputVariable] = []
        for name in table.inputs:
            symbol = table.variables[name]
            value_range = (
                symbol.declared_range
                if symbol.declared_range is not None
                else symbol.ctype.value_range()
            )
            variables.append(InputVariable(name=name, value_range=value_range))
        return cls(variables=variables)

    # ------------------------------------------------------------------ #
    @property
    def names(self) -> list[str]:
        return [variable.name for variable in self.variables]

    def ranges(self) -> dict[str, IntRange]:
        return {variable.name: variable.value_range for variable in self.variables}

    def size(self) -> int:
        """Number of distinct input vectors (saturating at 2**63)."""
        total = 1
        for variable in self.variables:
            total *= variable.value_range.size()
            if total > 2**63:
                return 2**63
        return total

    def random_vector(self, rng: random.Random) -> dict[str, int]:
        return {variable.name: variable.sample(rng) for variable in self.variables}

    def clamp(self, vector: dict[str, int]) -> dict[str, int]:
        clamped: dict[str, int] = {}
        for variable in self.variables:
            value = vector.get(variable.name, variable.value_range.lo)
            clamped[variable.name] = variable.value_range.clamp(value)
        return clamped

    def mutate(
        self, vector: dict[str, int], rng: random.Random, mutation_rate: float = 0.3
    ) -> dict[str, int]:
        """Return a mutated copy of *vector*.

        Three mutation flavours, chosen uniformly per mutated gene: a full
        random reset (exploration), a proportional jump (coarse search) and a
        +/- 1..4 nudge (the local search that lets the branch-distance
        gradient close the final gap to an equality condition).
        """
        mutated = dict(vector)
        for variable in self.variables:
            if rng.random() >= mutation_rate:
                continue
            choice = rng.random()
            if choice < 1.0 / 3.0:
                mutated[variable.name] = variable.sample(rng)
            elif choice < 2.0 / 3.0:
                span = max(1, variable.value_range.size() // 16)
                delta = rng.randint(-span, span)
                mutated[variable.name] = variable.value_range.clamp(
                    mutated[variable.name] + delta
                )
            else:
                delta = rng.choice([-4, -3, -2, -1, 1, 2, 3, 4])
                mutated[variable.name] = variable.value_range.clamp(
                    mutated[variable.name] + delta
                )
        return mutated

    def crossover(
        self, left: dict[str, int], right: dict[str, int], rng: random.Random
    ) -> dict[str, int]:
        """Uniform crossover of two vectors."""
        child: dict[str, int] = {}
        for variable in self.variables:
            source = left if rng.random() < 0.5 else right
            child[variable.name] = source.get(variable.name, variable.value_range.lo)
        return child
