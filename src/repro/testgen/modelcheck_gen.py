"""Model-checking test-data generation (the paper's exact phase).

    "A method of generating test data is model checking [...].  If there
    exists a test data pattern that leads to the execution of a distinct path
    it will always be found with model checking. [...] If no data pattern is
    found for a selected path the path is deemed infeasible." (Section 3)

For every requested path target the generator

1. builds an optimised model of the analysed function (all state-space
   optimisations except dead-*code* elimination, which could remove the very
   statements the path runs through),
2. asks the model checker for a counterexample that traverses the target's
   CFG edges in order, and
3. reports the witness inputs, a proof of infeasibility, or "unknown" when
   the engine ran out of budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..minic.folding import expression_variables
from ..minic.semantic import AnalyzedProgram
from ..mc.checker import EngineKind, ModelChecker, ModelCheckerOptions
from ..mc.result import CheckStatistics, Verdict
from ..optim.pipeline import OptimizationConfig, build_optimized_model
from .targets import PathTarget


class TargetStatus(enum.Enum):
    """Outcome of the model-checking attempt for one path target."""

    COVERED = "covered"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"


@dataclass
class ModelCheckOutcome:
    """Result of one model-checking query for one target path."""

    target: PathTarget
    status: TargetStatus
    vector: dict[str, int] | None = None
    statistics: CheckStatistics | None = None


@dataclass
class ModelCheckGeneratorStatistics:
    queries: int = 0
    covered: int = 0
    infeasible: int = 0
    unknown: int = 0
    total_time_seconds: float = 0.0


@dataclass
class ModelCheckGeneratorOptions:
    """Configuration of the model-checking generator."""

    optimizations: OptimizationConfig = field(
        default_factory=OptimizationConfig.cfg_preserving
    )
    engine: EngineKind = EngineKind.AUTO
    checker: ModelCheckerOptions | None = None


class ModelCheckingTestDataGenerator:
    """Generates test data for individual path targets via reachability."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        function_name: str,
        options: ModelCheckGeneratorOptions | None = None,
    ):
        self._analyzed = analyzed
        self._function = function_name
        self._options = options or ModelCheckGeneratorOptions()
        self.statistics = ModelCheckGeneratorStatistics()
        self._checker_cache: dict[frozenset[str], ModelChecker] = {}

    # ------------------------------------------------------------------ #
    def generate_for_target(self, target: PathTarget) -> ModelCheckOutcome:
        """Find test data forcing execution along *target* (or prove infeasibility)."""
        checker = self._checker_for(self._protected_variables(target))
        result = checker.find_test_data_for_edge_sequence(list(target.edges))
        self.statistics.queries += 1
        self.statistics.total_time_seconds += result.statistics.time_seconds
        if result.verdict is Verdict.REACHABLE and result.counterexample is not None:
            self.statistics.covered += 1
            return ModelCheckOutcome(
                target=target,
                status=TargetStatus.COVERED,
                vector=dict(result.counterexample.inputs),
                statistics=result.statistics,
            )
        if result.verdict is Verdict.UNREACHABLE:
            self.statistics.infeasible += 1
            return ModelCheckOutcome(
                target=target, status=TargetStatus.INFEASIBLE, statistics=result.statistics
            )
        self.statistics.unknown += 1
        return ModelCheckOutcome(
            target=target, status=TargetStatus.UNKNOWN, statistics=result.statistics
        )

    def generate_for_targets(self, targets: list[PathTarget]) -> list[ModelCheckOutcome]:
        return [self.generate_for_target(target) for target in targets]

    # ------------------------------------------------------------------ #
    def _protected_variables(self, target: PathTarget) -> frozenset[str]:
        """Variables the target path's decisions read (must survive optimisation).

        Dead-variable elimination only removes variables that influence *no*
        branch, so in principle nothing on a path can depend on them; keeping
        the variables read by the path's own branch blocks is a defensive
        guarantee that the optimised model can still express the path.
        """
        cfg = None
        try:
            from ..cfg.builder import build_cfg

            cfg = build_cfg(self._analyzed.program.function(self._function))
        except Exception:  # pragma: no cover - defensive
            return frozenset()
        protected: set[str] = set()
        for block_id in target.blocks:
            try:
                block = cfg.block(block_id)
            except Exception:  # pragma: no cover - stale target
                continue
            if block.terminator.condition is not None:
                protected |= expression_variables(block.terminator.condition)
        return frozenset(protected)

    def _checker_for(self, protected: frozenset[str]) -> ModelChecker:
        if protected in self._checker_cache:
            return self._checker_cache[protected]
        model = build_optimized_model(
            self._analyzed,
            self._function,
            self._options.optimizations,
            keep_variables=protected,
        )
        checker_options = self._options.checker or ModelCheckerOptions(
            engine=self._options.engine
        )
        checker = ModelChecker(model.translation, checker_options)
        self._checker_cache[protected] = checker
        return checker
