"""Model-checking test-data generation (the paper's exact phase).

    "A method of generating test data is model checking [...].  If there
    exists a test data pattern that leads to the execution of a distinct path
    it will always be found with model checking. [...] If no data pattern is
    found for a selected path the path is deemed infeasible." (Section 3)

Since the query-engine refactor the generator builds **one** optimised
model per function (protecting the control-relevant variables computed by
:mod:`repro.analysis.relevance`, which is what the old per-target
"protected variables" re-translation guaranteed) and batches every path
target into a single :class:`~repro.mc.query.QueryPlan`: shared path
prefixes are probed once, witnesses found for one target answer sibling
targets, and every query runs under the configured
:class:`~repro.mc.query.QueryBudget` with cone-of-influence slicing.  A
target whose budget runs out is reported as
:attr:`TargetStatus.BUDGET_EXHAUSTED` -- the WCET layer keeps its
pessimistic charge instead of hanging.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..analysis.relevance import control_relevant_variables
from ..cfg.builder import build_cfg
from ..minic.semantic import AnalyzedProgram
from ..mc.checker import ModelChecker, ModelCheckerOptions
from ..mc.query import PROBE_POLICY_ADAPTIVE, EngineKind, QueryBudget, QueryPlan
from ..mc.result import CheckResult, CheckStatistics, Verdict
from ..optim.pipeline import OptimizationConfig, build_optimized_model
from .targets import PathTarget


class TargetStatus(enum.Enum):
    """Outcome of the model-checking attempt for one path target."""

    COVERED = "covered"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"
    BUDGET_EXHAUSTED = "budget-exhausted"
    #: every engine stage died on an (injected) solver fault; the target
    #: stays uncovered and its segment keeps the pessimistic static charge
    ENGINE_FAULT = "engine-fault"


@dataclass
class ModelCheckOutcome:
    """Result of one model-checking query for one target path."""

    target: PathTarget
    status: TargetStatus
    vector: dict[str, int] | None = None
    statistics: CheckStatistics | None = None


@dataclass
class ModelCheckGeneratorStatistics:
    queries: int = 0
    covered: int = 0
    infeasible: int = 0
    unknown: int = 0
    budget_exhausted: int = 0
    engine_faults: int = 0
    total_time_seconds: float = 0.0


@dataclass
class ModelCheckGeneratorOptions:
    """Configuration of the model-checking generator."""

    optimizations: OptimizationConfig = field(
        default_factory=OptimizationConfig.cfg_preserving
    )
    engine: EngineKind = EngineKind.AUTO
    checker: ModelCheckerOptions | None = None
    #: step/solver-call/deadline limits of every reachability query
    budget: QueryBudget = field(default_factory=QueryBudget)
    #: per-goal cone-of-influence slicing (``--no-slicing`` disables it)
    slicing: bool = True
    #: prefix-probe policy of the query plan: "adaptive" (payoff heuristic)
    #: or "fixed" (the historical >= 3-sharers threshold)
    probe_policy: str = PROBE_POLICY_ADAPTIVE
    #: optional sound static prefilter handed down to the query engine
    #: (see :class:`repro.sa.feasibility.StaticPrefilter`)
    prefilter: object | None = None


class ModelCheckingTestDataGenerator:
    """Generates test data for path targets via planned reachability queries."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        function_name: str,
        options: ModelCheckGeneratorOptions | None = None,
    ):
        self._analyzed = analyzed
        self._function = function_name
        self._options = options or ModelCheckGeneratorOptions()
        self.statistics = ModelCheckGeneratorStatistics()
        self._checker: ModelChecker | None = None

    # ------------------------------------------------------------------ #
    def generate_for_target(self, target: PathTarget) -> ModelCheckOutcome:
        """Find test data forcing execution along *target* (or prove infeasibility)."""
        return self.generate_for_targets([target])[0]

    def generate_for_targets(self, targets: list[PathTarget]) -> list[ModelCheckOutcome]:
        """Answer all *targets* through one shared query plan.

        Batching is what enables the cross-target optimisations: prefix
        probes, witness reuse and the per-(slice, goal) memo all live on the
        query engine shared by the batch (and by later batches -- the
        checker persists across calls).
        """
        if not targets:
            return []
        checker = self._checker_instance()
        plan = QueryPlan.build(
            [
                (target.key, checker.goal_for_edge_sequence(list(target.edges)))
                for target in targets
            ],
            probe_policy=self._options.probe_policy,
        )
        results = checker.run_plan(plan)
        return [self._outcome(target, results[target.key]) for target in targets]

    def query_diagnostics(self) -> dict[str, int]:
        """Planner counters (planned/sliced/cache_hits/escalations/...)."""
        if self._checker is None:
            return {}
        return self._checker.query_engine.stats.as_dict()

    # ------------------------------------------------------------------ #
    def _checker_instance(self) -> ModelChecker:
        """The one checker of this generator (one optimised model, reused).

        The control-relevant variable set (backward closure over all branch
        conditions, :func:`control_relevant_variables`) is protected from
        dead-code elimination, which subsumes the old per-target
        "protected variables" guarantee: every variable any target path's
        decisions read is control-relevant by definition.
        """
        if self._checker is not None:
            return self._checker
        cfg = build_cfg(self._analyzed.program.function(self._function))
        protected = control_relevant_variables(cfg)
        model = build_optimized_model(
            self._analyzed,
            self._function,
            self._options.optimizations,
            keep_variables=protected,
        )
        checker_options = self._options.checker or ModelCheckerOptions(
            engine=self._options.engine,
            budget=self._options.budget,
            slicing=self._options.slicing,
            prefilter=self._options.prefilter,
        )
        if (
            checker_options.prefilter is None
            and self._options.prefilter is not None
        ):
            from dataclasses import replace as dc_replace

            checker_options = dc_replace(
                checker_options, prefilter=self._options.prefilter
            )
        self._checker = ModelChecker(model.translation, checker_options)
        return self._checker

    def _outcome(self, target: PathTarget, result: CheckResult) -> ModelCheckOutcome:
        self.statistics.queries += 1
        self.statistics.total_time_seconds += result.statistics.time_seconds
        if result.verdict is Verdict.REACHABLE and result.counterexample is not None:
            self.statistics.covered += 1
            return ModelCheckOutcome(
                target=target,
                status=TargetStatus.COVERED,
                vector=dict(result.counterexample.inputs),
                statistics=result.statistics,
            )
        if result.verdict is Verdict.UNREACHABLE:
            self.statistics.infeasible += 1
            return ModelCheckOutcome(
                target=target, status=TargetStatus.INFEASIBLE, statistics=result.statistics
            )
        if result.verdict is Verdict.BUDGET_EXHAUSTED:
            self.statistics.budget_exhausted += 1
            return ModelCheckOutcome(
                target=target,
                status=TargetStatus.BUDGET_EXHAUSTED,
                statistics=result.statistics,
            )
        if result.verdict is Verdict.ENGINE_FAULT:
            self.statistics.engine_faults += 1
            return ModelCheckOutcome(
                target=target,
                status=TargetStatus.ENGINE_FAULT,
                statistics=result.statistics,
            )
        self.statistics.unknown += 1
        return ModelCheckOutcome(
            target=target, status=TargetStatus.UNKNOWN, statistics=result.statistics
        )
