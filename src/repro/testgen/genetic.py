"""Genetic-algorithm test-data generation (the paper's heuristic phase).

Section 3 of the paper: "first, test data are generated using heuristic
methods (i.e. genetic algorithms) until a given coverage bound is reached"
and, citing Tracey et al. [11], "we expect heuristic methods to generate more
than 90% of the required test cases".

The GA here is the standard search-based-testing setup:

* an individual is an input vector;
* the fitness of an individual w.r.t. a target path combines the *approach
  level* (how many blocks of the target path the execution matched before
  diverging) with the *normalised branch distance* at the point of divergence
  (how close the diverging condition was to going the required way), using the
  branch distances the instrumented interpreter reports;
* tournament selection, uniform crossover, per-gene mutation and elitism.

The GA runs per target path; the hybrid driver gives it a budget and falls
back to model checking for whatever remains uncovered.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..hw.board import EvaluationBoard
from ..hw.interpreter import RunResult
from .inputs import InputSpace
from .targets import CoverageTracker, PathTarget


@dataclass
class GeneticOptions:
    """GA hyper-parameters."""

    population_size: int = 30
    max_generations: int = 40
    tournament_size: int = 3
    mutation_rate: float = 0.3
    crossover_rate: float = 0.8
    elitism: int = 2
    seed: int = 1


@dataclass
class GeneticStatistics:
    evaluations: int = 0
    generations: int = 0
    targets_attempted: int = 0
    targets_covered: int = 0


@dataclass
class GeneticOutcome:
    """Result of one GA search for one target path."""

    target: PathTarget
    covered: bool
    vector: dict[str, int] | None = None
    best_fitness: float = float("inf")
    evaluations: int = 0


@dataclass
class _Individual:
    vector: dict[str, int]
    fitness: float = float("inf")
    run: RunResult | None = field(default=None, repr=False)


class GeneticTestDataGenerator:
    """Search-based test-data generation for individual path targets."""

    def __init__(
        self,
        board: EvaluationBoard,
        function_name: str,
        input_space: InputSpace,
        options: GeneticOptions | None = None,
    ):
        self._board = board
        self._function = function_name
        self._space = input_space
        self._options = options or GeneticOptions()
        self._rng = random.Random(self._options.seed)
        self.statistics = GeneticStatistics()
        #: per-target guidance paths: block sequence from the function entry
        #: through the target path, plus the CFG edge taken at every step
        self._guidance_cache: dict[tuple, tuple[tuple[int, ...], dict[int, tuple[int, str]]]] = {}

    # ------------------------------------------------------------------ #
    def search(
        self,
        target: PathTarget,
        coverage: CoverageTracker | None = None,
        seed_vectors: list[dict[str, int]] | None = None,
    ) -> GeneticOutcome:
        """Search for an input vector driving execution along *target*.

        ``coverage`` (when given) is updated with every evaluated run, so the
        GA's by-products (other targets covered accidentally) are not lost.
        """
        options = self._options
        self.statistics.targets_attempted += 1
        outcome = GeneticOutcome(target=target, covered=False)

        population = self._initial_population(seed_vectors)
        for individual in population:
            self._evaluate(individual, target, coverage, outcome)
            if individual.fitness == 0.0:
                return self._finish(outcome, individual)

        for generation in range(options.max_generations):
            self.statistics.generations += 1
            population.sort(key=lambda ind: ind.fitness)
            next_population: list[_Individual] = population[: options.elitism]
            while len(next_population) < options.population_size:
                parent_a = self._tournament(population)
                parent_b = self._tournament(population)
                if self._rng.random() < options.crossover_rate:
                    child_vector = self._space.crossover(
                        parent_a.vector, parent_b.vector, self._rng
                    )
                else:
                    child_vector = dict(parent_a.vector)
                child_vector = self._space.mutate(
                    child_vector, self._rng, options.mutation_rate
                )
                child = _Individual(vector=self._space.clamp(child_vector))
                self._evaluate(child, target, coverage, outcome)
                if child.fitness == 0.0:
                    return self._finish(outcome, child)
                next_population.append(child)
            population = next_population
            del generation
        population.sort(key=lambda ind: ind.fitness)
        outcome.best_fitness = population[0].fitness if population else float("inf")
        return outcome

    # ------------------------------------------------------------------ #
    def _initial_population(
        self, seed_vectors: list[dict[str, int]] | None
    ) -> list[_Individual]:
        population: list[_Individual] = []
        for vector in seed_vectors or []:
            population.append(_Individual(vector=self._space.clamp(vector)))
            if len(population) >= self._options.population_size:
                break
        while len(population) < self._options.population_size:
            population.append(_Individual(vector=self._space.random_vector(self._rng)))
        return population

    def _tournament(self, population: list[_Individual]) -> _Individual:
        contenders = self._rng.sample(
            population, min(self._options.tournament_size, len(population))
        )
        return min(contenders, key=lambda ind: ind.fitness)

    def _finish(self, outcome: GeneticOutcome, winner: _Individual) -> GeneticOutcome:
        outcome.covered = True
        outcome.vector = dict(winner.vector)
        outcome.best_fitness = 0.0
        self.statistics.targets_covered += 1
        return outcome

    # ------------------------------------------------------------------ #
    # fitness
    # ------------------------------------------------------------------ #
    def _evaluate(
        self,
        individual: _Individual,
        target: PathTarget,
        coverage: CoverageTracker | None,
        outcome: GeneticOutcome,
    ) -> None:
        run = self._board.run(self._function, individual.vector)
        self.statistics.evaluations += 1
        outcome.evaluations += 1
        individual.run = run
        individual.fitness = self.fitness(run, target)
        if coverage is not None:
            coverage.record_run(run)

    def fitness(self, run: RunResult, target: PathTarget) -> float:
        """Approach level + normalised branch distance (lower is better, 0 = hit).

        The approach level is computed against a *guidance path*: one acyclic
        CFG path from the function entry to the target segment, extended by
        the target's own block sequence.  Matching is subsequence-based, so
        detours through unrelated code do not distort the level; the branch
        distance of the decision where execution left the guidance path
        provides the fine-grained gradient (Tracey-style objective).
        """
        guidance, desired_edges = self._guidance(target)
        executed = run.executed_blocks
        matched = 0
        position = 0
        for block in executed:
            if matched < len(guidance) and block == guidance[matched]:
                matched += 1
            position += 1
        if matched == len(guidance):
            return 0.0
        approach = len(guidance) - matched
        diverged_at = guidance[matched - 1] if matched > 0 else None
        return float(approach) + self._divergence_distance(
            run, target, diverged_at, desired_edges
        )

    def _guidance(
        self, target: PathTarget
    ) -> tuple[tuple[int, ...], dict[int, tuple[int, str]]]:
        """Guidance path and desired outgoing edge per guidance block."""
        key = target.key
        if key in self._guidance_cache:
            return self._guidance_cache[key]
        cfg = self._board.cfg(self._function)
        from ..cfg.graph import EdgeKind

        # BFS from the entry block to the target's entry block (forward edges)
        start = cfg.entry.block_id
        goal = target.blocks[0]
        parents: dict[int, tuple[int, str]] = {}
        queue = deque([start])
        seen = {start}
        while queue:
            current = queue.popleft()
            if current == goal:
                break
            for edge in cfg.out_edges(current):
                if edge.kind is EdgeKind.BACK or edge.target in seen:
                    continue
                seen.add(edge.target)
                parents[edge.target] = (current, edge.kind.value)
                queue.append(edge.target)
        prefix: list[int] = []
        desired: dict[int, tuple[int, str]] = {}
        if goal in parents or goal == start:
            node = goal
            while node != start:
                previous, kind = parents[node]
                prefix.append(previous)
                desired[previous] = (node, kind)
                node = previous
            prefix.reverse()
        # drop the virtual entry block from the guidance sequence
        prefix = [block for block in prefix if block != cfg.entry.block_id]
        guidance = tuple(prefix) + tuple(target.blocks)
        for source, target_block, kind in target.edges:
            desired.setdefault(source, (target_block, kind))
        result = (guidance, desired)
        self._guidance_cache[key] = result
        return result

    def _divergence_distance(
        self,
        run: RunResult,
        target: PathTarget,
        diverged_at: int | None,
        desired_edges: dict[int, tuple[int, str]] | None = None,
    ) -> float:
        """Normalised distance of the diverging decision toward the desired edge."""
        if diverged_at is None:
            return 0.999
        desired_kind: str | None = None
        if desired_edges and diverged_at in desired_edges:
            desired_kind = desired_edges[diverged_at][1]
        else:
            for source, target_block, kind in target.edges:
                del target_block
                if source == diverged_at:
                    desired_kind = kind
                    break
        # two-way branches: use the recorded branch distances
        for event in reversed(run.branch_events):
            if event.block_id == diverged_at:
                if desired_kind == "true" or desired_kind == "back":
                    distance = event.distance_true
                elif desired_kind == "false":
                    distance = event.distance_false
                else:
                    distance = min(event.distance_true, event.distance_false)
                return _normalise(distance)
        # switch dispatches: distance between the scrutinee value and the label
        for event in reversed(run.switch_events):
            if event.block_id == diverged_at:
                desired_values = self._case_values(target, diverged_at, desired_edges)
                if desired_values:
                    distance = min(abs(event.value - v) for v in desired_values)
                    return _normalise(float(distance))
                return 0.5
        return 0.999

    def _case_values(
        self,
        target: PathTarget,
        block_id: int,
        desired_edges: dict[int, tuple[int, str]] | None = None,
    ) -> tuple[int, ...]:
        """Case-label values of the switch edge the guidance path takes at *block_id*."""
        cfg = self._board.cfg(self._function)
        wanted_target: int | None = None
        if desired_edges and block_id in desired_edges:
            wanted_target = desired_edges[block_id][0]
        else:
            for source, target_block, kind in target.edges:
                if source == block_id and kind == "case":
                    wanted_target = target_block
                    break
        if wanted_target is None:
            return ()
        for edge in cfg.out_edges(block_id):
            if edge.target == wanted_target and edge.kind.value == "case":
                return tuple(edge.case_values)
        return ()


def _normalise(distance: float) -> float:
    """Map a branch distance into [0, 1) (Tracey-style normalisation)."""
    if distance <= 0.0:
        return 0.0
    return distance / (distance + 1.0)
