"""Coverage targets: the paths of every program segment.

"From the static code analysis performed during the control flow partitioning
the paths to be measured are known." (Section 3)  A :class:`PathTarget` is one
such path: the block sequence through one program segment, together with the
CFG edges that realise it (the model-checking generator needs the edges, the
coverage bookkeeping needs the blocks).

:class:`CoverageTracker` matches executed runs against the targets using the
same block-sequence extraction as the measurement subsystem, so "covered"
always means "a measurement for this segment path exists".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..cfg.paths import enumerate_paths
from ..hw.interpreter import RunResult
from ..partition.segment import PartitionResult, ProgramSegment


@dataclass(frozen=True)
class PathTarget:
    """One path of one program segment that needs a measurement."""

    segment_id: int
    #: block ids inside the segment, in execution order (the coverage key)
    blocks: tuple[int, ...]
    #: CFG edges realising the path: (source, target, kind value), including
    #: the edge that leaves the segment (when one exists)
    edges: tuple[tuple[int, int, str], ...]

    @property
    def key(self) -> tuple[int, tuple[int, ...]]:
        return (self.segment_id, self.blocks)

    def describe(self) -> str:
        return (
            f"segment {self.segment_id}: "
            + " -> ".join(str(b) for b in self.blocks)
        )


def build_targets(
    partition: PartitionResult, cfg: ControlFlowGraph, path_limit: int = 10_000
) -> list[PathTarget]:
    """Enumerate every path of every segment of *partition*."""
    targets: list[PathTarget] = []
    for segment in partition.segments:
        targets.extend(_segment_targets(segment, cfg, path_limit))
    return targets


def _segment_targets(
    segment: ProgramSegment, cfg: ControlFlowGraph, path_limit: int
) -> list[PathTarget]:
    region = set(segment.block_ids)
    targets: list[PathTarget] = []
    seen: set[tuple[int, ...]] = set()
    for path in enumerate_paths(
        cfg, source=segment.entry_block, region=region, limit=path_limit
    ):
        inside = tuple(block for block in path.blocks if block in region)
        if not inside or inside in seen:
            continue
        seen.add(inside)
        edges = tuple(
            (edge.source, edge.target, edge.kind.value) for edge in path.edges
        )
        targets.append(PathTarget(segment_id=segment.segment_id, blocks=inside, edges=edges))
    return targets


@dataclass
class CoverageTracker:
    """Tracks which path targets have been exercised by which test vector."""

    partition: PartitionResult
    cfg: ControlFlowGraph
    targets: list[PathTarget] = field(default_factory=list)
    covered: dict[tuple[int, tuple[int, ...]], dict[str, int]] = field(default_factory=dict)

    @classmethod
    def create(cls, partition: PartitionResult, cfg: ControlFlowGraph) -> "CoverageTracker":
        return cls(partition=partition, cfg=cfg, targets=build_targets(partition, cfg))

    # ------------------------------------------------------------------ #
    def record_run(self, run: RunResult) -> list[PathTarget]:
        """Record one executed run; return the targets it covered for the first time."""
        newly_covered: list[PathTarget] = []
        executed = run.executed_blocks
        for segment in self.partition.segments:
            observed = self._segment_path(segment, executed)
            if not observed:
                continue
            key = (segment.segment_id, observed)
            if key in self.covered:
                continue
            target = self._target_for(key)
            if target is None:
                continue
            self.covered[key] = dict(run.inputs)
            newly_covered.append(target)
        return newly_covered

    def _segment_path(
        self, segment: ProgramSegment, executed: list[int]
    ) -> tuple[int, ...]:
        """The first traversal of *segment* in the executed block sequence."""
        inside: list[int] = []
        started = False
        for block_id in executed:
            if not started:
                if block_id == segment.entry_block:
                    started = True
                    inside.append(block_id)
                continue
            if block_id in segment.block_ids:
                inside.append(block_id)
            else:
                break
        return tuple(inside)

    def _target_for(self, key: tuple[int, tuple[int, ...]]) -> PathTarget | None:
        for target in self.targets:
            if target.key == key:
                return target
        return None

    # ------------------------------------------------------------------ #
    def uncovered_targets(self) -> list[PathTarget]:
        return [target for target in self.targets if target.key not in self.covered]

    def coverage_ratio(self) -> float:
        if not self.targets:
            return 1.0
        return len([t for t in self.targets if t.key in self.covered]) / len(self.targets)

    def is_complete(self) -> bool:
        return not self.uncovered_targets()

    def covering_vector(self, target: PathTarget) -> dict[str, int] | None:
        return self.covered.get(target.key)
