"""Backtracking search over finite domains.

:class:`ConstraintSolver` is the decision procedure used by the symbolic
model-checking engine: given variables with finite domains and a conjunction
of constraints (path conditions), decide satisfiability and produce a model.

The search is a classic propagate-and-branch loop:

1. run every constraint's bounds propagation to a fixed point,
2. if some constraint is definitely violated, backtrack,
3. if every variable is fixed, check the constraints concretely,
4. otherwise pick the unfixed variable with the smallest domain and branch --
   by value enumeration for small domains, by bisection for large ones (so a
   16-bit variable costs ~16 decisions, not 65536).

The solver records the statistics the paper's Table 2 reports for SAL:
explored nodes, propagation work and an explicit memory estimate that scales
with the number of variables, their bit widths and the stored constraints --
exactly the quantities the state-space optimisations reduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..minic.types import IntRange
from .constraints import Constraint, PropagationConflict, Satisfaction
from .domain import Domain, EmptyDomainError
from .expression import expression_node_count


class SolverLimitReached(Exception):
    """Raised when the node or time budget is exhausted."""


@dataclass
class SolverStatistics:
    """Cost accounting of one (or several accumulated) solver invocations."""

    nodes: int = 0
    propagations: int = 0
    conflicts: int = 0
    solutions: int = 0
    max_depth: int = 0
    solve_calls: int = 0
    time_seconds: float = 0.0
    peak_memory_bytes: int = 0

    def merge(self, other: "SolverStatistics") -> None:
        self.nodes += other.nodes
        self.propagations += other.propagations
        self.conflicts += other.conflicts
        self.solutions += other.solutions
        self.solve_calls += other.solve_calls
        self.max_depth = max(self.max_depth, other.max_depth)
        self.time_seconds += other.time_seconds
        self.peak_memory_bytes = max(self.peak_memory_bytes, other.peak_memory_bytes)


@dataclass
class Solution:
    """A satisfying assignment."""

    assignment: dict[str, int]
    statistics: SolverStatistics = field(default_factory=SolverStatistics)


#: value-enumeration threshold: domains up to this size are enumerated,
#: larger ones are bisected
_ENUMERATION_LIMIT = 16


class ConstraintSolver:
    """Finite-domain constraint solver (propagate + backtracking search)."""

    def __init__(
        self,
        variables: dict[str, IntRange | Domain],
        constraints: list[Constraint] | None = None,
        max_nodes: int = 200_000,
        time_limit: float | None = None,
    ):
        self._domains: dict[str, Domain] = {}
        for name, domain in variables.items():
            self._domains[name] = (
                domain if isinstance(domain, Domain) else Domain.from_range(domain)
            )
        self._constraints: list[Constraint] = list(constraints or [])
        self._max_nodes = max_nodes
        self._time_limit = time_limit
        self.statistics = SolverStatistics()

    # ------------------------------------------------------------------ #
    # problem construction
    # ------------------------------------------------------------------ #
    def add_constraint(self, constraint: Constraint) -> None:
        self._constraints.append(constraint)

    def domains(self) -> dict[str, Domain]:
        return dict(self._domains)

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(self, extra_constraints: list[Constraint] | None = None) -> Solution | None:
        """Return a satisfying assignment or ``None`` when unsatisfiable.

        ``extra_constraints`` are added for this call only (the symbolic
        engine reuses one solver instance for many path-condition queries).
        """
        constraints = self._constraints + list(extra_constraints or [])
        started = time.perf_counter()
        call_stats = SolverStatistics(solve_calls=1)
        call_stats.peak_memory_bytes = self._memory_estimate(self._domains, constraints, 1)
        deadline = started + self._time_limit if self._time_limit is not None else None

        try:
            assignment = self._search(dict(self._domains), constraints, 0, call_stats, deadline)
        finally:
            call_stats.time_seconds = time.perf_counter() - started
            self.statistics.merge(call_stats)
        if assignment is None:
            return None
        call_stats.solutions += 1
        self.statistics.solutions += 1
        return Solution(assignment=assignment, statistics=call_stats)

    def is_satisfiable(self, extra_constraints: list[Constraint] | None = None) -> bool:
        return self.solve(extra_constraints) is not None

    # ------------------------------------------------------------------ #
    def _search(
        self,
        domains: dict[str, Domain],
        constraints: list[Constraint],
        depth: int,
        stats: SolverStatistics,
        deadline: float | None,
    ) -> dict[str, int] | None:
        stats.nodes += 1
        stats.max_depth = max(stats.max_depth, depth)
        if stats.nodes > self._max_nodes:
            raise SolverLimitReached(f"exceeded {self._max_nodes} search nodes")
        if deadline is not None and time.perf_counter() > deadline:
            raise SolverLimitReached("solver time limit exceeded")

        try:
            domains = self._propagate(domains, constraints, stats)
        except PropagationConflict:
            stats.conflicts += 1
            return None

        stats.peak_memory_bytes = max(
            stats.peak_memory_bytes,
            self._memory_estimate(domains, constraints, depth + 1),
        )

        # check filtering status
        pending: list[Constraint] = []
        for constraint in constraints:
            status = constraint.status(domains)
            if status is Satisfaction.VIOLATED:
                stats.conflicts += 1
                return None
            if status is Satisfaction.UNKNOWN:
                pending.append(constraint)

        unfixed = [name for name, domain in domains.items() if not domain.is_singleton()]
        if not unfixed:
            assignment = {name: domain.single_value() for name, domain in domains.items()}
            for constraint in pending:
                if not constraint.check(assignment):
                    stats.conflicts += 1
                    return None
            return assignment
        if not pending:
            # every constraint already satisfied: fix remaining variables to
            # their smallest value
            assignment = {
                name: next(domain.iter_values()) for name, domain in domains.items()
            }
            return assignment

        # choose the unfixed variable with the smallest domain among those
        # occurring in pending constraints (fail-first heuristic)
        constrained = set()
        for constraint in pending:
            constrained |= constraint.variables()
        candidates = [name for name in unfixed if name in constrained] or unfixed
        variable = min(candidates, key=lambda name: domains[name].size())
        domain = domains[variable]

        if domain.size() <= _ENUMERATION_LIMIT:
            for value in domain.iter_values():
                child = dict(domains)
                child[variable] = Domain.singleton(value)
                result = self._search(child, constraints, depth + 1, stats, deadline)
                if result is not None:
                    return result
            return None
        # bisection for large domains
        for half in domain.split():
            child = dict(domains)
            child[variable] = half
            result = self._search(child, constraints, depth + 1, stats, deadline)
            if result is not None:
                return result
        return None

    def _propagate(
        self,
        domains: dict[str, Domain],
        constraints: list[Constraint],
        stats: SolverStatistics,
    ) -> dict[str, Domain]:
        domains = dict(domains)
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for constraint in constraints:
                stats.propagations += 1
                try:
                    narrowed = constraint.propagate(domains)
                except EmptyDomainError as exc:  # pragma: no cover - wrapped below
                    raise PropagationConflict(str(exc)) from exc
                if narrowed:
                    domains.update(narrowed)
                    changed = True
        return domains

    @staticmethod
    def _memory_estimate(
        domains: dict[str, Domain], constraints: list[Constraint], depth: int
    ) -> int:
        """Rough, deterministic memory model of the solver state.

        ``depth`` copies of the domain store (the backtracking stack) plus the
        stored constraint expressions.  The estimate is proportional to the
        state-vector width, which is what makes the Table 2 memory column
        respond to the state-space optimisations the same way SAL does.
        """
        domain_bits = sum(domain.bits() for domain in domains.values())
        domain_bytes = (domain_bits + 7) // 8 + 16 * len(domains)
        constraint_bytes = sum(
            32 * expression_node_count(constraint.expr) for constraint in constraints
        )
        return depth * domain_bytes + constraint_bytes
