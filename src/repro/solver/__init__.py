"""Finite-domain constraint solver used by the model-checking engines."""

from __future__ import annotations

from .constraints import Constraint, PropagationConflict, Satisfaction
from .domain import Domain, EmptyDomainError
from .expression import (
    EvaluationError,
    concrete_eval,
    expression_node_count,
    interval_eval,
    substitute,
)
from .search import (
    ConstraintSolver,
    Solution,
    SolverLimitReached,
    SolverStatistics,
)

__all__ = [
    "Constraint",
    "PropagationConflict",
    "Satisfaction",
    "Domain",
    "EmptyDomainError",
    "EvaluationError",
    "concrete_eval",
    "expression_node_count",
    "interval_eval",
    "substitute",
    "ConstraintSolver",
    "Solution",
    "SolverLimitReached",
    "SolverStatistics",
]
