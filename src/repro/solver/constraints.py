"""Constraints and bounds propagation.

A :class:`Constraint` requires its expression to evaluate to a non-zero value.
Constraint filtering uses interval evaluation (definitely satisfied /
definitely violated / unknown) and a modest amount of bounds propagation for
the comparison shapes that dominate path constraints of generated control code
(``x == c``, ``state <= 3``, ``(sel == 2) && (pos != 0)``, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..minic.ast_nodes import BinaryOp, Expr, Identifier, UnaryOp
from ..minic.folding import expression_variables
from ..minic.pretty import print_expression
from .domain import Domain, EmptyDomainError
from .expression import concrete_eval, interval_eval


class Satisfaction(enum.Enum):
    """Tri-state result of constraint filtering under partial information."""

    SATISFIED = "satisfied"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


class PropagationConflict(Exception):
    """Raised when propagation empties a domain (the constraint set is UNSAT)."""


@dataclass(frozen=True)
class Constraint:
    """The requirement ``expr != 0``."""

    expr: Expr
    description: str = ""

    def variables(self) -> frozenset[str]:
        return frozenset(expression_variables(self.expr))

    def check(self, assignment: dict[str, int]) -> bool:
        return concrete_eval(self.expr, assignment) != 0

    def status(self, domains: dict[str, Domain]) -> Satisfaction:
        interval = interval_eval(self.expr, domains)
        if interval.lo == 0 and interval.hi == 0:
            return Satisfaction.VIOLATED
        if interval.lo > 0 or interval.hi < 0:
            return Satisfaction.SATISFIED
        return Satisfaction.UNKNOWN

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.description or print_expression(self.expr)

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #
    def propagate(self, domains: dict[str, Domain]) -> dict[str, Domain]:
        """Narrow *domains* so the constraint can still hold.

        Returns a dict of the *changed* domains only; raises
        :class:`PropagationConflict` when a domain becomes empty.  The rules
        cover comparisons with a lone variable on one side, conjunctions,
        negated comparisons and disjunctions whose one side is already
        impossible; everything else is left to search.
        """
        try:
            return self._propagate_expr(self.expr, domains)
        except EmptyDomainError as exc:
            raise PropagationConflict(str(exc)) from exc

    def _propagate_expr(
        self, expr: Expr, domains: dict[str, Domain]
    ) -> dict[str, Domain]:
        if isinstance(expr, BinaryOp):
            if expr.op == "&&":
                # both conjuncts must hold
                changed = self._propagate_expr(expr.left, domains)
                merged = {**domains, **changed}
                changed.update(self._propagate_expr(expr.right, merged))
                return changed
            if expr.op == "||":
                left_status = Constraint(expr.left).status(domains)
                right_status = Constraint(expr.right).status(domains)
                if left_status is Satisfaction.VIOLATED:
                    return self._propagate_expr(expr.right, domains)
                if right_status is Satisfaction.VIOLATED:
                    return self._propagate_expr(expr.left, domains)
                return {}
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                return self._propagate_comparison(expr, domains)
            return {}
        if isinstance(expr, UnaryOp) and expr.op == "!":
            inner = expr.operand
            if isinstance(inner, BinaryOp) and inner.op in _NEGATIONS:
                negated = BinaryOp(
                    op=_NEGATIONS[inner.op], left=inner.left, right=inner.right,
                    ctype=inner.ctype, location=inner.location,
                )
                return self._propagate_expr(negated, domains)
            if isinstance(inner, Identifier):
                # !x  ->  x == 0
                return self._narrow_variable(inner.name, domains, lo=0, hi=0)
            return {}
        if isinstance(expr, Identifier):
            # the constraint "x" means x != 0: remove 0 when it is a bound
            domain = domains.get(expr.name)
            if domain is None:
                return {}
            narrowed = domain.remove_value(0)
            return {expr.name: narrowed} if narrowed is not domain else {}
        return {}

    def _propagate_comparison(
        self, expr: BinaryOp, domains: dict[str, Domain]
    ) -> dict[str, Domain]:
        changed: dict[str, Domain] = {}
        left_var = expr.left.name if isinstance(expr.left, Identifier) else None
        right_var = expr.right.name if isinstance(expr.right, Identifier) else None
        left_range = interval_eval(expr.left, domains)
        right_range = interval_eval(expr.right, domains)

        if left_var is not None and left_var in domains:
            changed.update(
                self._narrow_by_comparison(left_var, expr.op, right_range, domains)
            )
        if right_var is not None and right_var in domains:
            mirrored = _MIRROR[expr.op]
            merged = {**domains, **changed}
            changed.update(
                self._narrow_by_comparison(right_var, mirrored, left_range, merged)
            )
        return changed

    def _narrow_by_comparison(
        self, name: str, op: str, other, domains: dict[str, Domain]
    ) -> dict[str, Domain]:
        if op == "==":
            return self._narrow_variable(name, domains, lo=other.lo, hi=other.hi)
        if op == "<=":
            return self._narrow_variable(name, domains, hi=other.hi)
        if op == "<":
            return self._narrow_variable(name, domains, hi=other.hi - 1)
        if op == ">=":
            return self._narrow_variable(name, domains, lo=other.lo)
        if op == ">":
            return self._narrow_variable(name, domains, lo=other.lo + 1)
        if op == "!=":
            if other.lo == other.hi:
                domain = domains[name]
                narrowed = domain.remove_value(other.lo)
                if narrowed is not domain:
                    return {name: narrowed}
            return {}
        return {}

    @staticmethod
    def _narrow_variable(
        name: str,
        domains: dict[str, Domain],
        lo: int | None = None,
        hi: int | None = None,
    ) -> dict[str, Domain]:
        domain = domains.get(name)
        if domain is None:
            return {}
        narrowed = domain.restrict_bounds(lo, hi)
        if narrowed == domain:
            return {}
        return {name: narrowed}


_MIRROR = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_NEGATIONS = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
