"""Finite domains for the constraint solver.

A :class:`Domain` is the set of values a solver variable may still take:
an inclusive integer interval with an optional set of excluded values
("holes").  Domains are immutable; narrowing operations return new domains so
the backtracking search can simply keep the previous ones on its stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..minic.types import IntRange


class EmptyDomainError(Exception):
    """Raised when an operation would produce an empty domain."""


@dataclass(frozen=True)
class Domain:
    """An integer domain ``{v : lo <= v <= hi} \\ excluded``."""

    lo: int
    hi: int
    excluded: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise EmptyDomainError(f"empty domain [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_range(cls, rng: IntRange) -> "Domain":
        return cls(rng.lo, rng.hi)

    @classmethod
    def singleton(cls, value: int) -> "Domain":
        return cls(value, value)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi and value not in self.excluded

    def size(self) -> int:
        holes = sum(1 for value in self.excluded if self.lo <= value <= self.hi)
        return self.hi - self.lo + 1 - holes

    def is_singleton(self) -> bool:
        return self.size() == 1

    def single_value(self) -> int:
        if not self.is_singleton():
            raise ValueError("domain is not a singleton")
        for value in self.iter_values():
            return value
        raise EmptyDomainError("empty domain")  # pragma: no cover - guarded by size

    def to_range(self) -> IntRange:
        return IntRange(self.lo, self.hi)

    def bits(self) -> int:
        return self.to_range().bits()

    def iter_values(self) -> Iterator[int]:
        """Iterate the remaining values in ascending order."""
        for value in range(self.lo, self.hi + 1):
            if value not in self.excluded:
                yield value

    # ------------------------------------------------------------------ #
    # narrowing (all return new domains, raise EmptyDomainError when empty)
    # ------------------------------------------------------------------ #
    def restrict_bounds(self, lo: int | None = None, hi: int | None = None) -> "Domain":
        new_lo = self.lo if lo is None else max(self.lo, lo)
        new_hi = self.hi if hi is None else min(self.hi, hi)
        if new_lo > new_hi:
            raise EmptyDomainError(f"restriction to [{new_lo}, {new_hi}] is empty")
        domain = Domain(new_lo, new_hi, self._trim_excluded(new_lo, new_hi))
        if domain.size() <= 0:
            raise EmptyDomainError("restriction removed all values")
        return domain

    def remove_value(self, value: int) -> "Domain":
        if value not in self:
            return self
        if self.is_singleton():
            raise EmptyDomainError(f"removing {value} empties the domain")
        if value == self.lo:
            return Domain(self.lo + 1, self.hi, self._trim_excluded(self.lo + 1, self.hi))
        if value == self.hi:
            return Domain(self.lo, self.hi - 1, self._trim_excluded(self.lo, self.hi - 1))
        return Domain(self.lo, self.hi, self.excluded | {value})

    def intersect_range(self, rng: IntRange) -> "Domain":
        return self.restrict_bounds(rng.lo, rng.hi)

    def assign(self, value: int) -> "Domain":
        if value not in self:
            raise EmptyDomainError(f"value {value} not in domain")
        return Domain.singleton(value)

    def split(self) -> tuple["Domain", "Domain"]:
        """Bisect the domain (used for branching on large domains)."""
        if self.is_singleton():
            raise ValueError("cannot split a singleton domain")
        middle = (self.lo + self.hi) // 2
        left = Domain(self.lo, middle, self._trim_excluded(self.lo, middle))
        right = Domain(middle + 1, self.hi, self._trim_excluded(middle + 1, self.hi))
        return left, right

    def _trim_excluded(self, lo: int, hi: int) -> frozenset[int]:
        return frozenset(v for v in self.excluded if lo <= v <= hi)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_singleton():
            return f"{{{self.lo}}}"
        holes = f" \\ {sorted(self.excluded)}" if self.excluded else ""
        return f"[{self.lo}..{self.hi}]{holes}"
