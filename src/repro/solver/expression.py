"""Expression evaluation over domains and concrete assignments.

The constraint solver manipulates mini-C expressions directly (no separate
constraint language): this module provides

* :func:`concrete_eval` -- evaluate an expression under a complete integer
  assignment,
* :func:`interval_eval` -- conservative interval evaluation under a partial
  assignment given as variable domains (the basis of constraint filtering and
  bounds propagation), and
* :func:`substitute` -- replace variables by expressions/constants (used by
  the symbolic model-checking engine to express everything in terms of the
  initial state).
"""

from __future__ import annotations

from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    CallExpr,
    CastExpr,
    Conditional,
    Expr,
    Identifier,
    IntLiteral,
    UnaryOp,
)
from ..minic.folding import apply_binary, apply_unary, fold_expr
from ..minic.types import BOOL, INT16, IntRange
from .domain import Domain


class EvaluationError(Exception):
    """Raised when an expression cannot be evaluated (unbound variable, ...)."""


# --------------------------------------------------------------------------- #
# concrete evaluation
# --------------------------------------------------------------------------- #
def concrete_eval(expr: Expr, assignment: dict[str, int]) -> int:
    """Evaluate *expr* under a complete assignment (C semantics, no wrapping).

    The solver works over mathematical integers restricted by domains, which
    matches how the transition-system domains were derived from the C types;
    wrap-around is modelled by the domains themselves.
    """
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return int(expr.value)
    if isinstance(expr, Identifier):
        if expr.name not in assignment:
            raise EvaluationError(f"unbound variable {expr.name!r}")
        return assignment[expr.name]
    if isinstance(expr, UnaryOp):
        return apply_unary(expr.op, concrete_eval(expr.operand, assignment))
    if isinstance(expr, BinaryOp):
        if expr.op == "&&":
            if concrete_eval(expr.left, assignment) == 0:
                return 0
            return int(concrete_eval(expr.right, assignment) != 0)
        if expr.op == "||":
            if concrete_eval(expr.left, assignment) != 0:
                return 1
            return int(concrete_eval(expr.right, assignment) != 0)
        try:
            return apply_binary(
                expr.op,
                concrete_eval(expr.left, assignment),
                concrete_eval(expr.right, assignment),
            )
        except ZeroDivisionError as exc:
            raise EvaluationError("division by zero during evaluation") from exc
    if isinstance(expr, Conditional):
        if concrete_eval(expr.cond, assignment) != 0:
            return concrete_eval(expr.then, assignment)
        return concrete_eval(expr.otherwise, assignment)
    if isinstance(expr, CastExpr):
        return expr.target_type.wrap(concrete_eval(expr.operand, assignment))
    if isinstance(expr, AssignExpr):
        return concrete_eval(expr.value, assignment)
    if isinstance(expr, CallExpr):
        return 0
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


# --------------------------------------------------------------------------- #
# interval evaluation
# --------------------------------------------------------------------------- #
_FULL = IntRange(-(2**31), 2**31 - 1)


def interval_eval(expr: Expr, domains: dict[str, Domain]) -> IntRange:
    """Conservative interval of the values *expr* can take under *domains*."""
    if isinstance(expr, IntLiteral):
        return IntRange(expr.value, expr.value)
    if isinstance(expr, BoolLiteral):
        v = int(expr.value)
        return IntRange(v, v)
    if isinstance(expr, Identifier):
        domain = domains.get(expr.name)
        if domain is None:
            return _FULL
        return domain.to_range()
    if isinstance(expr, UnaryOp):
        operand = interval_eval(expr.operand, domains)
        if expr.op == "-":
            return IntRange(-operand.hi, -operand.lo)
        if expr.op == "+":
            return operand
        if expr.op == "!":
            if operand.lo > 0 or operand.hi < 0:
                return IntRange(0, 0)
            if operand.lo == 0 and operand.hi == 0:
                return IntRange(1, 1)
            return IntRange(0, 1)
        if expr.op == "~":
            return IntRange(~operand.hi, ~operand.lo)
        return _FULL
    if isinstance(expr, BinaryOp):
        return _interval_binary(expr, domains)
    if isinstance(expr, Conditional):
        cond = interval_eval(expr.cond, domains)
        then = interval_eval(expr.then, domains)
        otherwise = interval_eval(expr.otherwise, domains)
        if cond.lo > 0 or cond.hi < 0:
            return then
        if cond.lo == 0 and cond.hi == 0:
            return otherwise
        return then.union(otherwise)
    if isinstance(expr, CastExpr):
        operand = interval_eval(expr.operand, domains)
        target = expr.target_type.value_range()
        clamped = operand.intersect(target)
        return clamped if clamped is not None else target
    if isinstance(expr, AssignExpr):
        return interval_eval(expr.value, domains)
    if isinstance(expr, CallExpr):
        return IntRange(0, 0)
    return _FULL


def _interval_binary(expr: BinaryOp, domains: dict[str, Domain]) -> IntRange:
    op = expr.op
    left = interval_eval(expr.left, domains)
    right = interval_eval(expr.right, domains)
    if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
        return _interval_relational(op, left, right)
    if op in ("+", "-", "*"):
        candidates = [
            apply_binary(op, a, b)
            for a in (left.lo, left.hi)
            for b in (right.lo, right.hi)
        ]
        return IntRange(min(candidates), max(candidates))
    if op == "/":
        if right.lo <= 0 <= right.hi:
            return _FULL
        candidates = [
            apply_binary("/", a, b)
            for a in (left.lo, left.hi)
            for b in (right.lo, right.hi)
        ]
        return IntRange(min(candidates), max(candidates))
    if op == "%":
        if right.lo <= 0 <= right.hi:
            return _FULL
        magnitude = max(abs(right.lo), abs(right.hi)) - 1
        lo = -magnitude if left.lo < 0 else 0
        return IntRange(lo, magnitude)
    if op == "&":
        if left.lo >= 0 and right.lo >= 0:
            return IntRange(0, min(left.hi, right.hi))
        return _FULL
    if op in ("|", "^"):
        if left.lo >= 0 and right.lo >= 0:
            bits = max(left.hi, right.hi).bit_length() or 1
            return IntRange(0, (1 << bits) - 1)
        return _FULL
    if op in ("<<", ">>"):
        if left.lo >= 0 and 0 <= right.lo <= right.hi <= 31:
            lo = apply_binary(op, left.lo, right.hi if op == ">>" else right.lo)
            hi = apply_binary(op, left.hi, right.lo if op == ">>" else right.hi)
            return IntRange(min(lo, hi), max(lo, hi))
        return _FULL
    return _FULL


def _interval_relational(op: str, left: IntRange, right: IntRange) -> IntRange:
    definitely_true = False
    definitely_false = False
    if op == "==":
        if left.lo == left.hi == right.lo == right.hi:
            definitely_true = True
        elif left.hi < right.lo or right.hi < left.lo:
            definitely_false = True
    elif op == "!=":
        if left.hi < right.lo or right.hi < left.lo:
            definitely_true = True
        elif left.lo == left.hi == right.lo == right.hi:
            definitely_false = True
    elif op == "<":
        if left.hi < right.lo:
            definitely_true = True
        elif left.lo >= right.hi:
            definitely_false = True
    elif op == "<=":
        if left.hi <= right.lo:
            definitely_true = True
        elif left.lo > right.hi:
            definitely_false = True
    elif op == ">":
        if left.lo > right.hi:
            definitely_true = True
        elif left.hi <= right.lo:
            definitely_false = True
    elif op == ">=":
        if left.lo >= right.hi:
            definitely_true = True
        elif left.hi < right.lo:
            definitely_false = True
    elif op == "&&":
        if (left.lo > 0 or left.hi < 0) and (right.lo > 0 or right.hi < 0):
            definitely_true = True
        elif (left.lo == 0 and left.hi == 0) or (right.lo == 0 and right.hi == 0):
            definitely_false = True
    elif op == "||":
        if (left.lo > 0 or left.hi < 0) or (right.lo > 0 or right.hi < 0):
            definitely_true = True
        elif left.lo == 0 and left.hi == 0 and right.lo == 0 and right.hi == 0:
            definitely_false = True
    if definitely_true:
        return IntRange(1, 1)
    if definitely_false:
        return IntRange(0, 0)
    return IntRange(0, 1)


# --------------------------------------------------------------------------- #
# substitution
# --------------------------------------------------------------------------- #
def substitute(expr: Expr, environment: dict[str, Expr | int]) -> Expr:
    """Replace variables in *expr* by the expressions/constants of *environment*.

    Missing variables stay symbolic.  The result is constant-folded, which is
    what keeps symbolic execution expressions small for the mostly-constant
    generated code the paper analyses.
    """
    replaced = _substitute(expr, environment)
    return fold_expr(replaced)


def _substitute(expr: Expr, environment: dict[str, Expr | int]) -> Expr:
    if isinstance(expr, Identifier):
        if expr.name in environment:
            value = environment[expr.name]
            if isinstance(value, int):
                ctype = expr.ctype if expr.ctype is not None else INT16
                if ctype.is_bool:
                    return BoolLiteral(value=bool(value), ctype=BOOL, location=expr.location)
                return IntLiteral(value=value, ctype=ctype, location=expr.location)
            return value
        return expr
    if isinstance(expr, (IntLiteral, BoolLiteral)):
        return expr
    if isinstance(expr, UnaryOp):
        return UnaryOp(op=expr.op, operand=_substitute(expr.operand, environment),
                       ctype=expr.ctype, location=expr.location)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            op=expr.op,
            left=_substitute(expr.left, environment),
            right=_substitute(expr.right, environment),
            ctype=expr.ctype,
            location=expr.location,
        )
    if isinstance(expr, Conditional):
        return Conditional(
            cond=_substitute(expr.cond, environment),
            then=_substitute(expr.then, environment),
            otherwise=_substitute(expr.otherwise, environment),
            ctype=expr.ctype,
            location=expr.location,
        )
    if isinstance(expr, CastExpr):
        return CastExpr(target_type=expr.target_type,
                        operand=_substitute(expr.operand, environment),
                        ctype=expr.ctype, location=expr.location)
    if isinstance(expr, AssignExpr):
        return _substitute(expr.value, environment)
    if isinstance(expr, CallExpr):
        return IntLiteral(value=0, ctype=INT16, location=expr.location)
    return expr


def expression_node_count(expr: Expr) -> int:
    """Number of nodes of *expr* -- the solver's memory proxy for constraints."""
    return 1 + sum(
        expression_node_count(child) for child in expr.children() if isinstance(child, Expr)
    )
