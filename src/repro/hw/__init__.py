"""Simulated measurement target: HCS12-style cost model, interpreter, board."""

from __future__ import annotations

from .board import EvaluationBoard, InstrumentedRun, PointReading
from .cost_model import (
    DEFAULT_EXTERNAL_CALL_CYCLES,
    HCS12_COST_MODEL,
    CostModel,
    uniform_cost_model,
)
from .interpreter import (
    BlockEvent,
    BranchEvent,
    ExecutionError,
    Interpreter,
    RunResult,
    SwitchEvent,
)

__all__ = [
    "EvaluationBoard",
    "InstrumentedRun",
    "PointReading",
    "DEFAULT_EXTERNAL_CALL_CYCLES",
    "HCS12_COST_MODEL",
    "CostModel",
    "uniform_cost_model",
    "BlockEvent",
    "BranchEvent",
    "ExecutionError",
    "Interpreter",
    "RunResult",
    "SwitchEvent",
]
