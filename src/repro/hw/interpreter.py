"""Cycle-accurate mini-C interpreter -- the simulated evaluation board CPU.

The interpreter executes a function over its CFG, charging cycles from a
:class:`~repro.hw.cost_model.CostModel` for every operation, exactly like the
HCS12 on the paper's evaluation board accumulates cycles in its counter
register.  Besides the final cycle count it records everything the
surrounding tooling needs:

* a *block trace* -- ``(block id, cycle count at block entry)`` events, which
  the measurement subsystem converts into per-segment execution times using
  the instrumentation plan;
* the *edge trace* -- which CFG edges were taken, used for path-coverage
  accounting by the test-data generators; and
* *branch events* with objective branch distances (Tracey-style), which the
  genetic algorithm uses as its fitness signal.

Defined functions can call each other (arguments by value, globals shared);
external functions only consume cycles.  Execution is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..cfg.builder import build_all_cfgs
from ..cfg.graph import ControlFlowGraph, Edge, EdgeKind, TerminatorKind
from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    CallExpr,
    CastExpr,
    Conditional,
    DeclStmt,
    Expr,
    ExprStmt,
    Identifier,
    IntLiteral,
    ReturnStmt,
    Stmt,
    UnaryOp,
    RELATIONAL_OPERATORS,
)
from ..minic.folding import apply_binary, apply_unary
from ..minic.semantic import AnalyzedProgram
from ..minic.types import BOOL, CType, INT16
from ..resilience import faults as _resilience
from .cost_model import CostModel, HCS12_COST_MODEL


def _poll_resilience() -> None:
    """Deadline poll + ``interp.step`` fault site (no-op on clean paths)."""
    if _resilience.current() is None:
        return
    _resilience.poll_deadline()
    _resilience.maybe_fault("interp.step")


class ExecutionError(Exception):
    """Raised for runtime errors (division by zero, step-limit exceeded, ...)."""


@dataclass
class BlockEvent:
    """One block-entry event of the executed trace."""

    block_id: int
    cycles: int


@dataclass
class BranchEvent:
    """Outcome and branch distances of one executed two-way branch.

    ``distance_true``/``distance_false`` are objective distances ("how far was
    the condition from evaluating to true/false"); the outcome that occurred
    has distance 0.  Distances follow Tracey et al. (the paper's reference
    [11]): ``|a-b|`` style measures combined with min over ``||`` and sum over
    ``&&``.
    """

    block_id: int
    outcome: bool
    distance_true: float
    distance_false: float


@dataclass
class SwitchEvent:
    """Outcome of one executed switch dispatch."""

    block_id: int
    value: int
    taken_edge: Edge


@dataclass
class RunResult:
    """Everything observed during one run of the top-level function."""

    function_name: str
    inputs: dict[str, int]
    total_cycles: int
    return_value: int | None
    block_trace: list[BlockEvent] = field(default_factory=list)
    edge_trace: list[Edge] = field(default_factory=list)
    branch_events: list[BranchEvent] = field(default_factory=list)
    switch_events: list[SwitchEvent] = field(default_factory=list)
    final_environment: dict[str, int] = field(default_factory=dict)

    @property
    def executed_blocks(self) -> list[int]:
        return [event.block_id for event in self.block_trace]

    @property
    def executed_edge_keys(self) -> list[tuple[int, int, str]]:
        return [(edge.source, edge.target, edge.kind.value) for edge in self.edge_trace]


class Interpreter:
    """Executes functions of one analysed program with cycle accounting."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        cost_model: CostModel = HCS12_COST_MODEL,
        cfgs: dict[str, ControlFlowGraph] | None = None,
        max_steps: int = 1_000_000,
        stub_functions: "Iterable[str]" = (),
    ):
        self._analyzed = analyzed
        self._program = analyzed.program
        self._cost = cost_model
        self._cfgs = cfgs if cfgs is not None else build_all_cfgs(analyzed.program)
        self._max_steps = max_steps
        self._defined = {func.name for func in analyzed.program.functions}
        #: defined functions treated as opaque external calls: their body is
        #: not executed and each call is charged the cost model's external
        #: cost for the name instead.  The interprocedural analysis uses this
        #: to replace already-summarised callees with their WCET bound.
        self._stubbed = set(stub_functions)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def cfg(self, function_name: str) -> ControlFlowGraph:
        try:
            return self._cfgs[function_name]
        except KeyError as exc:
            raise ExecutionError(f"no CFG for function {function_name!r}") from exc

    def run(
        self,
        function_name: str,
        inputs: dict[str, int] | None = None,
    ) -> RunResult:
        """Execute *function_name* with the given input-variable values.

        ``inputs`` assigns values to the analysis input variables (and may
        override any global); unspecified globals start at their initialiser
        or zero.  Parameters of the top-level function may also be supplied
        through ``inputs`` by name.
        """
        inputs = dict(inputs or {})
        environment = self._initial_environment(inputs)
        state = _RunState(cost=self._cost, max_steps=self._max_steps)
        function = self._program.function(function_name)
        table = self._analyzed.table(function_name)

        # top-level parameters come from the inputs mapping (default 0)
        for param in function.params:
            value = inputs.get(param.name, 0)
            environment[param.name] = param.param_type.wrap(value)

        return_value = self._execute_function(
            function_name, environment, state, record=True
        )
        del table
        return RunResult(
            function_name=function_name,
            inputs=inputs,
            total_cycles=state.cycles,
            return_value=return_value,
            block_trace=state.block_trace,
            edge_trace=state.edge_trace,
            branch_events=state.branch_events,
            switch_events=state.switch_events,
            final_environment=dict(environment),
        )

    # ------------------------------------------------------------------ #
    # execution machinery
    # ------------------------------------------------------------------ #
    def _initial_environment(self, inputs: dict[str, int]) -> dict[str, int]:
        environment: dict[str, int] = {}
        for decl in self._program.globals:
            value = 0
            if decl.init is not None:
                value = self._evaluate_static(decl.init)
            environment[decl.name] = decl.var_type.wrap(value)
        for name, value in inputs.items():
            if name in environment:
                decl = self._program.global_decl(name)
                environment[name] = decl.var_type.wrap(value)
            else:
                environment[name] = value
        return environment

    def _evaluate_static(self, expr: Expr) -> int:
        """Evaluate a global initialiser (no variables allowed)."""
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, BoolLiteral):
            return int(expr.value)
        if isinstance(expr, UnaryOp):
            return apply_unary(expr.op, self._evaluate_static(expr.operand))
        if isinstance(expr, BinaryOp):
            return apply_binary(
                expr.op,
                self._evaluate_static(expr.left),
                self._evaluate_static(expr.right),
            )
        raise ExecutionError("global initialisers must be constant expressions")

    def _execute_function(
        self,
        function_name: str,
        environment: dict[str, int],
        state: "_RunState",
        record: bool,
    ) -> int | None:
        cfg = self.cfg(function_name)
        block = cfg.entry
        return_value: int | None = None
        while True:
            state.step()
            if record:
                state.block_trace.append(BlockEvent(block.block_id, state.cycles))
            for stmt in block.statements:
                result = self._execute_statement(stmt, environment, state)
                if isinstance(stmt, ReturnStmt):
                    return_value = result

            terminator = block.terminator
            if terminator.kind is TerminatorKind.RETURN:
                state.cycles += self._cost.return_cost
                edge = self._single_edge(cfg, block)
                if record:
                    state.edge_trace.append(edge)
                return return_value
            if block is cfg.exit:
                return return_value
            if terminator.kind is TerminatorKind.JUMP or terminator.kind is TerminatorKind.NONE:
                edge = self._single_edge(cfg, block)
            elif terminator.kind is TerminatorKind.BRANCH:
                edge = self._execute_branch(cfg, block, environment, state, record)
            elif terminator.kind is TerminatorKind.SWITCH:
                edge = self._execute_switch(cfg, block, environment, state, record)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown terminator {terminator.kind}")
            if record:
                state.edge_trace.append(edge)
            next_block = cfg.block(edge.target)
            if next_block is cfg.exit:
                if record:
                    state.block_trace.append(BlockEvent(next_block.block_id, state.cycles))
                return return_value
            block = next_block

    def _single_edge(self, cfg: ControlFlowGraph, block) -> Edge:
        edges = cfg.out_edges(block)
        if len(edges) != 1:
            raise ExecutionError(
                f"block {block.block_id} of {cfg.function_name} has {len(edges)} successors"
            )
        return edges[0]

    def _execute_branch(
        self, cfg: ControlFlowGraph, block, environment, state: "_RunState", record: bool
    ) -> Edge:
        condition = block.terminator.condition
        assert condition is not None
        value = self._evaluate(condition, environment, state)
        outcome = value != 0
        state.cycles += self._cost.branch_taken if outcome else self._cost.branch_not_taken
        if record:
            distance_true, distance_false = self._branch_distances(condition, environment)
            state.branch_events.append(
                BranchEvent(
                    block_id=block.block_id,
                    outcome=outcome,
                    distance_true=distance_true,
                    distance_false=distance_false,
                )
            )
        wanted = EdgeKind.TRUE if outcome else EdgeKind.FALSE
        for edge in cfg.out_edges(block):
            if edge.kind is wanted or (edge.kind is EdgeKind.BACK and outcome):
                return edge
        # loop back-edges may carry the TRUE direction for do-while loops
        for edge in cfg.out_edges(block):
            if outcome and edge.kind is EdgeKind.BACK:
                return edge
        raise ExecutionError(
            f"branch block {block.block_id} has no {wanted.value} successor"
        )

    def _execute_switch(
        self, cfg: ControlFlowGraph, block, environment, state: "_RunState", record: bool
    ) -> Edge:
        condition = block.terminator.condition
        assert condition is not None
        value = self._evaluate(condition, environment, state)
        edges = cfg.out_edges(block)
        default_edge: Edge | None = None
        chosen: Edge | None = None
        comparisons = 0
        for edge in edges:
            if edge.kind is EdgeKind.CASE:
                comparisons += 1
                if value in edge.case_values:
                    chosen = edge
                    break
            elif edge.kind is EdgeKind.DEFAULT:
                default_edge = edge
        state.cycles += self._cost.switch_dispatch_per_case * max(1, comparisons)
        if chosen is None:
            chosen = default_edge
        if chosen is None:
            raise ExecutionError(
                f"switch block {block.block_id}: no case matches value {value} and no default"
            )
        if record:
            state.switch_events.append(
                SwitchEvent(block_id=block.block_id, value=value, taken_edge=chosen)
            )
        return chosen

    # ------------------------------------------------------------------ #
    # statements and expressions
    # ------------------------------------------------------------------ #
    def _execute_statement(
        self, stmt: Stmt, environment: dict[str, int], state: "_RunState"
    ) -> int | None:
        state.step()
        if isinstance(stmt, DeclStmt):
            state.cycles += self._cost.declaration_cost
            value = 0
            if stmt.init is not None:
                value = self._evaluate(stmt.init, environment, state)
                state.cycles += self._cost.store_cost(stmt.var_type)
            environment[stmt.name] = stmt.var_type.wrap(value)
            return None
        if isinstance(stmt, ExprStmt):
            self._evaluate(stmt.expr, environment, state)
            return None
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                return self._evaluate(stmt.value, environment, state)
            return None
        raise ExecutionError(f"cannot execute statement {type(stmt).__name__}")

    def _evaluate(self, expr: Expr, environment: dict[str, int], state: "_RunState") -> int:
        state.step()
        if isinstance(expr, IntLiteral):
            state.cycles += self._cost.load_literal
            return expr.value
        if isinstance(expr, BoolLiteral):
            state.cycles += self._cost.load_literal
            return int(expr.value)
        if isinstance(expr, Identifier):
            state.cycles += self._cost.load_cost(expr.ctype)
            if expr.name not in environment:
                raise ExecutionError(f"read of unbound variable {expr.name!r}")
            return environment[expr.name]
        if isinstance(expr, UnaryOp):
            operand = self._evaluate(expr.operand, environment, state)
            width = expr.ctype.bits if expr.ctype else 16
            state.cycles += self._cost.unary_cost(expr.op, width)
            return self._wrap(expr.ctype, apply_unary(expr.op, operand))
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr, environment, state)
        if isinstance(expr, Conditional):
            condition = self._evaluate(expr.cond, environment, state)
            state.cycles += self._cost.branch_taken
            if condition != 0:
                return self._evaluate(expr.then, environment, state)
            return self._evaluate(expr.otherwise, environment, state)
        if isinstance(expr, AssignExpr):
            value = self._evaluate(expr.value, environment, state)
            target_type = expr.target.ctype or expr.ctype
            state.cycles += self._cost.store_cost(target_type)
            wrapped = self._wrap(target_type, value)
            environment[expr.target.name] = wrapped
            return wrapped
        if isinstance(expr, CastExpr):
            value = self._evaluate(expr.operand, environment, state)
            state.cycles += self._cost.cast_op
            return expr.target_type.wrap(value)
        if isinstance(expr, CallExpr):
            return self._evaluate_call(expr, environment, state)
        raise ExecutionError(f"cannot evaluate expression {type(expr).__name__}")

    def _evaluate_binary(
        self, expr: BinaryOp, environment: dict[str, int], state: "_RunState"
    ) -> int:
        # short-circuit evaluation for && and ||
        if expr.op in ("&&", "||"):
            left = self._evaluate(expr.left, environment, state)
            state.cycles += self._cost.logic_op
            if expr.op == "&&" and left == 0:
                return 0
            if expr.op == "||" and left != 0:
                return 1
            right = self._evaluate(expr.right, environment, state)
            return int(right != 0)
        left = self._evaluate(expr.left, environment, state)
        right = self._evaluate(expr.right, environment, state)
        width = expr.ctype.bits if expr.ctype else 16
        state.cycles += self._cost.binary_cost(expr.op, width)
        try:
            raw = apply_binary(expr.op, left, right)
        except ZeroDivisionError as exc:
            raise ExecutionError(f"division by zero at line {expr.location.line}") from exc
        if expr.op in RELATIONAL_OPERATORS:
            return int(raw != 0)
        return self._wrap(expr.ctype, raw)

    def _evaluate_call(
        self, expr: CallExpr, environment: dict[str, int], state: "_RunState"
    ) -> int:
        state.cycles += self._cost.call_overhead
        argument_values = [self._evaluate(arg, environment, state) for arg in expr.args]
        if expr.name not in self._defined or expr.name in self._stubbed:
            state.cycles += self._cost.external_call_cost(expr.name)
            return 0
        callee = self._program.function(expr.name)
        # callee environment: globals are shared, parameters are local copies
        for param, value in zip(callee.params, argument_values):
            environment[param.name] = param.param_type.wrap(value)
        result = self._execute_function(expr.name, environment, state, record=False)
        return result if result is not None else 0

    # ------------------------------------------------------------------ #
    # branch distances (Tracey-style objective functions)
    # ------------------------------------------------------------------ #
    _FAILURE_CONSTANT = 1.0

    def _branch_distances(
        self, condition: Expr, environment: dict[str, int]
    ) -> tuple[float, float]:
        """Distances to making *condition* true and false respectively."""
        return (
            self._distance_true(condition, environment),
            self._distance_false(condition, environment),
        )

    def _value_of(self, expr: Expr, environment: dict[str, int]) -> int:
        """Side-effect-free re-evaluation for distance computation."""
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, BoolLiteral):
            return int(expr.value)
        if isinstance(expr, Identifier):
            return environment.get(expr.name, 0)
        if isinstance(expr, UnaryOp):
            return apply_unary(expr.op, self._value_of(expr.operand, environment))
        if isinstance(expr, BinaryOp):
            try:
                return apply_binary(
                    expr.op,
                    self._value_of(expr.left, environment),
                    self._value_of(expr.right, environment),
                )
            except ZeroDivisionError:
                return 0
        if isinstance(expr, Conditional):
            if self._value_of(expr.cond, environment) != 0:
                return self._value_of(expr.then, environment)
            return self._value_of(expr.otherwise, environment)
        if isinstance(expr, CastExpr):
            return expr.target_type.wrap(self._value_of(expr.operand, environment))
        if isinstance(expr, AssignExpr):
            return self._value_of(expr.value, environment)
        if isinstance(expr, CallExpr):
            return 0
        return 0

    def _distance_true(self, condition: Expr, env: dict[str, int]) -> float:
        K = self._FAILURE_CONSTANT
        if isinstance(condition, BinaryOp):
            op = condition.op
            if op == "&&":
                return self._distance_true(condition.left, env) + self._distance_true(
                    condition.right, env
                )
            if op == "||":
                return min(
                    self._distance_true(condition.left, env),
                    self._distance_true(condition.right, env),
                )
            if op in ("==", "!=", "<", "<=", ">", ">="):
                a = self._value_of(condition.left, env)
                b = self._value_of(condition.right, env)
                if op == "==":
                    return float(abs(a - b))
                if op == "!=":
                    return 0.0 if a != b else K
                if op == "<":
                    return 0.0 if a < b else float(a - b) + K
                if op == "<=":
                    return 0.0 if a <= b else float(a - b)
                if op == ">":
                    return 0.0 if a > b else float(b - a) + K
                if op == ">=":
                    return 0.0 if a >= b else float(b - a)
        if isinstance(condition, UnaryOp) and condition.op == "!":
            return self._distance_false(condition.operand, env)
        value = self._value_of(condition, env)
        return 0.0 if value != 0 else K

    def _distance_false(self, condition: Expr, env: dict[str, int]) -> float:
        K = self._FAILURE_CONSTANT
        if isinstance(condition, BinaryOp):
            op = condition.op
            if op == "&&":
                return min(
                    self._distance_false(condition.left, env),
                    self._distance_false(condition.right, env),
                )
            if op == "||":
                return self._distance_false(condition.left, env) + self._distance_false(
                    condition.right, env
                )
            if op in ("==", "!=", "<", "<=", ">", ">="):
                a = self._value_of(condition.left, env)
                b = self._value_of(condition.right, env)
                if op == "==":
                    return 0.0 if a != b else K
                if op == "!=":
                    return float(abs(a - b))
                if op == "<":
                    return 0.0 if a >= b else float(b - a)
                if op == "<=":
                    return 0.0 if a > b else float(b - a) + K
                if op == ">":
                    return 0.0 if a <= b else float(a - b)
                if op == ">=":
                    return 0.0 if a < b else float(a - b) + K
        if isinstance(condition, UnaryOp) and condition.op == "!":
            return self._distance_true(condition.operand, env)
        value = self._value_of(condition, env)
        return 0.0 if value == 0 else K

    @staticmethod
    def _wrap(ctype: CType | None, value: int) -> int:
        if ctype is None or ctype.is_void:
            return INT16.wrap(value)
        if ctype.is_bool:
            return BOOL.wrap(value)
        return ctype.wrap(value)


@dataclass
class _RunState:
    """Mutable execution state shared across nested function calls."""

    cost: CostModel
    max_steps: int
    cycles: int = 0
    steps: int = 0
    block_trace: list[BlockEvent] = field(default_factory=list)
    edge_trace: list[Edge] = field(default_factory=list)
    branch_events: list[BranchEvent] = field(default_factory=list)
    switch_events: list[SwitchEvent] = field(default_factory=list)

    def step(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ExecutionError(
                f"execution exceeded {self.max_steps} steps (possible unbounded loop)"
            )
        if not self.steps & 1023:
            # every 1024 steps: cooperative per-job deadline + fault site.
            # Outside chaos runs the ambient context is None and this costs
            # one mask, one call and one global read per 1024 steps.
            _poll_resilience()
