"""The simulated evaluation board.

The paper's flow compiles the instrumented application for the Motorola HCS12,
uploads it to an evaluation board, forces the generated test data onto the
input variables through glue code and reads back the cycle-counter values at
the instrumentation points.  :class:`EvaluationBoard` packages that flow:
programs are *loaded* once (parsed program + CFGs + cost model), then *run*
any number of times with different test vectors, optionally with an
instrumentation plan attached so each run also yields the cycle-counter
readings of every instrumentation point that fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..cfg.builder import build_all_cfgs
from ..cfg.graph import ControlFlowGraph
from ..minic.semantic import AnalyzedProgram
from ..partition.instrument import InstrumentationPlan, InstrumentationPoint
from .cost_model import CostModel, HCS12_COST_MODEL
from .interpreter import Interpreter, RunResult


@dataclass
class PointReading:
    """One cycle-counter reading at an instrumentation point."""

    point: InstrumentationPoint
    cycles: int
    #: index into the block trace at which the point fired (stable ordering)
    trace_index: int


@dataclass
class InstrumentedRun:
    """A run plus the readings of the attached instrumentation plan."""

    run: RunResult
    readings: list[PointReading] = field(default_factory=list)

    def readings_for_segment(self, segment_id: int) -> list[PointReading]:
        return [r for r in self.readings if r.point.segment_id == segment_id]


class EvaluationBoard:
    """Simulated measurement target (CPU + cycle counter + test-data glue)."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        cost_model: CostModel = HCS12_COST_MODEL,
        max_steps: int = 1_000_000,
        stub_functions: Iterable[str] = (),
    ):
        self._analyzed = analyzed
        self._cfgs = build_all_cfgs(analyzed.program)
        self._interpreter = Interpreter(
            analyzed,
            cost_model=cost_model,
            cfgs=self._cfgs,
            max_steps=max_steps,
            stub_functions=stub_functions,
        )

    # ------------------------------------------------------------------ #
    @property
    def interpreter(self) -> Interpreter:
        return self._interpreter

    def cfg(self, function_name: str) -> ControlFlowGraph:
        return self._interpreter.cfg(function_name)

    def run(self, function_name: str, inputs: dict[str, int] | None = None) -> RunResult:
        """Execute one test vector and return the raw run result."""
        return self._interpreter.run(function_name, inputs)

    def run_instrumented(
        self,
        function_name: str,
        inputs: dict[str, int] | None,
        plan: InstrumentationPlan,
    ) -> InstrumentedRun:
        """Execute one test vector and collect instrumentation-point readings.

        Every instrumentation point whose trigger block is entered produces a
        reading with the cycle-counter value at that moment; the plan's
        end-of-function points fire with the final cycle count.  Points of
        segments that were not executed at all simply do not appear.
        """
        run = self._interpreter.run(function_name, inputs)
        readings: list[PointReading] = []
        for index, event in enumerate(run.block_trace):
            for point in plan.triggers.get(event.block_id, ()):
                readings.append(PointReading(point=point, cycles=event.cycles, trace_index=index))
        for point in plan.end_of_function_points:
            readings.append(
                PointReading(
                    point=point, cycles=run.total_cycles, trace_index=len(run.block_trace)
                )
            )
        readings.sort(key=lambda r: (r.trace_index, r.point.point_id))
        return InstrumentedRun(run=run, readings=readings)
