"""Execution-time cost model of the simulated target processor.

The paper measures on a Motorola HCS12 evaluation board using the internal
cycle-counter register.  This module provides the timing side of that
substrate: a table of cycle costs per operation class, flavoured after the
HCS12 (a 16-bit CISC micro-controller: cheap 8-bit ALU ops, slightly more
expensive 16-bit ones, expensive multiply/divide, call/return overhead in the
tens of cycles range).  Absolute numbers do not need to match the silicon --
the reproduction compares *measured* values against *measured+schema* bounds,
both of which come from this model -- but the relative ordering is realistic
so that longer paths cost more, calls dominate simple arithmetic, and taken
branches differ from non-taken ones (which is what makes the WCET bound
overestimate end-to-end measurements, as in the paper's case study).

All costs are expressed in CPU cycles and can be overridden by constructing a
custom :class:`CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..minic.types import CType

#: default cycles charged for a call to an external (library) function
DEFAULT_EXTERNAL_CALL_CYCLES = 20


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the simulated HCS12-class target.

    The model is intentionally simple and deterministic: the cost of a
    statement is the sum of the costs of its parts.  ``wide_factor`` scales
    ALU operations whose operands exceed 8 bits (the HCS12 is internally a
    16-bit machine but 8-bit operations still encode/execute faster).
    """

    load_variable: int = 3
    load_literal: int = 1
    store_variable: int = 2
    alu_op: int = 1
    compare_op: int = 1
    logic_op: int = 1
    shift_op: int = 2
    multiply_op: int = 3
    divide_op: int = 11
    unary_op: int = 1
    cast_op: int = 1
    branch_taken: int = 3
    branch_not_taken: int = 1
    switch_dispatch_per_case: int = 2
    call_overhead: int = 8
    return_cost: int = 5
    declaration_cost: int = 1
    wide_factor: float = 1.5
    external_call_cycles: dict[str, int] = field(default_factory=dict)
    default_external_call: int = DEFAULT_EXTERNAL_CALL_CYCLES

    # ------------------------------------------------------------------ #
    def binary_cost(self, op: str, width_bits: int) -> int:
        """Cost of one binary operation on operands of *width_bits*."""
        if op in ("*",):
            base = self.multiply_op
        elif op in ("/", "%"):
            base = self.divide_op
        elif op in ("<<", ">>"):
            base = self.shift_op
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            base = self.compare_op
        elif op in ("&&", "||", "&", "|", "^"):
            base = self.logic_op
        else:
            base = self.alu_op
        return self._widen(base, width_bits)

    def unary_cost(self, op: str, width_bits: int) -> int:
        del op
        return self._widen(self.unary_op, width_bits)

    def load_cost(self, ctype: CType | None) -> int:
        return self._widen(self.load_variable, ctype.bits if ctype else 16)

    def store_cost(self, ctype: CType | None) -> int:
        return self._widen(self.store_variable, ctype.bits if ctype else 16)

    def external_call_cost(self, name: str) -> int:
        """Cycles consumed by a call to an external function."""
        return self.external_call_cycles.get(name, self.default_external_call)

    def _widen(self, base: int, width_bits: int) -> int:
        if width_bits > 8:
            return max(1, round(base * self.wide_factor))
        return max(1, base)


#: the cost model used throughout the case study and the benchmarks
HCS12_COST_MODEL = CostModel()


def uniform_cost_model(cycles_per_operation: int = 1) -> CostModel:
    """A degenerate model charging the same cost everywhere.

    Useful in tests that only care about path lengths, not realistic timing.
    """
    return CostModel(
        load_variable=cycles_per_operation,
        load_literal=cycles_per_operation,
        store_variable=cycles_per_operation,
        alu_op=cycles_per_operation,
        compare_op=cycles_per_operation,
        logic_op=cycles_per_operation,
        shift_op=cycles_per_operation,
        multiply_op=cycles_per_operation,
        divide_op=cycles_per_operation,
        unary_op=cycles_per_operation,
        cast_op=cycles_per_operation,
        branch_taken=cycles_per_operation,
        branch_not_taken=cycles_per_operation,
        switch_dispatch_per_case=cycles_per_operation,
        call_overhead=cycles_per_operation,
        return_cost=cycles_per_operation,
        declaration_cost=cycles_per_operation,
        wide_factor=1.0,
        default_external_call=cycles_per_operation,
    )
