"""Construction of control-flow graphs from mini-C abstract syntax trees.

The builder follows the textbook algorithm with one WCET-tooling-specific
rule: *statements containing a function call terminate their basic block*.
Instrumentation is placed around blocks, so a call must not share a block with
trailing code -- and this is also what reproduces the 11 measurable blocks of
the paper's Figure 1 example (each ``printfN()`` call is its own block and
each ``if`` condition lands in a block of its own whenever it follows a call).

Join blocks are *not* materialised: dangling branch exits are kept on a
frontier and wired to the next real block, so the CFG contains no empty
synthetic blocks that would distort the instrumentation-point counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..minic.ast_nodes import (
    BoolLiteral,
    BreakStmt,
    CompoundStmt,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    IfStmt,
    Node,
    Program,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    WhileStmt,
)
from ..minic.folding import has_calls
from .graph import (
    BasicBlock,
    ControlFlowGraph,
    EdgeKind,
    Terminator,
    TerminatorKind,
)


@dataclass
class _PendingEdge:
    """A dangling control transfer waiting for its target block."""

    source: BasicBlock
    kind: EdgeKind
    case_values: tuple[int, ...] = ()
    is_back_edge: bool = False


@dataclass
class _LoopContext:
    """Continue target of the innermost enclosing loop."""

    continue_target: BasicBlock


class CfgBuilder:
    """Builds one :class:`ControlFlowGraph` per function."""

    def __init__(self) -> None:
        self._cfg: ControlFlowGraph | None = None
        self._current: BasicBlock | None = None
        self._frontier: list[_PendingEdge] = []
        self._loops: list[_LoopContext] = []
        #: one entry per enclosing breakable construct (loop or switch);
        #: ``break`` statements append their dangling edge to the top entry.
        self._break_stack: list[list[_PendingEdge]] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build_function(self, function: FunctionDef) -> ControlFlowGraph:
        """Build the CFG of a single function."""
        self._cfg = ControlFlowGraph(function.name)
        self._current = None
        self._frontier = [_PendingEdge(self._cfg.entry, EdgeKind.FALLTHROUGH)]
        self._loops = []
        self._break_stack = []
        self._build_stmt(function.body)
        self._finish()
        self._cfg.prune_unreachable()
        self._cfg.validate()
        return self._cfg

    # ------------------------------------------------------------------ #
    # frontier / block management
    # ------------------------------------------------------------------ #
    def _connect(self, edges: list[_PendingEdge], target: BasicBlock) -> None:
        assert self._cfg is not None
        for pending in edges:
            kind = EdgeKind.BACK if pending.is_back_edge else pending.kind
            self._cfg.add_edge(pending.source, target, kind, pending.case_values)

    def _start_block(self) -> BasicBlock:
        """Begin a new block, wiring the current frontier to it."""
        assert self._cfg is not None
        block = self._cfg.new_block()
        self._connect(self._frontier, block)
        self._frontier = []
        self._current = block
        return block

    def _ensure_block(self) -> BasicBlock:
        """Return the block new statements should be appended to."""
        if self._current is None:
            return self._start_block()
        return self._current

    def _seal_current(self) -> None:
        """Terminate the current block with a jump to whatever comes next."""
        if self._current is None:
            return
        self._current.terminator = Terminator(kind=TerminatorKind.JUMP)
        self._frontier.append(_PendingEdge(self._current, EdgeKind.FALLTHROUGH))
        self._current = None

    def _finish(self) -> None:
        assert self._cfg is not None
        if self._current is not None:
            self._seal_current()
        self._connect(self._frontier, self._cfg.exit)
        self._frontier = []

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _build_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, CompoundStmt):
            for child in stmt.statements:
                self._build_stmt(child)
        elif isinstance(stmt, (DeclStmt, ExprStmt)):
            self._append_simple(stmt)
        elif isinstance(stmt, EmptyStmt):
            pass
        elif isinstance(stmt, ReturnStmt):
            self._build_return(stmt)
        elif isinstance(stmt, IfStmt):
            self._build_if(stmt)
        elif isinstance(stmt, SwitchStmt):
            self._build_switch(stmt)
        elif isinstance(stmt, WhileStmt):
            self._build_while(stmt)
        elif isinstance(stmt, DoWhileStmt):
            self._build_do_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._build_for(stmt)
        elif isinstance(stmt, BreakStmt):
            self._build_break(stmt)
        elif isinstance(stmt, ContinueStmt):
            self._build_continue(stmt)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot build CFG for {type(stmt).__name__}")

    def _append_simple(self, stmt: Stmt) -> None:
        block = self._ensure_block()
        block.statements.append(stmt)
        if block.source_line is None and stmt.location.line:
            block.source_line = stmt.location.line
        contains_call = False
        if isinstance(stmt, ExprStmt):
            contains_call = has_calls(stmt.expr)
        elif isinstance(stmt, DeclStmt) and stmt.init is not None:
            contains_call = has_calls(stmt.init)
        if contains_call:
            # Calls terminate basic blocks (see module docstring).
            self._seal_current()

    def _build_return(self, stmt: ReturnStmt) -> None:
        assert self._cfg is not None
        block = self._ensure_block()
        block.statements.append(stmt)
        if block.source_line is None and stmt.location.line:
            block.source_line = stmt.location.line
        block.terminator = Terminator(kind=TerminatorKind.RETURN, ast_node=stmt)
        self._cfg.add_edge(block, self._cfg.exit, EdgeKind.RETURN)
        self._current = None
        self._frontier = []

    def _set_branch_terminator(self, condition: Expr, ast_node: Node) -> BasicBlock:
        """Place a two-way branch at the end of the current block."""
        block = self._ensure_block()
        block.terminator = Terminator(
            kind=TerminatorKind.BRANCH, condition=condition, ast_node=ast_node
        )
        if block.source_line is None and ast_node.location.line:
            block.source_line = ast_node.location.line
        self._current = None
        return block

    def _build_if(self, stmt: IfStmt) -> None:
        cond_block = self._set_branch_terminator(stmt.cond, stmt)
        exits: list[_PendingEdge] = []

        self._frontier = [_PendingEdge(cond_block, EdgeKind.TRUE)]
        self._build_stmt(stmt.then_branch)
        if self._current is not None:
            self._seal_current()
        exits.extend(self._frontier)

        if stmt.else_branch is not None:
            self._frontier = [_PendingEdge(cond_block, EdgeKind.FALSE)]
            self._build_stmt(stmt.else_branch)
            if self._current is not None:
                self._seal_current()
            exits.extend(self._frontier)
        else:
            exits.append(_PendingEdge(cond_block, EdgeKind.FALSE))

        self._frontier = exits
        self._current = None

    def _build_switch(self, stmt: SwitchStmt) -> None:
        switch_block = self._ensure_block()
        switch_block.terminator = Terminator(
            kind=TerminatorKind.SWITCH, condition=stmt.expr, ast_node=stmt
        )
        if switch_block.source_line is None and stmt.location.line:
            switch_block.source_line = stmt.location.line
        self._current = None

        exits: list[_PendingEdge] = []
        has_default = False
        self._break_stack.append([])
        for case in stmt.cases:
            if case.is_default:
                has_default = True
                pending = _PendingEdge(switch_block, EdgeKind.DEFAULT)
            else:
                pending = _PendingEdge(
                    switch_block, EdgeKind.CASE, tuple(case.values)
                )
            self._frontier = [pending]
            self._current = None
            self._build_stmt(case.body)
            if self._current is not None:
                self._seal_current()
            exits.extend(self._frontier)
        if not has_default:
            exits.append(_PendingEdge(switch_block, EdgeKind.DEFAULT))
        exits.extend(self._break_stack.pop())
        self._frontier = exits
        self._current = None

    def _build_while(self, stmt: WhileStmt) -> None:
        self._seal_current()
        cond_block = self._start_block()
        cond_block.terminator = Terminator(
            kind=TerminatorKind.BRANCH, condition=stmt.cond, ast_node=stmt
        )
        if cond_block.source_line is None and stmt.location.line:
            cond_block.source_line = stmt.location.line
        self._current = None

        context = _LoopContext(continue_target=cond_block)
        self._loops.append(context)
        self._break_stack.append([])
        self._frontier = [_PendingEdge(cond_block, EdgeKind.TRUE)]
        self._build_stmt(stmt.body)
        if self._current is not None:
            self._seal_current()
        # loop back edges
        for pending in self._frontier:
            pending.is_back_edge = True
        self._connect(self._frontier, cond_block)
        self._loops.pop()
        break_edges = self._break_stack.pop()

        self._frontier = [_PendingEdge(cond_block, EdgeKind.FALSE)] + break_edges
        self._current = None

    def _build_do_while(self, stmt: DoWhileStmt) -> None:
        self._seal_current()
        body_block = self._start_block()
        if body_block.source_line is None and stmt.location.line:
            body_block.source_line = stmt.location.line

        # The continue target of a do-while is the condition block, which does
        # not exist yet; we therefore collect continue edges like break edges
        # and wire them afterwards.
        context = _LoopContext(continue_target=body_block)
        self._loops.append(context)
        self._break_stack.append([])
        original_connect = context.continue_target

        self._build_stmt(stmt.body)
        if self._current is not None:
            self._seal_current()
        body_exits = self._frontier
        self._loops.pop()
        context_breaks = self._break_stack.pop()

        cond_block = self._cfg.new_block()  # type: ignore[union-attr]
        self._connect(body_exits, cond_block)
        # Continue statements recorded against the provisional target are
        # rewired to the condition block (a do-while continue re-tests the
        # condition).
        self._rewire_continue_edges(original_connect, cond_block)
        cond_block.terminator = Terminator(
            kind=TerminatorKind.BRANCH, condition=stmt.cond, ast_node=stmt
        )
        if cond_block.source_line is None and stmt.cond.location.line:
            cond_block.source_line = stmt.cond.location.line
        self._cfg.add_edge(cond_block, body_block, EdgeKind.BACK)  # type: ignore[union-attr]

        self._frontier = [_PendingEdge(cond_block, EdgeKind.FALSE)] + context_breaks
        self._current = None

    def _rewire_continue_edges(
        self,
        provisional: BasicBlock,
        actual: BasicBlock,
    ) -> None:
        """Move continue edges from the provisional target to the real one.

        ``continue`` inside a ``do``/``while`` loop body is wired immediately
        against the loop header known at that time; for do-while loops the
        real target (the condition block) is only created after the body, so
        edges pointing at the provisional header are redirected here.
        """
        assert self._cfg is not None
        if provisional is actual:
            return
        for edge in self._cfg.edges():
            if edge.target == provisional.block_id and edge.kind is EdgeKind.BACK:
                # only continue edges are BACK edges into the provisional
                # header at this point (the loop's own back edge is added
                # after this call)
                edge.target = actual.block_id
        # rebuild adjacency after in-place mutation
        self._rebuild_adjacency()

    def _rebuild_adjacency(self) -> None:
        assert self._cfg is not None
        cfg = self._cfg
        succ = {b.block_id: [] for b in cfg.blocks()}
        pred = {b.block_id: [] for b in cfg.blocks()}
        for edge in cfg.edges():
            succ[edge.source].append(edge)
            pred[edge.target].append(edge)
        cfg._succ = succ  # noqa: SLF001 - builder is a friend of the graph
        cfg._pred = pred  # noqa: SLF001

    def _build_for(self, stmt: ForStmt) -> None:
        if stmt.init is not None:
            self._build_stmt(stmt.init)
        self._seal_current()
        cond_block = self._start_block()
        condition: Expr = stmt.cond if stmt.cond is not None else BoolLiteral(
            value=True, location=stmt.location
        )
        cond_block.terminator = Terminator(
            kind=TerminatorKind.BRANCH, condition=condition, ast_node=stmt
        )
        if cond_block.source_line is None and stmt.location.line:
            cond_block.source_line = stmt.location.line
        self._current = None

        # The continue target is the step block when a step exists.
        step_block: BasicBlock | None = None
        if stmt.step is not None:
            step_block = self._cfg.new_block()  # type: ignore[union-attr]
            step_block.statements.append(ExprStmt(expr=stmt.step, location=stmt.step.location))
            step_block.source_line = stmt.step.location.line or None
            step_block.terminator = Terminator(kind=TerminatorKind.JUMP)

        context = _LoopContext(continue_target=step_block or cond_block)
        self._loops.append(context)
        self._break_stack.append([])
        self._frontier = [_PendingEdge(cond_block, EdgeKind.TRUE)]
        self._build_stmt(stmt.body)
        if self._current is not None:
            self._seal_current()
        body_exits = self._frontier
        self._loops.pop()
        break_edges = self._break_stack.pop()

        if step_block is not None:
            self._connect(body_exits, step_block)
            self._cfg.add_edge(step_block, cond_block, EdgeKind.BACK)  # type: ignore[union-attr]
        else:
            for pending in body_exits:
                pending.is_back_edge = True
            self._connect(body_exits, cond_block)

        self._frontier = [_PendingEdge(cond_block, EdgeKind.FALSE)] + break_edges
        self._current = None

    def _build_break(self, stmt: BreakStmt) -> None:
        del stmt
        block = self._ensure_block()
        block.terminator = Terminator(kind=TerminatorKind.JUMP)
        pending = _PendingEdge(block, EdgeKind.FALLTHROUGH)
        if self._break_stack:
            self._break_stack[-1].append(pending)
        else:
            # a stray break (the parser normally consumes case-terminating
            # breaks) simply ends the function
            self._cfg.add_edge(block, self._cfg.exit, EdgeKind.FALLTHROUGH)  # type: ignore[union-attr]
        self._current = None
        self._frontier = []

    def _build_continue(self, stmt: ContinueStmt) -> None:
        del stmt
        assert self._cfg is not None
        block = self._ensure_block()
        block.terminator = Terminator(kind=TerminatorKind.JUMP)
        target = self._loops[-1].continue_target
        self._cfg.add_edge(block, target, EdgeKind.BACK)
        self._current = None
        self._frontier = []


def build_cfg(function: FunctionDef) -> ControlFlowGraph:
    """Build the CFG of *function*."""
    return CfgBuilder().build_function(function)


def build_all_cfgs(program: Program) -> dict[str, ControlFlowGraph]:
    """Build CFGs for every function of *program*, keyed by function name."""
    return {func.name: build_cfg(func) for func in program.functions}
