"""Path counting and path enumeration.

The partitioning algorithm of the paper decides whether a program segment is
measured as a whole by comparing "the number of paths within a PS" against the
path bound *b*.  Two complementary implementations are provided:

* :func:`count_ast_paths` -- structural counting on the abstract syntax tree
  (sequences multiply, branches add, loops use their ``#pragma loopbound``
  annotation).  This is what the hierarchical partitioner uses.
* :class:`CfgPathCounter` / :func:`enumerate_paths` -- counting and explicit
  enumeration on acyclic CFG regions, used by the general partitioner, the
  measurement planner (which needs the concrete block sequence of every path)
  and the tests that cross-check both implementations.

Counts saturate at :data:`PATH_COUNT_CAP` so that industrial-size programs
(the paper quotes 10^something paths for end-to-end measurement) do not
overflow into meaninglessly huge integers; the partitioner only ever compares
against small bounds, so saturation is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .. import perf
from ..minic.ast_nodes import (
    BreakStmt,
    CompoundStmt,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    ExprStmt,
    ForStmt,
    FunctionDef,
    IfStmt,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    WhileStmt,
)
from .graph import BasicBlock, ControlFlowGraph, Edge, EdgeKind

#: Saturation value for path counts ("computationally intractable" territory).
PATH_COUNT_CAP = 10**18

#: Loop-iteration count assumed when a loop carries no ``#pragma loopbound``.
DEFAULT_LOOP_BOUND = 1


class PathCountError(Exception):
    """Raised when a path count cannot be computed (e.g. unbounded loop)."""


def _saturating_mul(a: int, b: int) -> int:
    result = a * b
    return min(result, PATH_COUNT_CAP)


def _saturating_add(a: int, b: int) -> int:
    result = a + b
    return min(result, PATH_COUNT_CAP)


def _saturating_pow(base: int, exponent: int) -> int:
    result = 1
    for _ in range(exponent):
        result = _saturating_mul(result, base)
        if result >= PATH_COUNT_CAP:
            return PATH_COUNT_CAP
    return result


# --------------------------------------------------------------------------- #
# AST-structural path counting
# --------------------------------------------------------------------------- #
def count_ast_paths(
    stmt: Stmt | FunctionDef,
    *,
    default_loop_bound: int | None = DEFAULT_LOOP_BOUND,
) -> int:
    """Count the execution paths through *stmt* (or a whole function body).

    ``default_loop_bound`` is used for loops without an explicit
    ``#pragma loopbound`` annotation; passing ``None`` makes unannotated loops
    an error instead.

    The count treats ``return`` as terminating the local path (a sequence
    ending in ``return`` contributes the paths accumulated so far) and assumes
    the structured, fall-through-free switch statements produced by the
    parser.  ``break``/``continue`` inside loop bodies are counted
    conservatively as ordinary path ends of the body.
    """
    if isinstance(stmt, FunctionDef):
        return count_ast_paths(stmt.body, default_loop_bound=default_loop_bound)
    return _count_stmt(stmt, default_loop_bound)


def _count_stmt(stmt: Stmt, default_bound: int | None) -> int:
    if isinstance(stmt, CompoundStmt):
        total = 1
        for child in stmt.statements:
            total = _saturating_mul(total, _count_stmt(child, default_bound))
            if isinstance(child, ReturnStmt):
                break
        return total
    if isinstance(stmt, (DeclStmt, ExprStmt, EmptyStmt, ReturnStmt, BreakStmt, ContinueStmt)):
        return 1
    if isinstance(stmt, IfStmt):
        then_paths = _count_stmt(stmt.then_branch, default_bound)
        else_paths = (
            _count_stmt(stmt.else_branch, default_bound) if stmt.else_branch is not None else 1
        )
        return _saturating_add(then_paths, else_paths)
    if isinstance(stmt, SwitchStmt):
        total = 0
        for case in stmt.cases:
            total = _saturating_add(total, _count_stmt(case.body, default_bound))
        if stmt.default_case is None:
            total = _saturating_add(total, 1)  # implicit empty default path
        return total
    if isinstance(stmt, WhileStmt):
        bound = _resolve_bound(stmt.loop_bound, default_bound)
        body_paths = _count_stmt(stmt.body, default_bound)
        total = 0
        for iterations in range(bound + 1):
            total = _saturating_add(total, _saturating_pow(body_paths, iterations))
        return total
    if isinstance(stmt, DoWhileStmt):
        bound = max(1, _resolve_bound(stmt.loop_bound, default_bound))
        body_paths = _count_stmt(stmt.body, default_bound)
        total = 0
        for iterations in range(1, bound + 1):
            total = _saturating_add(total, _saturating_pow(body_paths, iterations))
        return total
    if isinstance(stmt, ForStmt):
        bound = _resolve_bound(stmt.loop_bound, default_bound)
        body_paths = _count_stmt(stmt.body, default_bound)
        init_paths = _count_stmt(stmt.init, default_bound) if stmt.init is not None else 1
        total = 0
        for iterations in range(bound + 1):
            total = _saturating_add(total, _saturating_pow(body_paths, iterations))
        return _saturating_mul(init_paths, total)
    raise PathCountError(f"cannot count paths of {type(stmt).__name__}")


def _resolve_bound(annotated: int | None, default: int | None) -> int:
    if annotated is not None:
        return annotated
    if default is not None:
        return default
    raise PathCountError(
        "loop without a #pragma loopbound annotation and no default bound given"
    )


# --------------------------------------------------------------------------- #
# CFG-level path counting and enumeration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CfgPath:
    """A concrete path through a CFG region.

    ``blocks`` is the block-id sequence, ``edges`` the traversed edges (one
    fewer than blocks when the path ends inside the region, equal when the
    last edge leaves the region).
    """

    blocks: tuple[int, ...]
    edges: tuple[Edge, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.blocks)

    def contains_block(self, block_id: int) -> bool:
        return block_id in self.blocks


class CfgPathCounter:
    """Counts acyclic paths between blocks of a CFG (ignoring back edges)."""

    def __init__(self, cfg: ControlFlowGraph):
        self._cfg = cfg
        self._memo: dict[tuple[int, frozenset[int] | None], int] = {}

    def count_paths(
        self,
        source: BasicBlock | int,
        targets: Sequence[BasicBlock | int] | None = None,
        region: set[int] | None = None,
    ) -> int:
        """Number of acyclic paths from *source* to any of *targets*.

        ``targets`` defaults to the exit block.  ``region`` restricts the
        traversal to a block-id subset (paths leave the region as soon as they
        step outside it, which counts as reaching a target when *targets* is
        ``None``).
        """
        source_id = source.block_id if isinstance(source, BasicBlock) else source
        target_ids = self._target_ids(targets)
        region_key = frozenset(region) if region is not None else None
        perf.add("paths.count_calls")
        return self._count(source_id, target_ids, region, region_key)

    def _target_ids(self, targets: Sequence[BasicBlock | int] | None) -> set[int]:
        if targets is None:
            return {self._cfg.exit.block_id}
        return {t.block_id if isinstance(t, BasicBlock) else t for t in targets}

    def _count(
        self,
        block_id: int,
        targets: set[int],
        region: set[int] | None,
        region_key: frozenset[int] | None,
    ) -> int:
        if block_id in targets:
            return 1
        if region is not None and block_id not in region:
            return 1
        key = (block_id, region_key)
        if key in self._memo:
            return self._memo[key]
        total = 0
        out_edges = [e for e in self._cfg.out_edges(block_id) if e.kind is not EdgeKind.BACK]
        if not out_edges:
            total = 1
        for edge in out_edges:
            total = _saturating_add(total, self._count(edge.target, targets, region, region_key))
        self._memo[key] = total
        return total


def count_cfg_paths(cfg: ControlFlowGraph) -> int:
    """Acyclic path count from entry to exit of the whole CFG."""
    return CfgPathCounter(cfg).count_paths(cfg.entry)


def enumerate_paths(
    cfg: ControlFlowGraph,
    source: BasicBlock | int | None = None,
    targets: Sequence[BasicBlock | int] | None = None,
    region: set[int] | None = None,
    limit: int = 100_000,
) -> Iterator[CfgPath]:
    """Enumerate acyclic paths (back edges excluded) through a CFG region.

    Enumeration starts at *source* (default: entry block) and stops a path at
    any block in *targets* (default: the exit block), at a block outside
    *region*, or at a block with no forward successors.  At most *limit* paths
    are produced; exceeding the limit raises :class:`PathCountError` because a
    caller that enumerates paths (the measurement planner) must never silently
    miss one.
    """
    source_id = (
        cfg.entry.block_id
        if source is None
        else source.block_id if isinstance(source, BasicBlock) else source
    )
    if targets is None:
        target_ids = {cfg.exit.block_id}
    else:
        target_ids = {t.block_id if isinstance(t, BasicBlock) else t for t in targets}

    produced = 0
    stack: list[tuple[int, tuple[int, ...], tuple[Edge, ...]]] = [(source_id, (source_id,), ())]
    try:
        while stack:
            block_id, blocks, edges = stack.pop()
            is_terminal = (
                block_id in target_ids
                or (region is not None and block_id not in region and len(blocks) > 1)
            )
            out_edges = [e for e in cfg.out_edges(block_id) if e.kind is not EdgeKind.BACK]
            if is_terminal or not out_edges:
                produced += 1
                if produced > limit:
                    raise PathCountError(f"more than {limit} paths in region")
                yield CfgPath(blocks=blocks, edges=edges)
                continue
            for edge in reversed(out_edges):
                stack.append((edge.target, blocks + (edge.target,), edges + (edge,)))
    finally:
        if produced:
            perf.add("paths.enumerated", produced)
