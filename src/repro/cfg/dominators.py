"""Dominator computation for control-flow graphs.

The general partitioner (:mod:`repro.partition.general`) uses dominance to
discover single-entry regions, and several tests use it as an independent
structural check on builder output.  The implementation is the classic
iterative dataflow algorithm of Cooper, Harvey and Kennedy working on the
reverse-post-order numbering of the graph; graphs produced by the builder are
small enough (a few thousand blocks) that asymptotics do not matter.
"""

from __future__ import annotations

from .graph import BasicBlock, ControlFlowGraph, EdgeKind


class DominatorTree:
    """Immediate-dominator information for a CFG."""

    def __init__(self, cfg: ControlFlowGraph):
        self._cfg = cfg
        self._rpo = self._reverse_post_order()
        self._index = {block_id: i for i, block_id in enumerate(self._rpo)}
        self._idom: dict[int, int] = {}
        self._compute()

    # ------------------------------------------------------------------ #
    def _reverse_post_order(self) -> list[int]:
        visited: set[int] = set()
        order: list[int] = []

        def visit(block_id: int) -> None:
            stack = [(block_id, iter(self._cfg.out_edges(block_id)))]
            visited.add(block_id)
            while stack:
                current, edges = stack[-1]
                advanced = False
                for edge in edges:
                    if edge.target not in visited:
                        visited.add(edge.target)
                        stack.append((edge.target, iter(self._cfg.out_edges(edge.target))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self._cfg.entry.block_id)
        order.reverse()
        return order

    def _compute(self) -> None:
        entry = self._cfg.entry.block_id
        idom: dict[int, int | None] = {block_id: None for block_id in self._rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block_id in self._rpo:
                if block_id == entry:
                    continue
                preds = [
                    e.source
                    for e in self._cfg.in_edges(block_id)
                    if e.source in self._index and idom.get(e.source) is not None
                ]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom[block_id] != new_idom:
                    idom[block_id] = new_idom
                    changed = True
        self._idom = {k: v for k, v in idom.items() if v is not None}

    def _intersect(self, a: int, b: int, idom: dict[int, int | None]) -> int:
        finger_a, finger_b = a, b
        while finger_a != finger_b:
            while self._index[finger_a] > self._index[finger_b]:
                finger_a = idom[finger_a]  # type: ignore[assignment]
            while self._index[finger_b] > self._index[finger_a]:
                finger_b = idom[finger_b]  # type: ignore[assignment]
        return finger_a

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def immediate_dominator(self, block: BasicBlock | int) -> int | None:
        """Id of the immediate dominator (``None`` for the entry block)."""
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        if block_id == self._cfg.entry.block_id:
            return None
        return self._idom.get(block_id)

    def dominates(self, dominator: BasicBlock | int, block: BasicBlock | int) -> bool:
        """True when *dominator* dominates *block* (reflexive)."""
        dom_id = dominator.block_id if isinstance(dominator, BasicBlock) else dominator
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        current: int | None = block_id
        while current is not None:
            if current == dom_id:
                return True
            if current == self._cfg.entry.block_id:
                return False
            current = self._idom.get(current)
        return False

    def dominated_set(self, block: BasicBlock | int) -> set[int]:
        """All block ids dominated by *block* (including itself)."""
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        return {
            candidate
            for candidate in self._idom.keys() | {self._cfg.entry.block_id}
            if self.dominates(block_id, candidate)
        }

    def dominance_frontier(self) -> dict[int, set[int]]:
        """Dominance frontier of every block (Cytron et al. formulation)."""
        frontier: dict[int, set[int]] = {block_id: set() for block_id in self._rpo}
        for block_id in self._rpo:
            preds = [e.source for e in self._cfg.in_edges(block_id) if e.source in self._index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner != self._idom.get(block_id) and runner is not None:
                    frontier.setdefault(runner, set()).add(block_id)
                    if runner == self._cfg.entry.block_id:
                        break
                    runner = self._idom.get(runner)
        return frontier


def natural_loops(cfg: ControlFlowGraph) -> list[tuple[int, set[int]]]:
    """Return (header, body-block-ids) for every natural loop.

    Back edges are the edges tagged :data:`EdgeKind.BACK` by the builder; the
    loop body is found by the usual reverse reachability walk from the latch.
    """
    loops: list[tuple[int, set[int]]] = []
    for edge in cfg.edges():
        if edge.kind is not EdgeKind.BACK:
            continue
        header = edge.target
        body = {header, edge.source}
        stack = [edge.source]
        while stack:
            block_id = stack.pop()
            for in_edge in cfg.in_edges(block_id):
                if in_edge.source not in body:
                    body.add(in_edge.source)
                    stack.append(in_edge.source)
        loops.append((header, body))
    return loops
