"""Graphviz DOT export of control-flow graphs.

The paper's Figure 1 shows the example program next to its CFG with nodes
labelled by the source line of their first instruction; :func:`to_dot`
produces the same style of drawing so examples and reports can regenerate the
figure.  No graphviz binary is required -- the output is plain DOT text.
"""

from __future__ import annotations

from ..minic.pretty import PrettyPrinter
from .graph import BasicBlock, ControlFlowGraph, EdgeKind


def _block_label(block: BasicBlock, show_statements: bool) -> str:
    label = block.label()
    if not show_statements or block.is_virtual:
        return label
    printer = PrettyPrinter(indent="")
    lines = [label]
    for stmt in block.statements:
        text = printer.print_stmt(stmt, 0).replace('"', "'")
        lines.append(text if len(text) <= 40 else text[:37] + "...")
    if block.terminator.condition is not None:
        cond = printer.print_expr(block.terminator.condition).replace('"', "'")
        lines.append(f"[{cond}?]")
    return "\\n".join(lines)


def to_dot(
    cfg: ControlFlowGraph,
    *,
    show_statements: bool = False,
    highlight_blocks: set[int] | None = None,
) -> str:
    """Render *cfg* as Graphviz DOT text.

    ``highlight_blocks`` (block ids) are drawn with a doubled border --
    examples use this to show which blocks belong to which program segment.
    """
    highlight = highlight_blocks or set()
    lines = [f'digraph "{cfg.function_name}" {{', "    node [shape=circle];"]
    for block in cfg.blocks():
        label = _block_label(block, show_statements)
        attributes = [f'label="{label}"']
        if block.is_virtual:
            attributes.append("shape=oval")
        if block.block_id in highlight:
            attributes.append("peripheries=2")
        lines.append(f"    n{block.block_id} [{', '.join(attributes)}];")
    for edge in cfg.edges():
        attributes = []
        label = edge.label()
        if label:
            attributes.append(f'label="{label}"')
        if edge.kind is EdgeKind.BACK:
            attributes.append("style=dashed")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"    n{edge.source} -> n{edge.target}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"
