"""Control-flow-graph data structures.

A :class:`ControlFlowGraph` is built per function by
:mod:`repro.cfg.builder`.  It consists of :class:`BasicBlock` nodes connected
by :class:`Edge` objects.  Following the paper (Section 2.1):

    "A basic block denotes a sequence of consecutive statements in which flow
    of control enters at the beginning and leaves at the end, without the
    possibility of branching except at the end of the basic block."

Two peculiarities of the reproduction (documented in DESIGN.md §5):

* **Calls terminate basic blocks.**  The measurement tool instruments around
  calls, and this rule is required to reproduce the block counts of the
  paper's Figure 1 / Table 1 (11 measurable blocks for the example program).
* The graph has a virtual entry and a virtual exit block that carry no
  statements and are never instrumented; ``ip = 2 * |blocks|`` in Table 1
  refers to the *real* blocks only.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from ..minic.ast_nodes import Expr, Node, Stmt


class EdgeKind(enum.Enum):
    """Classification of a CFG edge."""

    FALLTHROUGH = "fallthrough"
    TRUE = "true"
    FALSE = "false"
    CASE = "case"
    DEFAULT = "default"
    BACK = "back"
    RETURN = "return"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class BlockKind(enum.Enum):
    """Role of a basic block inside the CFG."""

    ENTRY = "entry"
    EXIT = "exit"
    NORMAL = "normal"


class TerminatorKind(enum.Enum):
    """How control leaves a basic block."""

    JUMP = "jump"            # single unconditional successor
    BRANCH = "branch"        # two-way conditional branch
    SWITCH = "switch"        # multi-way branch on an integer expression
    RETURN = "return"        # leaves the function
    NONE = "none"            # exit block


@dataclass
class Terminator:
    """The control transfer at the end of a basic block.

    ``condition`` is the branch/switch expression (``None`` for jumps and
    returns); ``ast_node`` is the statement the terminator originates from
    (the ``if``/``switch``/loop statement), used by the partitioner to relate
    CFG regions back to the abstract syntax tree.
    """

    kind: TerminatorKind = TerminatorKind.JUMP
    condition: Expr | None = None
    ast_node: Node | None = None


@dataclass
class Edge:
    """A directed CFG edge."""

    source: int
    target: int
    kind: EdgeKind = EdgeKind.FALLTHROUGH
    #: Case label values for :data:`EdgeKind.CASE` edges.
    case_values: tuple[int, ...] = ()

    @property
    def key(self) -> tuple[int, int, str, tuple[int, ...]]:
        return (self.source, self.target, self.kind.value, self.case_values)

    def label(self) -> str:
        """A short human-readable edge label (used for DOT export)."""
        if self.kind is EdgeKind.CASE:
            return "case " + ",".join(str(v) for v in self.case_values)
        if self.kind in (EdgeKind.TRUE, EdgeKind.FALSE, EdgeKind.DEFAULT, EdgeKind.BACK):
            return self.kind.value
        return ""


@dataclass
class BasicBlock:
    """A CFG node.

    Attributes
    ----------
    block_id:
        Unique integer id inside the owning CFG.
    statements:
        Straight-line statements executed when the block runs (declarations,
        assignments, calls, the ``return`` statement).  Branch conditions are
        *not* listed here -- they live in :attr:`terminator`.
    terminator:
        How control leaves the block.
    kind:
        Entry / exit / normal.
    source_line:
        Line of the first statement (mirrors the node labels of the paper's
        Figure 1, which are "the line numbers of the first instruction of the
        respective basic block").
    """

    block_id: int
    statements: list[Stmt] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Terminator)
    kind: BlockKind = BlockKind.NORMAL
    source_line: int | None = None

    @property
    def is_virtual(self) -> bool:
        """Entry/exit blocks carry no code and are never instrumented."""
        return self.kind is not BlockKind.NORMAL

    @property
    def has_call(self) -> bool:
        from ..minic.ast_nodes import CallExpr

        for stmt in self.statements:
            for node in stmt.walk():
                if isinstance(node, CallExpr):
                    return True
        return False

    def label(self) -> str:
        """Human-readable block label for reports and DOT export."""
        if self.kind is BlockKind.ENTRY:
            return "start"
        if self.kind is BlockKind.EXIT:
            return "end"
        if self.source_line is not None:
            return str(self.source_line)
        return f"B{self.block_id}"

    def __hash__(self) -> int:
        return hash(("BasicBlock", self.block_id))


class CfgError(Exception):
    """Raised when a CFG is malformed or an operation is invalid."""


def depth_first_postorder(roots: Iterable, successors: dict) -> list:
    """Iterative depth-first postorder over a dict adjacency from *roots*.

    Generic over node type (the dataflow solver reuses it for arbitrary flow
    graphs); nodes unreachable from *roots* are not visited.
    """
    seen: set = set()
    postorder: list = []
    for root in roots:
        if root in seen:
            continue
        seen.add(root)
        stack: list = [(root, iter(successors.get(root, ())))]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(successors.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                postorder.append(node)
    return postorder


class ControlFlowGraph:
    """A per-function control-flow graph."""

    def __init__(self, function_name: str):
        self.function_name = function_name
        self._blocks: dict[int, BasicBlock] = {}
        self._edges: list[Edge] = []
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}
        self._next_id = 0
        #: scratch space for analyses keyed off this exact graph shape; cleared
        #: whenever the block/edge structure changes (see
        #: :meth:`invalidate_analysis_caches`)
        self._analysis_cache: dict[str, object] = {}
        self.entry: BasicBlock = self.new_block(kind=BlockKind.ENTRY)
        self.exit: BasicBlock = self.new_block(kind=BlockKind.EXIT)
        self.exit.terminator = Terminator(kind=TerminatorKind.NONE)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def new_block(self, kind: BlockKind = BlockKind.NORMAL) -> BasicBlock:
        block = BasicBlock(block_id=self._next_id, kind=kind)
        self._next_id += 1
        self._blocks[block.block_id] = block
        self._succ[block.block_id] = []
        self._pred[block.block_id] = []
        self.invalidate_analysis_caches()
        return block

    def add_edge(
        self,
        source: BasicBlock | int,
        target: BasicBlock | int,
        kind: EdgeKind = EdgeKind.FALLTHROUGH,
        case_values: Iterable[int] = (),
    ) -> Edge:
        src = source.block_id if isinstance(source, BasicBlock) else source
        dst = target.block_id if isinstance(target, BasicBlock) else target
        if src not in self._blocks or dst not in self._blocks:
            raise CfgError(f"edge references unknown block ({src} -> {dst})")
        edge = Edge(source=src, target=dst, kind=kind, case_values=tuple(case_values))
        self._edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        self.invalidate_analysis_caches()
        return edge

    def remove_block(self, block: BasicBlock | int) -> None:
        """Remove an (unreachable, empty) block and its edges."""
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        if block_id in (self.entry.block_id, self.exit.block_id):
            raise CfgError("cannot remove the entry or exit block")
        self._edges = [e for e in self._edges if e.source != block_id and e.target != block_id]
        for edges in self._succ.values():
            edges[:] = [e for e in edges if e.target != block_id]
        for edges in self._pred.values():
            edges[:] = [e for e in edges if e.source != block_id]
        self._succ.pop(block_id, None)
        self._pred.pop(block_id, None)
        self._blocks.pop(block_id, None)
        self.invalidate_analysis_caches()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def block(self, block_id: int) -> BasicBlock:
        try:
            return self._blocks[block_id]
        except KeyError as exc:
            raise CfgError(f"no block with id {block_id}") from exc

    def blocks(self) -> list[BasicBlock]:
        """All blocks in id order (including entry/exit)."""
        return [self._blocks[i] for i in sorted(self._blocks)]

    def real_blocks(self) -> list[BasicBlock]:
        """All non-virtual blocks (the measurable ones)."""
        return [b for b in self.blocks() if not b.is_virtual]

    def edges(self) -> list[Edge]:
        return list(self._edges)

    def successors(self, block: BasicBlock | int) -> list[BasicBlock]:
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        return [self._blocks[e.target] for e in self._succ.get(block_id, ())]

    def predecessors(self, block: BasicBlock | int) -> list[BasicBlock]:
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        return [self._blocks[e.source] for e in self._pred.get(block_id, ())]

    def out_edges(self, block: BasicBlock | int) -> list[Edge]:
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        return list(self._succ.get(block_id, ()))

    def in_edges(self, block: BasicBlock | int) -> list[Edge]:
        block_id = block.block_id if isinstance(block, BasicBlock) else block
        return list(self._pred.get(block_id, ()))

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks())

    # ------------------------------------------------------------------ #
    # cached analysis accessors
    # ------------------------------------------------------------------ #
    @property
    def analysis_cache(self) -> dict[str, object]:
        """Per-graph scratch space for derived analysis data.

        Analyses (use/def memoisation, the bitset dataflow index, ...) stash
        expensive-to-build structures here instead of recomputing them on
        every call.  The cache is cleared automatically on every structural
        mutation; code that mutates block *statements* in place after
        construction must call :meth:`invalidate_analysis_caches` itself.
        """
        return self._analysis_cache

    def invalidate_analysis_caches(self) -> None:
        """Drop all cached adjacency, ordering and analysis data."""
        self._analysis_cache.clear()

    def successor_map(self) -> dict[int, tuple[int, ...]]:
        """Cached block-id adjacency: ``block id -> successor ids``."""
        cached = self._analysis_cache.get("successor_map")
        if cached is None:
            cached = {
                bid: tuple(e.target for e in edges)
                for bid, edges in self._succ.items()
            }
            self._analysis_cache["successor_map"] = cached
        return cached  # type: ignore[return-value]

    def predecessor_map(self) -> dict[int, tuple[int, ...]]:
        """Cached block-id adjacency: ``block id -> predecessor ids``."""
        cached = self._analysis_cache.get("predecessor_map")
        if cached is None:
            cached = {
                bid: tuple(e.source for e in edges)
                for bid, edges in self._pred.items()
            }
            self._analysis_cache["predecessor_map"] = cached
        return cached  # type: ignore[return-value]

    def reverse_postorder(self) -> tuple[int, ...]:
        """Block ids in reverse postorder from the entry block (cached).

        This is the canonical iteration order for forward dataflow problems:
        ignoring back edges, every predecessor of a block appears before the
        block itself.  Blocks unreachable from the entry are appended at the
        end in id order so the sequence always covers the whole graph.
        """
        cached = self._analysis_cache.get("reverse_postorder")
        if cached is None:
            succ = self.successor_map()
            order = list(reversed(depth_first_postorder([self.entry.block_id], succ)))
            reached = set(order)
            order.extend(bid for bid in sorted(self._blocks) if bid not in reached)
            cached = tuple(order)
            self._analysis_cache["reverse_postorder"] = cached
        return cached  # type: ignore[return-value]

    def backward_reverse_postorder(self) -> tuple[int, ...]:
        """Block ids in reverse postorder of the *reversed* graph (cached).

        The analogous iteration order for backward dataflow problems
        (liveness): computed from the exit block over predecessor edges.
        """
        cached = self._analysis_cache.get("backward_reverse_postorder")
        if cached is None:
            pred = self.predecessor_map()
            order = list(reversed(depth_first_postorder([self.exit.block_id], pred)))
            reached = set(order)
            order.extend(bid for bid in sorted(self._blocks) if bid not in reached)
            cached = tuple(order)
            self._analysis_cache["backward_reverse_postorder"] = cached
        return cached  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # algorithms
    # ------------------------------------------------------------------ #
    def reachable_blocks(
        self, infeasible_edges: set[tuple[int, int, str]] | frozenset | None = None
    ) -> set[int]:
        """Ids of blocks reachable from the entry block.

        ``infeasible_edges`` optionally excludes edges a sound analysis has
        proven can never be taken (``(source, target, kind value)`` triples,
        see :mod:`repro.sa.feasibility`); the traversal then yields the
        blocks reachable along *feasible* edges only.
        """
        seen: set[int] = set()
        stack = [self.entry.block_id]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            for e in self._succ.get(block_id, ()):
                if (
                    infeasible_edges is not None
                    and (e.source, e.target, e.kind.value) in infeasible_edges
                ):
                    continue
                stack.append(e.target)
        return seen

    def prune_unreachable(self) -> list[int]:
        """Remove unreachable blocks; return the removed ids."""
        reachable = self.reachable_blocks()
        removed = [bid for bid in list(self._blocks) if bid not in reachable
                   and bid != self.exit.block_id]
        for block_id in removed:
            self.remove_block(block_id)
        return removed

    def topological_order(self) -> list[BasicBlock]:
        """Blocks in topological order, ignoring back edges.

        Works for reducible graphs produced by the builder (back edges are
        tagged :data:`EdgeKind.BACK` at construction time).
        """
        indegree: dict[int, int] = {bid: 0 for bid in self._blocks}
        for edge in self._edges:
            if edge.kind is not EdgeKind.BACK:
                indegree[edge.target] += 1
        worklist = deque(bid for bid, deg in sorted(indegree.items()) if deg == 0)
        order: list[BasicBlock] = []
        while worklist:
            block_id = worklist.popleft()
            order.append(self._blocks[block_id])
            for edge in self._succ.get(block_id, ()):
                if edge.kind is EdgeKind.BACK:
                    continue
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    worklist.append(edge.target)
        if len(order) != len(self._blocks):
            raise CfgError("graph contains a cycle not tagged with BACK edges")
        return order

    def is_acyclic_ignoring_back_edges(self) -> bool:
        try:
            self.topological_order()
        except CfgError:
            return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raise :class:`CfgError` on violation."""
        if self.entry.statements:
            raise CfgError("entry block must be empty")
        if self.exit.statements:
            raise CfgError("exit block must be empty")
        if self._succ.get(self.exit.block_id):
            raise CfgError("exit block must not have successors")
        reachable = self.reachable_blocks()
        for block in self.blocks():
            if block.block_id not in reachable and block is not self.exit:
                raise CfgError(f"block {block.block_id} is unreachable")
            out_edges = self._succ.get(block.block_id, [])
            kind = block.terminator.kind
            if kind is TerminatorKind.JUMP and len(out_edges) != 1:
                raise CfgError(f"jump block {block.block_id} has {len(out_edges)} successors")
            if kind is TerminatorKind.BRANCH and len(out_edges) != 2:
                raise CfgError(f"branch block {block.block_id} has {len(out_edges)} successors")
            if kind is TerminatorKind.RETURN and len(out_edges) != 1:
                raise CfgError(f"return block {block.block_id} must go to exit")
            if kind is TerminatorKind.NONE and block is not self.exit and out_edges:
                raise CfgError(f"block {block.block_id} has no terminator but successors")

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> "nx.MultiDiGraph":
        """Export the CFG as a :class:`networkx.MultiDiGraph`."""
        graph = nx.MultiDiGraph(name=self.function_name)
        for block in self.blocks():
            graph.add_node(block.block_id, label=block.label(), kind=block.kind.value)
        for edge in self._edges:
            graph.add_edge(edge.source, edge.target, kind=edge.kind.value,
                           label=edge.label())
        return graph

    def summary(self) -> dict[str, int]:
        """Size statistics used by workload generators and reports."""
        branches = sum(
            1 for b in self.blocks() if b.terminator.kind is TerminatorKind.BRANCH
        )
        switches = sum(
            1 for b in self.blocks() if b.terminator.kind is TerminatorKind.SWITCH
        )
        return {
            "blocks": len(self.real_blocks()),
            "edges": len(self._edges),
            "conditional_branches": branches,
            "switches": switches,
        }
