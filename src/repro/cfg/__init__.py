"""Control-flow-graph substrate: blocks, builder, paths, dominators, DOT export."""

from __future__ import annotations

from .builder import CfgBuilder, build_all_cfgs, build_cfg
from .dominators import DominatorTree, natural_loops
from .dot import to_dot
from .graph import (
    BasicBlock,
    BlockKind,
    CfgError,
    ControlFlowGraph,
    Edge,
    EdgeKind,
    Terminator,
    TerminatorKind,
)
from .paths import (
    DEFAULT_LOOP_BOUND,
    PATH_COUNT_CAP,
    CfgPath,
    CfgPathCounter,
    PathCountError,
    count_ast_paths,
    count_cfg_paths,
    enumerate_paths,
)

__all__ = [
    "CfgBuilder",
    "build_all_cfgs",
    "build_cfg",
    "DominatorTree",
    "natural_loops",
    "to_dot",
    "BasicBlock",
    "BlockKind",
    "CfgError",
    "ControlFlowGraph",
    "Edge",
    "EdgeKind",
    "Terminator",
    "TerminatorKind",
    "DEFAULT_LOOP_BOUND",
    "PATH_COUNT_CAP",
    "CfgPath",
    "CfgPathCounter",
    "PathCountError",
    "count_ast_paths",
    "count_cfg_paths",
    "enumerate_paths",
]
