"""Timing-schema WCET computation from per-segment measurements.

The paper combines the measured worst-case times of the program segments into
a WCET bound for the whole function "using the measured execution times and a
simple timing schema approach" (Section 4).  The schema used here works on the
*segment graph*: collapse every program segment into a single node whose
weight is the worst execution time observed for that segment, connect the
nodes along the CFG edges between segments, and take the longest weighted path
from the entry segment to the function exit.

For the structured, loop-free code the paper analyses this is exactly the
textbook timing schema (sequence = sum, branch = max over alternatives) --
the longest path through the segment DAG visits one alternative of every
branch and sums everything on the way.  Loops are supported through iteration
factors: a segment nested inside loops contributes ``weight × Π(loop bounds)``,
a standard (conservative) extension.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from ..cfg.dominators import natural_loops
from ..cfg.graph import ControlFlowGraph, EdgeKind, TerminatorKind
from ..cfg.paths import DEFAULT_LOOP_BOUND
from ..measurement.database import MeasurementDatabase
from ..minic.ast_nodes import CallExpr, DoWhileStmt, ForStmt, WhileStmt
from ..minic.calls import call_sites
from ..partition.segment import PartitionResult, ProgramSegment


class WcetComputationError(Exception):
    """Raised when the WCET bound cannot be computed (e.g. unmeasured segment)."""


def static_segment_pessimisation(
    cfg: ControlFlowGraph, segment: ProgramSegment, cost_model
) -> int:
    """Conservative static cycle estimate for an *unmeasured* segment.

    When every path of a segment escaped measurement -- typically because the
    model-checking queries for it ran out of their
    :class:`~repro.mc.query.QueryBudget` -- the schema needs a weight that is
    guaranteed to dominate anything one execution of the segment could cost.
    The estimate charges every AST node of every block in the segment at the
    cost model's most expensive operation (calls at their external-call
    charge), and sums over *all* blocks: a superset of any single path, so
    the resulting bound stays safe ("unreached, pessimise").  Within-segment
    loop repetition is covered by the schema's iteration factors, which
    multiply this per-execution estimate like any measured weight.
    """
    # every per-operation cycle field of the model: the estimate must
    # dominate the dearest operation even under custom cost models
    worst_op = max(
        cost_model.load_variable,
        cost_model.load_literal,
        cost_model.store_variable,
        cost_model.alu_op,
        cost_model.compare_op,
        cost_model.logic_op,
        cost_model.shift_op,
        cost_model.multiply_op,
        cost_model.divide_op,
        cost_model.unary_op,
        cost_model.cast_op,
        cost_model.branch_taken,
        cost_model.branch_not_taken,
        cost_model.switch_dispatch_per_case,
        cost_model.return_cost,
        cost_model.declaration_cost,
    )
    worst_node = max(1, round(worst_op * cost_model.wide_factor))

    def node_cost(root) -> int:
        cost = 0
        for node in root.walk():
            if isinstance(node, CallExpr):
                cost += cost_model.call_overhead + cost_model.external_call_cost(
                    node.name
                )
            cost += worst_node
        return cost

    total = 0
    for block_id in segment.block_ids:
        block = cfg.block(block_id)
        for stmt in block.statements:
            total += node_cost(stmt)
        terminator = block.terminator
        if terminator.condition is not None:
            total += node_cost(terminator.condition) + cost_model.branch_taken
        if terminator.kind is TerminatorKind.SWITCH:
            total += cost_model.switch_dispatch_per_case * max(
                1, len(cfg.out_edges(block))
            )
    return total


@dataclass
class SegmentContribution:
    """How one segment enters the WCET bound."""

    segment_id: int
    max_cycles: int
    iteration_factor: int
    on_critical_path: bool = False
    #: static per-execution floor from summarised call sites in the segment
    #: (``call overhead + callee WCET bound`` per site); the segment weight is
    #: never below this, even when measurement under-covered the call
    summarised_call_cycles: int = 0
    #: True when the weight is the static pessimisation of an unmeasured
    #: segment (no observation, no infeasibility proof -- e.g. every query
    #: for it exhausted its budget)
    pessimised: bool = False

    @property
    def weighted_cycles(self) -> int:
        return self.max_cycles * self.iteration_factor


@dataclass
class WcetBound:
    """Result of the timing-schema computation."""

    function_name: str
    bound_cycles: int
    critical_segments: list[int] = field(default_factory=list)
    contributions: dict[int, SegmentContribution] = field(default_factory=dict)

    def contribution(self, segment_id: int) -> SegmentContribution:
        return self.contributions[segment_id]

    @property
    def pessimised_segments(self) -> list[int]:
        """Segments whose weight is a static estimate, not a measurement."""
        return sorted(
            segment_id
            for segment_id, contribution in self.contributions.items()
            if contribution.pessimised
        )


class TimingSchema:
    """Computes a WCET bound from a partition and its measurement database."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        partition: PartitionResult,
        default_loop_bound: int = DEFAULT_LOOP_BOUND,
        callee_bounds: Mapping[str, int] | None = None,
        call_overhead: int = 0,
        inferred_loop_bounds: Mapping[int, int] | None = None,
    ):
        """``callee_bounds`` maps summarised callee names to their WCET bound.

        When given, every segment's weight is floored at the sum of
        ``call_overhead + bound`` over its call sites to summarised callees:
        the measurement campaign charges those calls through the board's
        stubbed cost model, but if the worst call-bearing path of a segment
        escaped measurement the static floor keeps the schema conservative.

        ``inferred_loop_bounds`` maps loop-header block ids to iteration
        counts *proven* by :func:`repro.sa.loopbounds.infer_loop_bounds`.
        Precedence per loop: an explicit ``#pragma loopbound`` wins, then an
        inferred bound, then ``default_loop_bound``.
        """
        self._cfg = cfg
        self._partition = partition
        self._default_loop_bound = default_loop_bound
        self._callee_bounds = dict(callee_bounds or {})
        self._call_overhead = call_overhead
        self._inferred_loop_bounds = dict(inferred_loop_bounds or {})

    # ------------------------------------------------------------------ #
    def compute(
        self,
        database: MeasurementDatabase,
        unreachable_segments: set[int] | None = None,
        pessimised_segments: Mapping[int, int] | None = None,
        floor_segments: Mapping[int, int] | None = None,
    ) -> WcetBound:
        """Combine per-segment maxima into the WCET bound.

        ``unreachable_segments`` lists segments that are known to be
        infeasible (every path through them was proven unreachable by the
        model checker); they contribute zero cycles instead of raising a
        missing-measurement error.  ``pessimised_segments`` maps segments
        that are *not* proven infeasible but have no measurement either
        (uncovered targets, exhausted query budgets) to a static worst-case
        estimate (:func:`static_segment_pessimisation`): they enter the
        bound at that estimate instead of failing the computation.
        ``floor_segments`` maps segments to a static lower floor applied *on
        top of* measurement: ``weight = max(measured, floor)``.  The
        degradation path uses it when a fault may have cost observations
        (a vector lost mid-campaign, a solver query dropped): flooring every
        feasible segment at its static estimate keeps the bound at least as
        large as both the fault-free bound and anything actually observed.
        """
        weights = self._segment_weights(
            database,
            unreachable_segments or set(),
            pessimised_segments or {},
            floor_segments or {},
        )
        clusters = self._loop_clusters()
        cluster_of: dict[int, int] = {}
        for index, members in enumerate(clusters):
            for segment_id in members:
                cluster_of[segment_id] = index

        # node = cluster index; weight of a loop cluster is the *sum* of its
        # members (every member may execute on every iteration -- a safe
        # over-approximation), weight of a singleton is its own contribution
        node_weight: dict[int, int] = {}
        for index, members in enumerate(clusters):
            node_weight[index] = sum(weights[s].weighted_cycles for s in members)

        graph: dict[int, set[int]] = {index: set() for index in range(len(clusters))}
        segment_graph = self._segment_graph()
        for source, targets in segment_graph.items():
            for target in targets:
                a, b = cluster_of[source], cluster_of[target]
                if a != b:
                    graph[a].add(b)

        order = self._topological_order({k: sorted(v) for k, v in graph.items()})
        entry_cluster = cluster_of[self._entry_segment()]

        best: dict[int, int] = {index: 0 for index in node_weight}
        predecessor: dict[int, int | None] = {index: None for index in node_weight}
        best[entry_cluster] = node_weight[entry_cluster]
        for node in order:
            for successor in graph.get(node, ()):
                candidate = best[node] + node_weight[successor]
                if candidate > best[successor]:
                    best[successor] = candidate
                    predecessor[successor] = node

        bound = max(best.values()) if best else 0
        critical: list[int] = []
        if best:
            current: int | None = max(best, key=lambda index: best[index])
            while current is not None:
                for segment_id in clusters[current]:
                    critical.append(segment_id)
                    weights[segment_id].on_critical_path = True
                current = predecessor[current]
            critical.reverse()
        return WcetBound(
            function_name=self._partition.function_name,
            bound_cycles=bound,
            critical_segments=critical,
            contributions=weights,
        )

    def _loop_clusters(self) -> list[list[int]]:
        """Group segments into loop clusters (segments sharing a natural loop).

        Segments that intersect the same loop body (or transitively overlap
        through nested loops) form one cluster; every other segment is a
        singleton cluster.  Clusters make the collapsed segment graph acyclic
        so the longest-path computation is well defined even for programs with
        loops.
        """
        loops = natural_loops(self._cfg)
        parent: dict[int, int] = {s.segment_id: s.segment_id for s in self._partition.segments}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            parent[find(a)] = find(b)

        for _, body in loops:
            members = [
                s.segment_id for s in self._partition.segments if s.block_ids & body
            ]
            for segment_id in members[1:]:
                union(members[0], segment_id)

        groups: dict[int, list[int]] = {}
        for segment in self._partition.segments:
            groups.setdefault(find(segment.segment_id), []).append(segment.segment_id)
        return [sorted(members) for _, members in sorted(groups.items())]

    # ------------------------------------------------------------------ #
    def _segment_weights(
        self,
        database: MeasurementDatabase,
        unreachable: set[int],
        pessimised: Mapping[int, int],
        floors: Mapping[int, int],
    ) -> dict[int, SegmentContribution]:
        iteration = self._iteration_factors()
        weights: dict[int, SegmentContribution] = {}
        for segment in self._partition.segments:
            max_cycles = database.max_cycles(segment.segment_id)
            statically_pessimised = False
            if max_cycles is None and segment.segment_id in unreachable:
                max_cycles = 0
            if max_cycles is None and segment.segment_id in pessimised:
                max_cycles = pessimised[segment.segment_id]
                statically_pessimised = True
            if max_cycles is None:
                raise WcetComputationError(
                    f"segment {segment.segment_id} has no measurements; "
                    "run the measurement campaign first"
                )
            if segment.segment_id not in unreachable:
                floor = floors.get(segment.segment_id)
                if floor is not None and floor > max_cycles:
                    max_cycles = floor
                    statically_pessimised = True
            call_floor = self._summarised_call_floor(segment.block_ids)
            if segment.segment_id not in unreachable:
                max_cycles = max(max_cycles, call_floor)
            weights[segment.segment_id] = SegmentContribution(
                segment_id=segment.segment_id,
                max_cycles=max_cycles,
                iteration_factor=iteration.get(segment.segment_id, 1),
                summarised_call_cycles=call_floor,
                pessimised=statically_pessimised,
            )
        return weights

    def _summarised_call_floor(self, block_ids: set[int]) -> int:
        """Charge of the summarised call sites inside the given blocks."""
        if not self._callee_bounds:
            return 0
        floor = 0
        for block_id in block_ids:
            block = self._cfg.block(block_id)
            roots = list(block.statements)
            if block.terminator.condition is not None:
                roots.append(block.terminator.condition)
            for root in roots:
                for site in call_sites(root):
                    bound = self._callee_bounds.get(site.name)
                    if bound is not None:
                        floor += self._call_overhead + bound
        return floor

    def _iteration_factors(self) -> dict[int, int]:
        """Product of enclosing-loop bounds for every segment."""
        factors: dict[int, int] = {}
        loops = natural_loops(self._cfg)
        loop_bounds: list[tuple[int, set[int], int]] = []
        for header, body in loops:
            bound = self._loop_bound_of_header(header)
            loop_bounds.append((header, body, bound))
        for segment in self._partition.segments:
            factor = 1
            for header, body, bound in loop_bounds:
                if segment.block_ids & body:
                    if header in segment.block_ids:
                        # the loop condition executes bound+1 times (the final
                        # evaluation leaves the loop)
                        factor *= max(1, bound) + 1
                    else:
                        factor *= max(1, bound)
            factors[segment.segment_id] = factor
        return factors

    def _loop_bound_of_header(self, header_block_id: int) -> int:
        block = self._cfg.block(header_block_id)
        anchor = block.terminator.ast_node
        if isinstance(anchor, (WhileStmt, DoWhileStmt, ForStmt)) and anchor.loop_bound:
            return anchor.loop_bound
        inferred = self._inferred_loop_bounds.get(header_block_id)
        if inferred is not None:
            return inferred
        return self._default_loop_bound

    def _segment_graph(self) -> dict[int, list[int]]:
        """Forward edges between segments (back edges ignored)."""
        owner: dict[int, int] = {}
        for segment in self._partition.segments:
            for block_id in segment.block_ids:
                owner[block_id] = segment.segment_id
        graph: dict[int, set[int]] = {s.segment_id: set() for s in self._partition.segments}
        for edge in self._cfg.edges():
            if edge.kind is EdgeKind.BACK:
                continue
            source = owner.get(edge.source)
            target = owner.get(edge.target)
            if source is None or target is None or source == target:
                continue
            graph[source].add(target)
        return {segment_id: sorted(targets) for segment_id, targets in graph.items()}

    def _topological_order(self, graph: dict[int, list[int]]) -> list[int]:
        indegree: dict[int, int] = {segment_id: 0 for segment_id in graph}
        for targets in graph.values():
            for target in targets:
                indegree[target] += 1
        worklist = deque(sorted(sid for sid, degree in indegree.items() if degree == 0))
        order: list[int] = []
        while worklist:
            segment_id = worklist.popleft()
            order.append(segment_id)
            for target in graph.get(segment_id, ()):
                indegree[target] -= 1
                if indegree[target] == 0:
                    worklist.append(target)
        if len(order) != len(graph):
            raise WcetComputationError(
                "segment graph is cyclic even after removing back edges; "
                "the partition does not respect loop structure"
            )
        return order

    def _entry_segment(self) -> int:
        entry_successors = self._cfg.successors(self._cfg.entry)
        if not entry_successors:
            raise WcetComputationError("empty CFG")
        first_block = entry_successors[0].block_id
        segment = self._partition.segment_of_block(first_block)
        if segment is None:
            raise WcetComputationError("entry block is not covered by any segment")
        return segment.segment_id
