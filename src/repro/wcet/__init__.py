"""WCET bound computation: timing schema, end-to-end measurement, reports."""

from __future__ import annotations

from .end_to_end import (
    EndToEndResult,
    InputSpaceTooLarge,
    enumerate_input_space,
    exhaustive_end_to_end,
    measure_vectors,
)
from .report import WcetReport
from .timing_schema import (
    SegmentContribution,
    TimingSchema,
    WcetBound,
    WcetComputationError,
)

__all__ = [
    "EndToEndResult",
    "InputSpaceTooLarge",
    "enumerate_input_space",
    "exhaustive_end_to_end",
    "measure_vectors",
    "WcetReport",
    "SegmentContribution",
    "TimingSchema",
    "WcetBound",
    "WcetComputationError",
]
