"""Exhaustive end-to-end WCET measurement.

For programs with a small input space the paper evaluates the true WCET by
measuring every input combination end to end (the wiper controller case study:
250 cycles).  The partitioned WCET *bound* must never be below this value --
that comparison (250 vs 274 cycles in the paper) is the headline result of the
case study and is reproduced by ``benchmarks/test_bench_case_study.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..hw.board import EvaluationBoard
from ..minic.types import IntRange


class InputSpaceTooLarge(Exception):
    """Raised when exhaustive measurement would need too many runs."""


@dataclass
class EndToEndResult:
    """Outcome of an exhaustive (or sampled) end-to-end measurement."""

    function_name: str
    runs: int
    max_cycles: int
    min_cycles: int
    worst_inputs: dict[str, int] = field(default_factory=dict)
    best_inputs: dict[str, int] = field(default_factory=dict)

    @property
    def spread(self) -> int:
        return self.max_cycles - self.min_cycles


def enumerate_input_space(
    input_ranges: dict[str, IntRange], limit: int = 1_000_000
) -> list[dict[str, int]]:
    """All combinations of the given input ranges (bounded by *limit*)."""
    names = sorted(input_ranges)
    total = 1
    for name in names:
        total *= input_ranges[name].size()
        if total > limit:
            raise InputSpaceTooLarge(
                f"input space has more than {limit} combinations; "
                "end-to-end measurement is computationally intractable here "
                "(which is exactly the paper's motivation for partitioning)"
            )
    vectors: list[dict[str, int]] = []
    value_lists = [range(input_ranges[name].lo, input_ranges[name].hi + 1) for name in names]
    for combination in itertools.product(*value_lists):
        vectors.append(dict(zip(names, combination)))
    return vectors


def exhaustive_end_to_end(
    board: EvaluationBoard,
    function_name: str,
    input_ranges: dict[str, IntRange],
    limit: int = 1_000_000,
) -> EndToEndResult:
    """Measure every input combination end to end and report the extremes."""
    vectors = enumerate_input_space(input_ranges, limit=limit)
    return measure_vectors(board, function_name, vectors)


def measure_vectors(
    board: EvaluationBoard,
    function_name: str,
    vectors: list[dict[str, int]],
) -> EndToEndResult:
    """End-to-end measurement over an explicit list of test vectors."""
    if not vectors:
        raise ValueError("no test vectors supplied")
    max_cycles = -1
    min_cycles: int | None = None
    worst: dict[str, int] = {}
    best: dict[str, int] = {}
    for vector in vectors:
        result = board.run(function_name, vector)
        if result.total_cycles > max_cycles:
            max_cycles = result.total_cycles
            worst = dict(vector)
        if min_cycles is None or result.total_cycles < min_cycles:
            min_cycles = result.total_cycles
            best = dict(vector)
    return EndToEndResult(
        function_name=function_name,
        runs=len(vectors),
        max_cycles=max_cycles,
        min_cycles=min_cycles if min_cycles is not None else 0,
        worst_inputs=worst,
        best_inputs=best,
    )
