"""WCET analysis reports.

Collects the quantities the paper reports for its case study -- the
partitioned WCET bound, the exhaustively measured WCET, the overestimation --
plus the partition/measurement statistics, and renders them as a plain-text
table for examples and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..measurement.database import MeasurementDatabase
from ..partition.segment import PartitionResult
from .end_to_end import EndToEndResult
from .timing_schema import WcetBound


@dataclass
class WcetReport:
    """Complete result of one WCET analysis."""

    function_name: str
    path_bound: int
    partition: PartitionResult
    bound: WcetBound
    database: MeasurementDatabase
    end_to_end: EndToEndResult | None = None
    test_vectors_used: int = 0
    infeasible_paths: int = 0
    generator_statistics: dict[str, int] = field(default_factory=dict)
    #: callee name -> WCET bound charged per call site (interprocedural mode)
    callee_bounds_used: dict[str, int] = field(default_factory=dict)
    #: syntactic call sites charged interprocedurally -- via a genuine
    #: callee summary or the pessimistic unknown-call constant
    summarised_call_sites: int = 0
    #: model-checking query-engine counters (planned/sliced/cache_hits/
    #: escalations/budget_exhausted/...); budget-exhausted targets stay
    #: uncovered, so their segments keep the pessimistic static charge
    mc_diagnostics: dict[str, int] = field(default_factory=dict)
    #: True when injected faults forced part of the analysis onto the static
    #: pessimisation route; the bound is sound but coarser than a clean run's
    degraded: bool = False
    #: diagnostics of the faults/degradations observed during the analysis
    fault_events: list[str] = field(default_factory=list)
    #: program diagnostics from the static analysis pass (``repro.sa``),
    #: as :meth:`repro.sa.diagnostics.Diagnostic.to_dict` payloads
    sa_diagnostics: list[dict] = field(default_factory=list)
    #: CFG edges the static feasibility pass proved infeasible
    sa_edges_pruned: int = 0
    #: loop headers whose bound the static pass inferred exactly
    sa_loop_bounds_inferred: int = 0

    # ------------------------------------------------------------------ #
    @property
    def wcet_bound_cycles(self) -> int:
        return self.bound.bound_cycles

    @property
    def measured_wcet_cycles(self) -> int | None:
        return self.end_to_end.max_cycles if self.end_to_end is not None else None

    @property
    def overestimation_ratio(self) -> float | None:
        """bound / measured WCET (the paper's 274/250 ≈ 1.096)."""
        measured = self.measured_wcet_cycles
        if measured in (None, 0):
            return None
        return self.bound.bound_cycles / measured

    def is_safe(self) -> bool:
        """True when the bound is >= every end-to-end observation."""
        measured = self.measured_wcet_cycles
        return measured is None or self.bound.bound_cycles >= measured

    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        lines = [
            f"WCET analysis report for {self.function_name!r}",
            f"  path bound b              : {self.path_bound}",
            f"  program segments          : {len(self.partition.segments)}",
            f"  instrumentation points ip : {self.partition.instrumentation_points}",
            f"  required measurements m   : {self.partition.measurements}",
            f"  measurement runs recorded : {len(self.database)}",
            f"  test vectors used         : {self.test_vectors_used}",
            f"  infeasible paths          : {self.infeasible_paths}",
            f"  WCET bound (timing schema): {self.bound.bound_cycles} cycles",
        ]
        if self.callee_bounds_used:
            charged = ", ".join(
                f"{name}={bound}" for name, bound in self.callee_bounds_used.items()
            )
            lines.append(
                f"  callee summaries charged  : {self.summarised_call_sites} "
                f"call site(s) [{charged}]"
            )
        if self.mc_diagnostics:
            planned = self.mc_diagnostics.get("planned", 0)
            sliced = self.mc_diagnostics.get("sliced", 0)
            exhausted = self.mc_diagnostics.get("budget_exhausted", 0)
            shared = (
                self.mc_diagnostics.get("cache_hits", 0)
                + self.mc_diagnostics.get("prefix_hits", 0)
                + self.mc_diagnostics.get("witness_reuse", 0)
            )
            lines.append(
                f"  mc queries planned        : {planned} "
                f"({sliced} sliced, {shared} answered by shared work)"
            )
            if exhausted:
                lines.append(
                    f"  mc budget exhausted       : {exhausted} "
                    "(targets pessimised, not hung)"
                )
        if self.sa_edges_pruned or self.sa_loop_bounds_inferred or self.sa_diagnostics:
            lines.append(
                f"  static analysis           : {self.sa_edges_pruned} edge(s) "
                f"proven infeasible, {self.sa_loop_bounds_inferred} loop "
                f"bound(s) inferred, {len(self.sa_diagnostics)} diagnostic(s)"
            )
        if self.degraded:
            lines.append(
                "  DEGRADED result           : faults forced static "
                "pessimisation (bound remains sound)"
            )
            for event in self.fault_events:
                lines.append(f"    - {event}")
        pessimised = self.bound.pessimised_segments
        if pessimised:
            lines.append(
                f"  segments pessimised       : {len(pessimised)} "
                f"(static estimate, no measurement: "
                f"{', '.join(str(s) for s in pessimised)})"
            )
        if self.end_to_end is not None:
            lines.append(
                f"  exhaustive end-to-end WCET: {self.end_to_end.max_cycles} cycles "
                f"({self.end_to_end.runs} runs)"
            )
            ratio = self.overestimation_ratio
            if ratio is not None:
                lines.append(f"  overestimation            : {ratio:.3f}x")
            lines.append(f"  bound is safe             : {self.is_safe()}")
        lines.append("  per-segment worst-case times:")
        for segment in self.partition.segments:
            stats = self.database.statistics(segment.segment_id)
            observed = stats.max_cycles if stats is not None else None
            marker = "*" if segment.segment_id in self.bound.critical_segments else " "
            lines.append(
                f"   {marker} segment {segment.segment_id:>3} "
                f"[{segment.kind.value:>14}] paths {segment.path_count:>3} "
                f"max {observed if observed is not None else '---':>6} cycles  "
                f"{segment.description}"
            )
        lines.append("  (* = on the critical path of the bound)")
        return "\n".join(lines)
