"""Command-line interface of the WCET analysis tool.

The sub-commands cover the paper's workflow and the repo's batch/perf
tooling:

``repro-wcet partition FILE --function F --bounds 1,2,3``
    print the instrumentation-point / measurement trade-off table (Table 1
    style) for a mini-C source file.

``repro-wcet analyze FILE --function F --bound B``
    run the complete measurement-based WCET analysis and print the report.
    ``--mc-budget-steps`` / ``--mc-deadline-ms`` bound every model-checking
    query (exhausted queries are pessimised instead of hanging);
    ``--no-slicing`` disables per-goal cone-of-influence slicing.  The same
    flags apply to ``project``.

``repro-wcet case-study``
    regenerate the paper's wiper-control case study end to end.

``repro-wcet project FILE... --jobs N``
    batch-analyse every function of one or many source files through the
    project orchestration layer: interprocedural call-graph scheduling
    (callees before callers, callee bounds charged at call sites),
    process-pool parallelism and a persistent result cache keyed by
    transitive fingerprints.  ``--demo`` runs the synthetic multi-function
    workload, ``--demo-calls`` the call-chain/diamond workload;
    ``--call-graph`` prints the resolved call graph with waves and
    diagnostics, ``--no-interprocedural`` restores the flat PR 2 behaviour.

``repro-wcet project ... --trace out.json``
    additionally record every request/wave/job/analysis-stage span of the
    run and export them as Chrome trace-event JSON (Perfetto-loadable;
    a ``.jsonl`` path exports JSONL instead).

``repro-wcet trace FILE``
    summarise a recorded trace (span counts and per-name durations) or
    convert between the two export formats (``--chrome`` / ``--jsonl``).

``repro-wcet serve --cache-dir DIR --jobs N``
    run the long-running analysis service: an HTTP/JSON daemon that keeps
    one result cache warm across submissions, deduplicates identical
    in-flight work by transitive fingerprint and serves content-addressed
    reports with ETag conditional gets (see README "Running as a service").

``repro-wcet submit FILE... --server URL``
    submit source files to a running service and print the job status;
    ``--watch`` polls to completion and prints the report JSON,
    ``--session NAME`` enables incremental re-analysis across edits.

``repro-wcet lint FILE...``
    run the sound static analysis (``repro.sa``) over every function of the
    given units and print its program diagnostics (uninitialised reads,
    unreachable code, division by zero, signed overflow, constant branches;
    codes SA001..SA005).  ``--json`` emits machine-readable findings; the
    exit status is non-zero iff any ``error``-severity diagnostic was found.
    ``analyze`` and ``project`` run the same pass as a model-checking
    prefilter and loop-bound source; ``--no-sa`` turns it off.

``repro-wcet cache-verify``
    sweep the persistent result cache, moving corrupt entries into its
    ``corrupt/`` quarantine directory and reporting what was found
    (``--json`` for machine-readable output including live cache stats).

``repro-wcet bench``
    time the pipeline hot paths (dataflow, partitioning, model checking) on
    the synthetic applications and write the ``BENCH_perf.json``
    perf-trajectory report.

``analyze`` and ``project`` additionally take ``--inject-fault SITE:SPEC``
(repeatable) and ``--fault-seed`` for deterministic chaos testing;
``project`` adds ``--job-timeout``, ``--retry-attempts`` and
``--pool-restarts`` to control the resilient scheduler.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .cfg.builder import build_cfg
from .minic import parse_and_analyze
from .partition.partitioner import measurement_effort_table
from .pipeline.analyzer import AnalyzerConfig, WcetAnalyzer
from .workloads.wiper import WIPER_FUNCTION_NAME, wiper_case_study


def _load(path: str):
    source = Path(path).read_text(encoding="utf-8")
    return parse_and_analyze(source, filename=path)


def _cmd_partition(args: argparse.Namespace) -> int:
    analyzed = _load(args.file)
    function = analyzed.program.function(args.function)
    cfg = build_cfg(function)
    bounds = [int(b) for b in args.bounds.split(",")]
    rows = measurement_effort_table(function, bounds, cfg)
    print(f"function {args.function!r}: {len(cfg.real_blocks())} basic blocks")
    print(f"{'bound b':>8} {'instr. points ip':>18} {'measurements m':>16} {'segments':>9}")
    for row in rows:
        print(
            f"{row['bound']:>8} {row['instrumentation_points']:>18} "
            f"{row['measurements']:>16} {row['segments']:>9}"
        )
    return 0


def _apply_mc_flags(config: AnalyzerConfig, args: argparse.Namespace) -> None:
    """Plumb the --mc-* flags into the model-checking QueryBudget."""
    import dataclasses

    mc = config.hybrid.model_checking
    budget = mc.budget
    if args.mc_budget_steps is not None:
        budget = dataclasses.replace(budget, max_steps=args.mc_budget_steps)
    if args.mc_deadline_ms is not None:
        budget = dataclasses.replace(budget, deadline_ms=args.mc_deadline_ms)
    mc.budget = budget
    if args.no_slicing:
        mc.slicing = False
    if getattr(args, "probe_policy", None) is not None:
        mc.probe_policy = args.probe_policy


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-fault", action="append", dest="inject_faults",
        metavar="SITE:SPEC", default=None,
        help="inject a deterministic fault, e.g. cache.write:raise@1, "
        "mc.solve:raise, job.execute:rate=0.1, interp.step:delay=5@100 "
        "(repeatable; sites: cache.read, cache.write, pool.submit, "
        "job.execute, mc.solve, interp.step, service.request)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for rate=... fault decisions and retry backoff jitter",
    )


def _fault_plan(args: argparse.Namespace):
    from .resilience import FaultPlan

    return FaultPlan.from_args(args.inject_faults or [], seed=args.fault_seed)


def _add_mc_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mc-budget-steps", type=int, default=None, metavar="N",
        help="explored-state budget per model-checking query (default 200000)",
    )
    parser.add_argument(
        "--mc-deadline-ms", type=int, default=None, metavar="MS",
        help="wall-clock deadline per model-checking query (default 120000)",
    )
    parser.add_argument(
        "--no-slicing", action="store_true",
        help="disable per-goal cone-of-influence slicing of the model",
    )
    parser.add_argument(
        "--probe-policy", choices=("adaptive", "fixed"), default=None,
        help="prefix-probe insertion policy of the query plan: 'adaptive' "
        "(payoff heuristic, default) or 'fixed' (historical >= 3-sharers "
        "threshold)",
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .resilience import FaultInjector, ResilienceContext, activate

    analyzed = _load(args.file)
    config = AnalyzerConfig(path_bound=args.bound, partitioner=args.partitioner)
    if args.no_exhaustive:
        config.exhaustive_limit = None
    if args.no_sa:
        config.static_analysis = False
    _apply_mc_flags(config, args)
    plan = _fault_plan(args)
    if plan.is_empty:
        report = WcetAnalyzer(analyzed, args.function, config).analyze()
    else:
        # single-function analysis runs in-process: only the in-pipeline
        # sites (mc.solve, interp.step) can fire here
        with activate(ResilienceContext(injector=FaultInjector(plan))):
            report = WcetAnalyzer(analyzed, args.function, config).analyze()
    print(report.to_text())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .sa import diagnose, analyze_feasibility, render_diagnostics

    worst = {"error": 2, "warning": 1, "info": 0}
    exit_code = 0
    total = 0
    findings = []
    for path in args.files:
        analyzed = _load(path)
        unit = Path(path).stem
        for function in analyzed.program.functions:
            if args.functions and function.name not in args.functions:
                continue
            cfg = build_cfg(function)
            table = analyzed.table(function.name)
            feasibility = analyze_feasibility(cfg, table)
            diagnostics = diagnose(cfg, table, feasibility)
            total += len(diagnostics)
            if any(d.severity == "error" for d in diagnostics):
                exit_code = 1
            if args.json_output:
                findings.extend(
                    {"unit": unit, **d.to_dict()} for d in diagnostics
                )
            elif diagnostics:
                for line in render_diagnostics(diagnostics).splitlines():
                    print(f"{unit}:{line}")
    if args.json_output:
        findings.sort(
            key=lambda d: (
                d["unit"],
                d["function"],
                d["line"] or 0,
                -worst.get(d["severity"], 0),
                d["code"],
            )
        )
        print(json.dumps({"diagnostics": findings}, indent=2))
    elif total == 0:
        print("no diagnostics")
    return exit_code


def _cmd_case_study(args: argparse.Namespace) -> int:
    code = wiper_case_study()
    config = AnalyzerConfig(path_bound=args.bound)
    report = WcetAnalyzer(code.analyzed, WIPER_FUNCTION_NAME, config).analyze()
    print(report.to_text())
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from .project import Project, ProjectScheduler, ResultCache

    if args.demo or args.demo_calls:
        if args.demo and args.demo_calls:
            print(
                "error: --demo and --demo-calls are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        if args.files:
            print(
                "error: --demo/--demo-calls and source files are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        if args.demo_calls:
            from .workloads.multi import generate_call_chain_workload

            workload = generate_call_chain_workload(seed=args.demo_seed)
        else:
            from .workloads.multi import generate_multi_function_workload

            workload = generate_multi_function_workload(
                seed=args.demo_seed, functions=args.demo_functions
            )
        project = Project.from_sources(workload.sources)
    elif args.files:
        project = Project.from_paths(args.files)
    else:
        print("error: no source files given (or use --demo)", file=sys.stderr)
        return 2

    config = AnalyzerConfig(path_bound=args.bound, partitioner=args.partitioner)
    if args.no_exhaustive:
        config.exhaustive_limit = None
    if args.no_sa:
        config.static_analysis = False
    _apply_mc_flags(config, args)
    cache = (
        ResultCache.disabled()
        if args.no_cache
        else ResultCache(args.cache_dir)
    )
    if args.no_query_cache:
        query_cache = ResultCache.disabled()
    elif args.query_cache_dir is not None:
        query_cache = ResultCache(args.query_cache_dir)
    else:
        # share the result cache directory (the scheduler default)
        query_cache = None
    from .resilience import RetryPolicy

    plan = _fault_plan(args)
    scheduler = ProjectScheduler(
        project,
        config=config,
        cache=cache,
        workers=args.jobs,
        only=args.functions,
        interprocedural=not args.no_interprocedural,
        unknown_call_cycles=args.unknown_call_cycles,
        fault_plan=plan,
        retry_policy=RetryPolicy(
            max_attempts=args.retry_attempts, seed=args.fault_seed
        ),
        job_timeout_seconds=args.job_timeout,
        pool_restart_budget=args.pool_restarts,
        query_cache=query_cache,
    )
    if args.no_interprocedural:
        for flag, value in (
            ("--call-graph", args.call_graph),
            ("--unknown-call-cycles", args.unknown_call_cycles is not None),
        ):
            if value:
                print(
                    f"note: {flag} has no effect with --no-interprocedural "
                    "(no call graph is built in flat mode)",
                    file=sys.stderr,
                )
    if args.trace_output:
        from . import obs

        # an unbounded tracer: the export must hold the complete span tree
        tracer = obs.Tracer()
        with obs.using_tracer(tracer):
            report = scheduler.run()
        if args.trace_output.endswith(".jsonl"):
            count = tracer.write_jsonl(args.trace_output)
        else:
            count = tracer.write_chrome(args.trace_output)
        print(
            f"trace written to {args.trace_output} "
            f"({count} span(s), trace {report.trace_id}; "
            "load in Perfetto / chrome://tracing or summarise with "
            "'repro-wcet trace')"
        )
    else:
        report = scheduler.run()
    if args.call_graph and scheduler.callgraph is not None:
        print(scheduler.callgraph.to_text())
    print(report.to_text())
    if args.json_output:
        report.write_json(args.json_output)
        print(f"JSON report written to {args.json_output}")
    return 1 if report.failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from . import obs

    events = obs.read_trace_file(args.file)
    if args.chrome_output:
        obs.write_chrome(args.chrome_output, events)
        print(f"Chrome trace written to {args.chrome_output}")
    if args.jsonl_output:
        obs.write_jsonl(args.jsonl_output, events)
        print(f"JSONL trace written to {args.jsonl_output}")
    summary = obs.summarize(events)
    if args.json_output:
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"{summary['spans']} span(s) in {len(summary['traces'])} trace(s); "
        f"{summary['roots']} root(s), {summary['orphans']} orphan(s)"
    )
    for trace_id, count in summary["traces"].items():
        print(f"  trace {trace_id}: {count} span(s)")
    print(f"  {'span name':<24} {'spans':>6} {'total ms':>10} {'max ms':>10}")
    for name, stat in summary["by_name"].items():
        print(
            f"  {name:<24} {stat['spans']:>6} "
            f"{stat['total_us'] / 1000.0:>10.2f} "
            f"{stat['max_us'] / 1000.0:>10.2f}"
        )
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    import json

    from .project import ResultCache

    cache = ResultCache(args.cache_dir)
    report = cache.verify()
    if args.json_output:
        payload = dict(report)
        payload["stats"] = cache.stats()
        print(json.dumps(payload, indent=2))
        return 0 if not report["quarantined"] else 1
    print(f"cache directory : {args.cache_dir}")
    print(f"entries checked : {report['checked']}")
    print(f"entries ok      : {report['ok']}")
    print(f"quarantined     : {report['quarantined']}")
    print(f"schema mismatch : {report['schema_mismatch']}")
    print(
        f"query entries   : {report['query_checked']} checked, "
        f"{report['query_ok']} ok, {report['query_quarantined']} quarantined"
    )
    for note in report["entries"]:
        print(f"  ! {note}")
    return 0 if not report["quarantined"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .project import ResultCache
    from .resilience import RetryPolicy
    from .service import AnalysisServer

    config = AnalyzerConfig(path_bound=args.bound, partitioner=args.partitioner)
    if args.no_exhaustive:
        config.exhaustive_limit = None
    _apply_mc_flags(config, args)
    cache = (
        ResultCache.disabled()
        if args.no_cache
        else ResultCache(args.cache_dir)
    )
    server = AnalysisServer(
        host=args.host,
        port=args.port,
        config=config,
        cache=cache,
        workers=args.jobs,
        fault_plan=_fault_plan(args),
        retry_policy=RetryPolicy(
            max_attempts=args.retry_attempts, seed=args.fault_seed
        ),
        job_timeout_seconds=args.job_timeout,
        pool_restart_budget=args.pool_restarts,
        request_timeout_seconds=args.request_timeout,
        verbose=args.verbose,
    )
    cache_note = "disabled" if args.no_cache else args.cache_dir
    print(
        f"repro-wcet service listening on {server.base_url} "
        f"(cache: {cache_note}, jobs: {args.jobs})"
    )
    print("endpoints: POST /v1/analyze  GET /v1/jobs/<id>  "
          "GET /v1/results/<fp>  GET /v1/healthz  GET /v1/stats  "
          "GET /v1/metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceClient, ServiceClientError

    units = {
        Path(path).stem: Path(path).read_text(encoding="utf-8")
        for path in args.files
    }
    config: dict[str, object] = {}
    if args.bound is not None:
        config["path_bound"] = args.bound
    if args.partitioner is not None:
        config["partitioner"] = args.partitioner
    if args.no_exhaustive:
        config["no_exhaustive"] = True
    client = ServiceClient(args.server)
    try:
        status = client.analyze(
            units, config=config or None, session=args.session
        )
        if args.watch and status.get("state") not in ("done", "failed"):
            status = client.wait_for(status["job_id"], timeout=args.timeout)
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"job        : {status['job_id']} ({status['state']})")
    print(f"fingerprint: {status['fingerprint']}")
    incremental = status.get("incremental")
    if incremental:
        frontier = incremental.get("frontier") or []
        reused = incremental.get("reused") or []
        print(
            f"incremental: {len(frontier)} function(s) re-analysed, "
            f"{len(reused)} reused"
        )
    if status.get("state") == "failed":
        print(f"error      : {status.get('error')}", file=sys.stderr)
        return 1
    if args.watch and status.get("state") == "done":
        code, _, body = client.result(status["fingerprint"])
        if code == 200:
            print(body, end="")
    elif status.get("state") not in ("done", "failed"):
        print(
            f"poll   : GET {args.server}/v1/jobs/{status['job_id']}\n"
            f"result : GET {args.server}/v1/results/{status['fingerprint']}"
        )
    else:
        print(json.dumps(status, indent=2))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import format_summary, run_perf_bench

    report = run_perf_bench(
        seed=args.seed, repeats=args.repeats, output=args.output
    )
    print(format_summary(report))
    return 0 if report["results_match"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wcet",
        description="Measurement-based WCET analysis by CFG partitioning and model checking",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    partition = subparsers.add_parser("partition", help="print the ip/m trade-off table")
    partition.add_argument("file", help="mini-C source file")
    partition.add_argument("--function", required=True, help="function to analyse")
    partition.add_argument(
        "--bounds", default="1,2,3,4,5,6,7", help="comma-separated path bounds"
    )
    partition.set_defaults(handler=_cmd_partition)

    analyze = subparsers.add_parser("analyze", help="run the full WCET analysis")
    analyze.add_argument("file", help="mini-C source file")
    analyze.add_argument("--function", required=True, help="function to analyse")
    analyze.add_argument("--bound", type=int, default=4, help="path bound b")
    analyze.add_argument(
        "--partitioner", choices=("paper", "general"), default="paper",
        help="partitioning algorithm",
    )
    analyze.add_argument(
        "--no-exhaustive", action="store_true",
        help="skip the exhaustive end-to-end comparison",
    )
    analyze.add_argument(
        "--no-sa", action="store_true",
        help="skip the sound static pre-analysis (query prefilter, "
        "loop-bound inference, diagnostics)",
    )
    _add_mc_arguments(analyze)
    _add_fault_arguments(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    case_study = subparsers.add_parser(
        "case-study", help="run the wiper-control case study of the paper"
    )
    case_study.add_argument("--bound", type=int, default=2, help="path bound b")
    case_study.set_defaults(handler=_cmd_case_study)

    lint = subparsers.add_parser(
        "lint",
        help="run the static program diagnostics (SA001..SA005) over units",
    )
    lint.add_argument("files", nargs="+", help="mini-C source files")
    lint.add_argument(
        "--function", action="append", dest="functions", metavar="NAME",
        help="restrict linting to this function (repeatable)",
    )
    lint.add_argument(
        "--json", dest="json_output", action="store_true",
        help="print the diagnostics as JSON instead of text",
    )
    lint.set_defaults(handler=_cmd_lint)

    project = subparsers.add_parser(
        "project",
        help="batch-analyse every function of a project (parallel, cached)",
    )
    project.add_argument("files", nargs="*", help="mini-C source files")
    project.add_argument(
        "--demo", action="store_true",
        help="analyse the synthetic multi-function workload instead of files",
    )
    project.add_argument(
        "--demo-calls", action="store_true",
        help="analyse the synthetic call-chain workload (3-deep chain, "
        "diamond, cross-unit calls) instead of files",
    )
    project.add_argument(
        "--demo-functions", type=int, default=4,
        help="number of generated functions with --demo (default 4)",
    )
    project.add_argument(
        "--demo-seed", type=int, default=2005, help="workload generator seed"
    )
    project.add_argument(
        "--call-graph", action="store_true",
        help="also print the resolved call graph (waves, cycles, diagnostics)",
    )
    project.add_argument(
        "--no-interprocedural", action="store_true",
        help="disable call-graph scheduling and callee summary reuse "
        "(flat job graph, content-only cache keys)",
    )
    project.add_argument(
        "--unknown-call-cycles", type=int, default=None, metavar="CYCLES",
        help="pessimistic charge for unsummarisable project calls "
        "(recursion cycles); default: repro.callgraph default",
    )
    project.add_argument(
        "--function", action="append", dest="functions", metavar="NAME",
        help="restrict the analysis to this function (repeatable)",
    )
    project.add_argument("--bound", type=int, default=4, help="path bound b")
    project.add_argument(
        "--partitioner", choices=("paper", "general"), default="paper",
        help="partitioning algorithm",
    )
    project.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool workers (1 = serial, default)",
    )
    project.add_argument(
        "--cache-dir", default=".repro-wcet-cache",
        help="persistent result-cache directory (default: .repro-wcet-cache)",
    )
    project.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    project.add_argument(
        "--query-cache", dest="query_cache_dir", metavar="DIR", default=None,
        help="directory of the persistent model-checking query store "
        "(per-goal verdicts + replay-validated witnesses); default: share "
        "the result cache directory",
    )
    project.add_argument(
        "--no-query-cache", action="store_true",
        help="disable the persistent query store (solver runs are never "
        "answered from disk)",
    )
    project.add_argument(
        "--no-exhaustive", action="store_true",
        help="skip the exhaustive end-to-end comparison",
    )
    project.add_argument(
        "--no-sa", action="store_true",
        help="skip the sound static pre-analysis (query prefilter, "
        "loop-bound inference, diagnostics); bounds are identical either "
        "way, only more solver queries run",
    )
    project.add_argument(
        "--json", dest="json_output", metavar="PATH",
        help="also write the project report as JSON to PATH",
    )
    project.add_argument(
        "--trace", dest="trace_output", metavar="PATH",
        help="record every analysis stage as trace spans and export them to "
        "PATH: Chrome trace-event JSON (Perfetto-loadable), or JSONL when "
        "PATH ends in .jsonl",
    )
    project.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock timeout per function job; overrunning jobs are "
        "quarantined behind a static pessimised (still sound) bound",
    )
    project.add_argument(
        "--retry-attempts", type=int, default=3, metavar="N",
        help="attempts per job before a transiently failing job is "
        "quarantined (default 3)",
    )
    project.add_argument(
        "--pool-restarts", type=int, default=2, metavar="N",
        help="times a died process pool is re-created before falling back "
        "to serial execution (default 2)",
    )
    _add_mc_arguments(project)
    _add_fault_arguments(project)
    project.set_defaults(handler=_cmd_project)

    cache_verify = subparsers.add_parser(
        "cache-verify",
        help="sweep the result cache, quarantining corrupt entries",
    )
    cache_verify.add_argument(
        "--cache-dir", default=".repro-wcet-cache",
        help="persistent result-cache directory (default: .repro-wcet-cache)",
    )
    cache_verify.add_argument(
        "--json", dest="json_output", action="store_true",
        help="print the verification report (plus cache stats) as JSON",
    )
    cache_verify.set_defaults(handler=_cmd_cache_verify)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-running analysis service (HTTP/JSON daemon)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8537,
        help="TCP port (default 8537; 0 = ephemeral)",
    )
    serve.add_argument(
        "--cache-dir", default=".repro-wcet-cache",
        help="shared warm result-cache directory (default: .repro-wcet-cache)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool workers per analysis run (1 = serial, default)",
    )
    serve.add_argument("--bound", type=int, default=4, help="default path bound b")
    serve.add_argument(
        "--partitioner", choices=("paper", "general"), default="paper",
        help="default partitioning algorithm",
    )
    serve.add_argument(
        "--no-exhaustive", action="store_true",
        help="skip the exhaustive end-to-end comparison by default",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="upper bound on blocking waits within one request (default 30)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock timeout per function job (quarantined if exceeded)",
    )
    serve.add_argument(
        "--retry-attempts", type=int, default=3, metavar="N",
        help="attempts per job before quarantine (default 3)",
    )
    serve.add_argument(
        "--pool-restarts", type=int, default=2, metavar="N",
        help="pool re-creations before serial fallback (default 2)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    _add_mc_arguments(serve)
    _add_fault_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit source files to a running analysis service",
    )
    submit.add_argument("files", nargs="+", help="mini-C source files")
    submit.add_argument(
        "--server", default="http://127.0.0.1:8537", metavar="URL",
        help="service base URL (default http://127.0.0.1:8537)",
    )
    submit.add_argument(
        "--session", default=None, metavar="NAME",
        help="incremental session name: repeat submissions re-analyse only "
        "the functions whose transitive fingerprint changed",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="poll the job to completion and print the report JSON",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up watching after this long (default 600)",
    )
    submit.add_argument("--bound", type=int, default=None, help="path bound b")
    submit.add_argument(
        "--partitioner", choices=("paper", "general"), default=None,
        help="partitioning algorithm override",
    )
    submit.add_argument(
        "--no-exhaustive", action="store_true",
        help="skip the exhaustive end-to-end comparison",
    )
    submit.set_defaults(handler=_cmd_submit)

    trace = subparsers.add_parser(
        "trace",
        help="summarise or convert a trace file written by project --trace",
    )
    trace.add_argument(
        "file", help="trace file (Chrome trace-event JSON or JSONL)"
    )
    trace.add_argument(
        "--chrome", dest="chrome_output", metavar="PATH",
        help="re-export as Chrome trace-event JSON to PATH",
    )
    trace.add_argument(
        "--jsonl", dest="jsonl_output", metavar="PATH",
        help="re-export as JSONL to PATH",
    )
    trace.add_argument(
        "--json", dest="json_output", action="store_true",
        help="print the summary as JSON instead of text",
    )
    trace.set_defaults(handler=_cmd_trace)

    bench = subparsers.add_parser(
        "bench",
        help="time the pipeline hot paths and write BENCH_perf.json",
    )
    bench.add_argument("--seed", type=int, default=2005, help="generator seed")
    bench.add_argument("--repeats", type=int, default=3, help="timing repetitions")
    bench.add_argument(
        "--output", default="BENCH_perf.json",
        help="JSON report path (default: BENCH_perf.json)",
    )
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except Exception as error:  # pragma: no cover - CLI convenience
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
