"""Program diagnostics derived from the static analyses.

Stable codes, one rule per code:

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
SA001     error     read of a variable that is uninitialised on every path
SA001     warning   read of a variable that is uninitialised on some path
SA002     warning   statically unreachable code (interval-infeasible)
SA003     error     division/modulo by a divisor that is always zero
SA003     warning   division/modulo by a divisor that may be zero
SA004     warning   signed fixed-width arithmetic that may wrap
SA005     info      branch condition with a statically constant value
========  ========  ====================================================

Severities order ``error > warning > info``; the CLI ``lint`` subcommand exits
non-zero exactly when an ``error`` diagnostic exists.  The seeded workloads
are expected to be error-free — ``tests/test_sa.py`` pins that.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..analysis.liveness import block_liveness
from ..analysis.reaching import Definition, reaching_definitions
from ..analysis.usedef import cfg_use_defs
from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import DeclStmt
from ..minic.symbols import FunctionSymbolTable, SymbolKind
from .feasibility import FeasibilityResult

SEVERITIES = ("error", "warning", "info")
_SEVERITY_ORDER = {name: index for index, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static-diagnostics layer."""

    code: str
    severity: str
    message: str
    function: str
    line: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)


def sort_key(diagnostic: Diagnostic) -> tuple:
    return (
        _SEVERITY_ORDER.get(diagnostic.severity, len(SEVERITIES)),
        diagnostic.code,
        diagnostic.line if diagnostic.line is not None else 1 << 30,
        diagnostic.message,
    )


def _line_of(node) -> int | None:
    location = getattr(node, "location", None)
    return getattr(location, "line", None)


def diagnose(
    cfg: ControlFlowGraph,
    table: FunctionSymbolTable,
    feasibility: FeasibilityResult,
) -> list[Diagnostic]:
    """All diagnostics for one function, most severe first."""
    function = table.function.name
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_uninitialized_uses(cfg, table, function))
    # SA002 is double-checked by an independent graph walk: a block is only
    # reported when the fixpoint's verdict agrees with plain reachability
    # over the CFG minus the proven-infeasible edges
    graph_reachable = cfg.reachable_blocks(
        infeasible_edges=feasibility.infeasible_edges
    )
    for block_id in sorted(feasibility.unreachable_blocks):
        if block_id in graph_reachable:
            continue
        block = cfg.block(block_id)
        diagnostics.append(
            Diagnostic(
                code="SA002",
                severity="warning",
                message=f"block {block.label()} is statically unreachable",
                function=function,
                line=block.source_line,
            )
        )
    for event in feasibility.events:
        if event.kind == "div_zero":
            diagnostics.append(
                Diagnostic(
                    code="SA003",
                    severity="error" if event.definite else "warning",
                    message=(
                        f"divisor of '{event.op}' is always zero"
                        if event.definite
                        else f"divisor of '{event.op}' may be zero"
                    ),
                    function=function,
                    line=event.line,
                )
            )
        elif event.kind == "overflow":
            diagnostics.append(
                Diagnostic(
                    code="SA004",
                    severity="warning",
                    message=f"signed '{event.op}' result may wrap around",
                    function=function,
                    line=event.line,
                )
            )
    for branch in feasibility.constant_branches:
        diagnostics.append(
            Diagnostic(
                code="SA005",
                severity="info",
                message=(
                    "branch condition is always "
                    + ("true" if branch.value else "false")
                ),
                function=function,
                line=branch.line,
            )
        )
    diagnostics.sort(key=sort_key)
    return diagnostics


def _uninitialized_uses(
    cfg: ControlFlowGraph, table: FunctionSymbolTable, function: str
) -> list[Diagnostic]:
    """SA001: local-variable reads not covered by an initialising write."""
    candidates = {
        name
        for name, symbol in table.variables.items()
        if symbol.kind is SymbolKind.LOCAL and not symbol.is_input
    }
    if not candidates:
        return []
    reaching = reaching_definitions(cfg)
    use_defs = cfg_use_defs(cfg)

    # invert def-use chains into per-(site, variable) reaching definitions
    site_defs: dict[tuple[tuple[int, int], str], set[Definition]] = {}
    for definition, sites in reaching.uses.items():
        for site in sites:
            site_defs.setdefault((site, definition.variable), set()).add(definition)

    def initialising(definition: Definition) -> bool:
        if definition.statement_index < 0:
            return True  # terminator conditions never define, be permissive
        stmt = cfg.block(definition.block_id).statements[definition.statement_index]
        return not (isinstance(stmt, DeclStmt) and stmt.init is None)

    diagnostics: list[Diagnostic] = []
    reported: set[tuple[str, int, int]] = set()
    for block in cfg.blocks():
        block_id = block.block_id
        per_statement = use_defs.statements(block_id)
        sites: list[tuple[int, frozenset[str], int | None]] = [
            (index, use_def.uses, _line_of(block.statements[index]))
            for index, use_def in enumerate(per_statement)
        ]
        condition_uses = use_defs.condition_uses(block_id)
        if condition_uses:
            condition = block.terminator.condition
            sites.append((-1, condition_uses, _line_of(condition) if condition else None))
        for index, uses, line in sites:
            for name in uses & candidates:
                key = (name, block_id, index)
                if key in reported:
                    continue
                reported.add(key)
                reaching_defs = site_defs.get(((block_id, index), name), set())
                live = [d for d in reaching_defs if initialising(d)]
                if not live:
                    diagnostics.append(
                        Diagnostic(
                            code="SA001",
                            severity="error",
                            message=f"'{name}' is read but never initialised",
                            function=function,
                            line=line,
                        )
                    )
                elif len(live) < len(reaching_defs):
                    diagnostics.append(
                        Diagnostic(
                            code="SA001",
                            severity="warning",
                            message=f"'{name}' may be read uninitialised",
                            function=function,
                            line=line,
                        )
                    )

    # belt and suspenders: anything live at function entry is read before
    # any write on some path (covers flows the def-use inversion misses)
    liveness = block_liveness(cfg)
    live_at_entry = liveness.live_in.get(cfg.entry.block_id, frozenset())
    flagged = {d.message.split("'")[1] for d in diagnostics}
    for name in sorted((live_at_entry & candidates) - flagged):
        diagnostics.append(
            Diagnostic(
                code="SA001",
                severity="warning",
                message=f"'{name}' may be read uninitialised",
                function=function,
            )
        )
    return diagnostics


def diagnostics_payload(diagnostics: list[Diagnostic]) -> list[dict]:
    return [diagnostic.to_dict() for diagnostic in sorted(diagnostics, key=sort_key)]


def render_diagnostics(diagnostics: list[Diagnostic]) -> str:
    """Compiler-style one-line-per-finding text rendering."""
    lines = []
    for diagnostic in sorted(diagnostics, key=sort_key):
        where = diagnostic.function
        if diagnostic.line is not None:
            where += f":{diagnostic.line}"
        lines.append(
            f"{where}: {diagnostic.severity}: "
            f"{diagnostic.code} {diagnostic.message}"
        )
    return "\n".join(lines)


def max_severity(diagnostics: list[Diagnostic]) -> str | None:
    """The most severe level present, or None for a clean run."""
    present = {diagnostic.severity for diagnostic in diagnostics}
    for severity in SEVERITIES:
        if severity in present:
            return severity
    return None
