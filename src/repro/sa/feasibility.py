"""Sound branch-feasibility analysis over mini-C CFGs.

The model checker answers reachability questions exactly but at solver cost.
This module settles a useful subset of those questions *statically*: a forward
interval propagation with branch-condition refinement proves edges and blocks
unreachable, and the :class:`StaticPrefilter` turns those proofs into
``UNREACHABLE`` verdicts in front of :mod:`repro.mc.query` — with no solver
call and, by construction, verdicts identical to what the model checker would
return (the differential suite in ``tests/test_sa.py`` enforces this).

Soundness is the contract, so the evaluator here is deliberately *not*
:class:`repro.analysis.ranges.RangeAnalyzer` (whose clamping is tuned for
state-variable sizing, not truth): every arithmetic result is checked against
the expression's fixed-width type and widened to the full type range whenever
two's-complement wrap-around is possible, mirroring exactly how
:mod:`repro.hw.interpreter` wraps each subexpression.  Function calls havoc
every global (callees share globals), side-effecting conditions are never used
for refinement, and widening bails to the type range after a bounded number of
updates — so an edge reported infeasible is infeasible for *every* concrete
execution the interpreter or the transition system could produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque

from ..analysis.ranges import RangeEnvironment, variable_defaults
from ..cfg.graph import (
    BasicBlock,
    ControlFlowGraph,
    Edge,
    EdgeKind,
    TerminatorKind,
)
from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    CallExpr,
    CastExpr,
    Conditional,
    DeclStmt,
    Expr,
    ExprStmt,
    Identifier,
    IntLiteral,
    ReturnStmt,
    Stmt,
    UnaryOp,
    RELATIONAL_OPERATORS,
)
from ..minic.folding import apply_binary, assigned_variables, has_calls
from ..minic.symbols import FunctionSymbolTable, SymbolKind
from ..minic.types import IntRange

TRUE_RANGE = IntRange(1, 1)
FALSE_RANGE = IntRange(0, 0)
UNKNOWN_RANGE = IntRange(0, 1)

#: interval updates of one variable at one block before widening to type range
_WIDENING_THRESHOLD = 3

#: largest selector interval enumerated to prove a switch default dead
_DEFAULT_ENUM_LIMIT = 4096

_NEGATED_OP = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}


@dataclass(frozen=True)
class EvalEvent:
    """A diagnostic-relevant fact observed while evaluating an expression."""

    kind: str  # "div_zero" | "overflow"
    node_id: int
    line: int | None
    op: str
    definite: bool = False


@dataclass(frozen=True)
class ConstantBranch:
    """A branch whose condition has a statically known truth value."""

    block_id: int
    line: int | None
    value: bool


@dataclass
class FeasibilityResult:
    """Outcome of the feasibility fixpoint for one function CFG."""

    #: block ids provably executable (entry environment exists)
    reachable: frozenset[int]
    #: real block ids that can never execute
    unreachable_blocks: frozenset[int]
    #: ``(source, target, kind.value)`` of provably infeasible edges
    infeasible_edges: frozenset[tuple[int, int, str]]
    #: sound interval environment at the entry of every reachable block
    block_entry: dict[int, RangeEnvironment]
    constant_branches: tuple[ConstantBranch, ...] = ()
    events: tuple[EvalEvent, ...] = ()


def _line_of(expr: Expr) -> int | None:
    location = getattr(expr, "location", None)
    return getattr(location, "line", None)


class SoundEvaluator:
    """Wrap-aware interval evaluation of mini-C expressions.

    ``recorder`` (when set) receives an :class:`EvalEvent` for every possible
    division by zero and every signed arithmetic result that may wrap — the
    raw material of the SA003/SA004 diagnostics.
    """

    def __init__(self, type_ranges: dict[str, IntRange]):
        self._type_ranges = type_ranges
        self.recorder = None

    # ------------------------------------------------------------------ #
    def evaluate(self, expr: Expr, env: RangeEnvironment) -> IntRange:
        if isinstance(expr, IntLiteral):
            return IntRange(expr.value, expr.value)
        if isinstance(expr, BoolLiteral):
            value = int(expr.value)
            return IntRange(value, value)
        if isinstance(expr, Identifier):
            known = env.ranges.get(expr.name)
            if known is not None:
                return known
            return self._type_ranges.get(expr.name, self._type_range(expr))
        if isinstance(expr, UnaryOp):
            return self._evaluate_unary(expr, env)
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr, env)
        if isinstance(expr, Conditional):
            self.evaluate(expr.cond, env)
            then = self.evaluate(expr.then, env)
            otherwise = self.evaluate(expr.otherwise, env)
            return then.union(otherwise)
        if isinstance(expr, CastExpr):
            operand = self.evaluate(expr.operand, env)
            target = expr.target_type.value_range()
            if operand.lo >= target.lo and operand.hi <= target.hi:
                return operand
            return target
        if isinstance(expr, AssignExpr):
            value = self.evaluate(expr.value, env)
            target_type = expr.target.ctype or expr.ctype
            if target_type is not None and not target_type.is_void:
                target = target_type.value_range()
                if value.lo >= target.lo and value.hi <= target.hi:
                    return value
                return target
            return value
        if isinstance(expr, CallExpr):
            for argument in expr.args:
                self.evaluate(argument, env)
            return self._type_range(expr)
        return self._type_range(expr)

    # ------------------------------------------------------------------ #
    def condition_truth(self, expr: Expr, env: RangeEnvironment) -> IntRange:
        """Truth interval of *expr*: [1,1] true, [0,0] false, [0,1] unknown."""
        if isinstance(expr, UnaryOp) and expr.op == "!":
            inner = self.condition_truth(expr.operand, env)
            if inner == TRUE_RANGE:
                return FALSE_RANGE
            if inner == FALSE_RANGE:
                return TRUE_RANGE
            return UNKNOWN_RANGE
        if isinstance(expr, BinaryOp):
            if expr.op == "&&":
                left = self.condition_truth(expr.left, env)
                right = self.condition_truth(expr.right, env)
                if left == FALSE_RANGE or right == FALSE_RANGE:
                    return FALSE_RANGE
                if left == TRUE_RANGE and right == TRUE_RANGE:
                    return TRUE_RANGE
                return UNKNOWN_RANGE
            if expr.op == "||":
                left = self.condition_truth(expr.left, env)
                right = self.condition_truth(expr.right, env)
                if left == TRUE_RANGE or right == TRUE_RANGE:
                    return TRUE_RANGE
                if left == FALSE_RANGE and right == FALSE_RANGE:
                    return FALSE_RANGE
                return UNKNOWN_RANGE
            if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                left = self.evaluate(expr.left, env)
                right = self.evaluate(expr.right, env)
                return _compare(expr.op, left, right)
        interval = self.evaluate(expr, env)
        if interval.lo > 0 or interval.hi < 0:
            return TRUE_RANGE
        if interval == FALSE_RANGE:
            return FALSE_RANGE
        return UNKNOWN_RANGE

    def refine(
        self, expr: Expr, want_true: bool, env: RangeEnvironment
    ) -> RangeEnvironment | None:
        """Environment narrowed by assuming *expr* is *want_true*.

        Returns ``None`` when the assumption is contradictory (the
        corresponding edge is infeasible).  Never mutates *env*.
        """
        if isinstance(expr, UnaryOp) and expr.op == "!":
            return self.refine(expr.operand, not want_true, env)
        if isinstance(expr, BinaryOp):
            conjunctive = (expr.op == "&&") is want_true
            if expr.op in ("&&", "||"):
                if conjunctive:
                    refined = self.refine(expr.left, want_true, env)
                    if refined is None:
                        return None
                    return self.refine(expr.right, want_true, refined)
                left = self.refine(expr.left, want_true, env)
                right = self.refine(expr.right, want_true, env)
                if left is None:
                    return right
                if right is None:
                    return left
                return _join_envs(left, right)
            if expr.op in _NEGATED_OP:
                op = expr.op if want_true else _NEGATED_OP[expr.op]
                return self._refine_relational(op, expr.left, expr.right, env)
        if isinstance(expr, Identifier):
            interval = self.evaluate(expr, env)
            if want_true:
                narrowed = _exclude_zero(interval)
                if narrowed is None:
                    return None
                refined = env.copy()
                refined.ranges[expr.name] = narrowed
                return refined
            if 0 not in interval:
                return None
            refined = env.copy()
            refined.ranges[expr.name] = FALSE_RANGE
            return refined
        truth = self.condition_truth(expr, env)
        if want_true and truth == FALSE_RANGE:
            return None
        if not want_true and truth == TRUE_RANGE:
            return None
        return env.copy()

    def _refine_relational(
        self, op: str, left: Expr, right: Expr, env: RangeEnvironment
    ) -> RangeEnvironment | None:
        left_iv = self.evaluate(left, env)
        right_iv = self.evaluate(right, env)
        if _compare(op, left_iv, right_iv) == FALSE_RANGE:
            return None
        refined = env.copy()
        new_left = _narrow_left(op, left_iv, right_iv)
        new_right = _narrow_left(_flip(op), right_iv, left_iv)
        if new_left is None or new_right is None:
            return None
        if isinstance(left, Identifier):
            refined.ranges[left.name] = new_left
        if isinstance(right, Identifier):
            refined.ranges[right.name] = new_right
        return refined

    # ------------------------------------------------------------------ #
    def _evaluate_unary(self, expr: UnaryOp, env: RangeEnvironment) -> IntRange:
        operand = self.evaluate(expr.operand, env)
        if expr.op == "+":
            return operand
        if expr.op == "!":
            truth = self.condition_truth(expr.operand, env)
            if truth == TRUE_RANGE:
                return FALSE_RANGE
            if truth == FALSE_RANGE:
                return TRUE_RANGE
            return UNKNOWN_RANGE
        if expr.op == "-":
            return self._wrap(expr, -operand.hi, -operand.lo)
        if expr.op == "~":
            return self._wrap(expr, ~operand.hi, ~operand.lo)
        return self._type_range(expr)

    def _evaluate_binary(self, expr: BinaryOp, env: RangeEnvironment) -> IntRange:
        if expr.op in RELATIONAL_OPERATORS:
            return self.condition_truth(expr, env)
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if expr.op in ("+", "-", "*"):
            candidates = [
                apply_binary(expr.op, a, b)
                for a in (left.lo, left.hi)
                for b in (right.lo, right.hi)
            ]
            return self._wrap(expr, min(candidates), max(candidates))
        if expr.op in ("/", "%"):
            if right.lo <= 0 <= right.hi:
                self._record(
                    EvalEvent(
                        kind="div_zero",
                        node_id=expr.node_id,
                        line=_line_of(expr),
                        op=expr.op,
                        definite=right == FALSE_RANGE,
                    )
                )
                return self._type_range(expr)
            if expr.op == "/":
                candidates = [
                    apply_binary("/", a, b)
                    for a in (left.lo, left.hi)
                    for b in (right.lo, right.hi)
                ]
                return self._wrap(expr, min(candidates), max(candidates))
            magnitude = max(abs(right.lo), abs(right.hi)) - 1
            lo = -magnitude if left.lo < 0 else 0
            return self._wrap(expr, lo, magnitude, record_overflow=False)
        if expr.op == "&" and left.lo >= 0 and right.lo >= 0:
            return self._wrap(
                expr, 0, min(left.hi, right.hi), record_overflow=False
            )
        if expr.op in ("|", "^") and left.lo >= 0 and right.lo >= 0:
            bits = max(left.hi, right.hi).bit_length()
            return self._wrap(expr, 0, (1 << bits) - 1, record_overflow=False)
        return self._type_range(expr)

    def _wrap(
        self, expr: Expr, lo: int, hi: int, record_overflow: bool = True
    ) -> IntRange:
        """Raw interval if it fits the expression type, else the type range."""
        type_range = self._type_range(expr)
        if lo >= type_range.lo and hi <= type_range.hi:
            return IntRange(lo, hi)
        if (
            record_overflow
            and expr.ctype is not None
            and expr.ctype.signed
            and not expr.ctype.is_void
        ):
            self._record(
                EvalEvent(
                    kind="overflow",
                    node_id=expr.node_id,
                    line=_line_of(expr),
                    op=getattr(expr, "op", "?"),
                )
            )
        return type_range

    def _type_range(self, expr: Expr) -> IntRange:
        if expr.ctype is not None and not expr.ctype.is_void:
            return expr.ctype.value_range()
        return IntRange(-(2 ** 15), 2 ** 15 - 1)

    def _record(self, event: EvalEvent) -> None:
        if self.recorder is not None:
            self.recorder(event)


def _compare(op: str, left: IntRange, right: IntRange) -> IntRange:
    """Truth interval of ``left <op> right`` over raw operand intervals."""
    if op == "<":
        if left.hi < right.lo:
            return TRUE_RANGE
        if left.lo >= right.hi:
            return FALSE_RANGE
    elif op == "<=":
        if left.hi <= right.lo:
            return TRUE_RANGE
        if left.lo > right.hi:
            return FALSE_RANGE
    elif op == ">":
        if left.lo > right.hi:
            return TRUE_RANGE
        if left.hi <= right.lo:
            return FALSE_RANGE
    elif op == ">=":
        if left.lo >= right.hi:
            return TRUE_RANGE
        if left.hi < right.lo:
            return FALSE_RANGE
    elif op == "==":
        if left == right and left.lo == left.hi:
            return TRUE_RANGE
        if left.intersect(right) is None:
            return FALSE_RANGE
    elif op == "!=":
        if left == right and left.lo == left.hi:
            return FALSE_RANGE
        if left.intersect(right) is None:
            return TRUE_RANGE
    return UNKNOWN_RANGE


def _flip(op: str) -> str:
    """Mirror a relational operator (``a op b`` == ``b flip(op) a``)."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}[op]


def _narrow_left(op: str, left: IntRange, right: IntRange) -> IntRange | None:
    """Values of *left* compatible with ``left <op> right`` holding."""
    if op == "<":
        hi = min(left.hi, right.hi - 1)
        return IntRange(left.lo, hi) if left.lo <= hi else None
    if op == "<=":
        hi = min(left.hi, right.hi)
        return IntRange(left.lo, hi) if left.lo <= hi else None
    if op == ">":
        lo = max(left.lo, right.lo + 1)
        return IntRange(lo, left.hi) if lo <= left.hi else None
    if op == ">=":
        lo = max(left.lo, right.lo)
        return IntRange(lo, left.hi) if lo <= left.hi else None
    if op == "==":
        return left.intersect(right)
    if op == "!=":
        if right.lo == right.hi:
            if left.lo == left.hi == right.lo:
                return None
            if left.lo == right.lo:
                return IntRange(left.lo + 1, left.hi)
            if left.hi == right.lo:
                return IntRange(left.lo, left.hi - 1)
        return left
    return left


def _exclude_zero(interval: IntRange) -> IntRange | None:
    if interval == FALSE_RANGE:
        return None
    if interval.lo == 0:
        return IntRange(1, interval.hi)
    if interval.hi == 0:
        return IntRange(interval.lo, -1)
    return interval


def _join_envs(left: RangeEnvironment, right: RangeEnvironment) -> RangeEnvironment:
    joined: dict[str, IntRange] = dict(left.ranges)
    for name, interval in right.ranges.items():
        mine = joined.get(name)
        joined[name] = interval if mine is None else mine.union(interval)
    return RangeEnvironment(ranges=joined)


class FeasibilityAnalyzer:
    """Forward interval propagation along *feasible* edges only."""

    def __init__(self, cfg: ControlFlowGraph, table: FunctionSymbolTable):
        self._cfg = cfg
        self._table = table
        #: entry environment: declared (pragma) range or type range
        self._defaults = variable_defaults(table)
        #: widening / havoc target: always the full type range (assignments
        #: and callee writes may leave a declared input range)
        self._type_ranges = {
            name: symbol.ctype.value_range()
            for name, symbol in table.variables.items()
            if not symbol.ctype.is_void
        }
        self._globals = tuple(
            name
            for name, symbol in table.variables.items()
            if symbol.kind is SymbolKind.GLOBAL and not symbol.ctype.is_void
        )
        self._evaluator = SoundEvaluator(self._type_ranges)
        self._events: list[EvalEvent] = []
        self._seen_events: set[tuple[str, int]] = set()
        self._constant_branches: list[ConstantBranch] = []

    # ------------------------------------------------------------------ #
    def run(self) -> FeasibilityResult:
        entry_env: dict[int, RangeEnvironment] = {
            self._cfg.entry.block_id: RangeEnvironment(ranges=dict(self._defaults))
        }
        names = set(self._defaults)
        update_counts: dict[tuple[int, str], int] = {}
        worklist = deque([self._cfg.entry.block_id])
        pending = {self._cfg.entry.block_id}
        out_env: dict[int, RangeEnvironment] = {}
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > 50 * max(1, len(self._cfg)):
                break  # widening guarantees this is unreachable, but be safe
            block_id = worklist.popleft()
            pending.discard(block_id)
            env_in = entry_env.get(block_id)
            if env_in is None:
                continue
            block = self._cfg.block(block_id)
            env_out = self._transfer(block, env_in.copy())
            if block_id in out_env and out_env[block_id] == env_out:
                continue
            out_env[block_id] = env_out
            for edge, env_edge in self._edge_envs(block, env_out):
                if env_edge is None:
                    continue
                successor = edge.target
                if successor in entry_env:
                    joined = entry_env[successor].join(env_edge, names, self._defaults)
                    joined = self._widen(
                        successor, entry_env[successor], joined, update_counts
                    )
                    if joined == entry_env[successor]:
                        continue
                    entry_env[successor] = joined
                else:
                    entry_env[successor] = env_edge.copy()
                if successor not in pending:
                    pending.add(successor)
                    worklist.append(successor)

        # final sound pass: environments are at their largest now, so any edge
        # still contradictory is contradictory for every execution; this pass
        # also records the diagnostic events (div-by-zero, overflow, constant
        # branches) against the *final* environments only.
        self._evaluator.recorder = self._note_event
        infeasible: set[tuple[int, int, str]] = set()
        for block_id, env_in in entry_env.items():
            block = self._cfg.block(block_id)
            env_out = self._transfer(block, env_in.copy(), recording=True)
            for edge, env_edge in self._edge_envs(block, env_out, recording=True):
                if env_edge is None:
                    infeasible.add((edge.source, edge.target, edge.kind.value))
        self._evaluator.recorder = None

        reachable = frozenset(entry_env)
        unreachable = frozenset(
            block.block_id
            for block in self._cfg.real_blocks()
            if block.block_id not in reachable
        )
        return FeasibilityResult(
            reachable=reachable,
            unreachable_blocks=unreachable,
            infeasible_edges=frozenset(infeasible),
            block_entry=entry_env,
            constant_branches=tuple(self._constant_branches),
            events=tuple(self._events),
        )

    # ------------------------------------------------------------------ #
    def _note_event(self, event: EvalEvent) -> None:
        key = (event.kind, event.node_id)
        if key in self._seen_events:
            return
        self._seen_events.add(key)
        self._events.append(event)

    def _widen(
        self,
        block_id: int,
        old: RangeEnvironment,
        new: RangeEnvironment,
        counts: dict[tuple[int, str], int],
    ) -> RangeEnvironment:
        widened = dict(new.ranges)
        for name, new_range in new.ranges.items():
            old_range = old.ranges.get(name, self._defaults.get(name, new_range))
            if new_range != old_range:
                key = (block_id, name)
                counts[key] = counts.get(key, 0) + 1
                if counts[key] > _WIDENING_THRESHOLD:
                    widened[name] = self._type_ranges.get(name, new_range)
        return RangeEnvironment(ranges=widened)

    # ------------------------------------------------------------------ #
    # transfer functions
    # ------------------------------------------------------------------ #
    def _transfer(
        self, block: BasicBlock, env: RangeEnvironment, recording: bool = False
    ) -> RangeEnvironment:
        for stmt in block.statements:
            self._transfer_stmt(stmt, env, recording)
        return env

    def _transfer_stmt(
        self, stmt: Stmt, env: RangeEnvironment, recording: bool
    ) -> None:
        if isinstance(stmt, DeclStmt):
            if stmt.init is None:
                # uninitialised declaration: junk value, full type range
                fallback = self._type_ranges.get(stmt.name)
                if fallback is not None:
                    env.ranges[stmt.name] = fallback
                return
            calls = has_calls(stmt.init)
            if calls:
                self._havoc_globals(env)
            value = self._evaluator.evaluate(stmt.init, env)
            env.ranges[stmt.name] = self._store(stmt.name, value)
            if calls:
                self._havoc_globals(env)
            return
        if isinstance(stmt, ExprStmt):
            calls = has_calls(stmt.expr)
            if calls:
                self._havoc_globals(env)
            self._transfer_expr(stmt.expr, env)
            if calls:
                self._havoc_globals(env)
            return
        if isinstance(stmt, ReturnStmt) and stmt.value is not None:
            calls = has_calls(stmt.value)
            if calls:
                self._havoc_globals(env)
            if recording:
                self._evaluator.evaluate(stmt.value, env)
            if calls:
                self._havoc_globals(env)

    def _transfer_expr(self, expr: Expr, env: RangeEnvironment) -> None:
        if isinstance(expr, AssignExpr):
            self._transfer_expr(expr.value, env)
            value = self._evaluator.evaluate(expr.value, env)
            env.ranges[expr.target.name] = self._store(expr.target.name, value)
            return
        for child in expr.children():
            if isinstance(child, Expr):
                self._transfer_expr(child, env)
        if not isinstance(expr, (Identifier, IntLiteral, BoolLiteral)):
            # evaluate non-trivial reads so the recorder (final pass) sees
            # division/overflow sites outside assignment values too
            if self._evaluator.recorder is not None:
                self._evaluator.evaluate(expr, env)

    def _store(self, name: str, value: IntRange) -> IntRange:
        """Value interval after storing into *name* (wraps at its type)."""
        limit = self._type_ranges.get(name)
        if limit is None:
            return value
        if value.lo >= limit.lo and value.hi <= limit.hi:
            return value
        return limit

    def _havoc_globals(self, env: RangeEnvironment) -> None:
        """A call may write any global: widen them all to their type range."""
        for name in self._globals:
            env.ranges[name] = self._type_ranges[name]

    # ------------------------------------------------------------------ #
    # edge feasibility
    # ------------------------------------------------------------------ #
    def _edge_envs(
        self, block: BasicBlock, env_out: RangeEnvironment, recording: bool = False
    ) -> list[tuple[Edge, RangeEnvironment | None]]:
        edges = self._cfg.out_edges(block)
        terminator = block.terminator
        condition = terminator.condition
        if condition is None or terminator.kind not in (
            TerminatorKind.BRANCH,
            TerminatorKind.SWITCH,
        ):
            return [(edge, env_out.copy()) for edge in edges]

        if has_calls(condition) or assigned_variables(condition):
            # side-effecting condition: no refinement, havoc its effects
            havoced = env_out.copy()
            for name in assigned_variables(condition):
                fallback = self._type_ranges.get(name)
                if fallback is not None:
                    havoced.ranges[name] = fallback
            if has_calls(condition):
                self._havoc_globals(havoced)
            return [(edge, havoced.copy()) for edge in edges]

        if recording:
            self._evaluator.evaluate(condition, env_out)

        if terminator.kind is TerminatorKind.BRANCH:
            truth = self._evaluator.condition_truth(condition, env_out)
            if recording and truth in (TRUE_RANGE, FALSE_RANGE):
                self._constant_branches.append(
                    ConstantBranch(
                        block_id=block.block_id,
                        line=_line_of(condition),
                        value=truth == TRUE_RANGE,
                    )
                )
            result: list[tuple[Edge, RangeEnvironment | None]] = []
            for edge in edges:
                if edge.kind is EdgeKind.TRUE:
                    if truth == FALSE_RANGE:
                        result.append((edge, None))
                    else:
                        result.append(
                            (edge, self._evaluator.refine(condition, True, env_out))
                        )
                elif edge.kind is EdgeKind.FALSE:
                    if truth == TRUE_RANGE:
                        result.append((edge, None))
                    else:
                        result.append(
                            (edge, self._evaluator.refine(condition, False, env_out))
                        )
                else:
                    result.append((edge, env_out.copy()))
            return result

        # SWITCH
        selector = self._evaluator.evaluate(condition, env_out)
        all_case_values: set[int] = set()
        for edge in edges:
            if edge.kind is EdgeKind.CASE:
                all_case_values.update(edge.case_values)
        result = []
        for edge in edges:
            if edge.kind is EdgeKind.CASE:
                surviving = [v for v in edge.case_values if v in selector]
                if not surviving:
                    result.append((edge, None))
                    continue
                refined = env_out.copy()
                if isinstance(condition, Identifier):
                    refined.ranges[condition.name] = IntRange(
                        min(surviving), max(surviving)
                    )
                result.append((edge, refined))
            elif edge.kind is EdgeKind.DEFAULT:
                if selector.size() <= _DEFAULT_ENUM_LIMIT and all(
                    value in all_case_values
                    for value in range(selector.lo, selector.hi + 1)
                ):
                    result.append((edge, None))
                else:
                    result.append((edge, env_out.copy()))
            else:
                result.append((edge, env_out.copy()))
        return result


def analyze_feasibility(
    cfg: ControlFlowGraph, table: FunctionSymbolTable
) -> FeasibilityResult:
    """Run the sound feasibility analysis on *cfg*."""
    return FeasibilityAnalyzer(cfg, table).run()


class StaticPrefilter:
    """Answers "is this goal statically unreachable?" for the query engine.

    Plugged into :class:`repro.mc.query.QueryEngineOptions` (duck-typed — the
    mc layer never imports sa).  A ``True`` answer is a *proof*: the target
    blocks can never execute or a required edge can never be taken, so the
    model checker would necessarily report ``UNREACHABLE``.
    """

    def __init__(self, feasibility: FeasibilityResult):
        self._unreachable = set(feasibility.unreachable_blocks)
        self._infeasible_edges = set(feasibility.infeasible_edges)

    @property
    def unreachable_blocks(self) -> frozenset[int]:
        return frozenset(self._unreachable)

    @property
    def infeasible_edges(self) -> frozenset[tuple[int, int, str]]:
        return frozenset(self._infeasible_edges)

    def goal_is_unreachable(self, goal, location_block) -> bool:
        from ..mc.slicing import parse_label

        # ordered labels: every one must be takeable for the goal to hold
        for label in goal.ordered_labels:
            parsed = parse_label(label)
            if parsed is None:
                continue
            if parsed[0] == "block":
                if parsed[1] in self._unreachable:
                    return True
            elif parsed[0] == "edge":
                _, source, target, kind = parsed
                if (source, target, kind) in self._infeasible_edges:
                    return True
                if source in self._unreachable or target in self._unreachable:
                    return True

        # target disjuncts: *all* of them must be provably unreachable
        disjuncts: list[bool] = []
        provable = True
        for label in goal.target_labels:
            parsed = parse_label(label)
            if parsed is None:
                provable = False
                break
            if parsed[0] == "block":
                disjuncts.append(parsed[1] in self._unreachable)
            else:
                _, source, target, kind = parsed
                disjuncts.append(
                    (source, target, kind) in self._infeasible_edges
                    or source in self._unreachable
                    or target in self._unreachable
                )
        if provable:
            for location in goal.target_locations:
                block_id = location_block.get(location)
                if block_id is None:
                    provable = False
                    break
                disjuncts.append(block_id in self._unreachable)
        if provable and disjuncts and all(disjuncts):
            return True
        return False
