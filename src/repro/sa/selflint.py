"""Codebase self-lint: AST checks for the repo's own invariants.

Generalises the ``perf/NAMES.md`` name-drift lint into a small rule engine
over the Python AST of ``src/repro``:

========  ============================================================
rule      invariant
========  ============================================================
SL001     no wall-clock (``time.time``) inside ``service/`` — the
          service is pinned to monotonic clocks (PR 8)
SL002     every literal fault-site name passed to ``maybe_fault`` /
          ``*_injector.check`` is registered in
          :data:`repro.resilience.faults.SITES`
SL003     every literal ``obs.span(...)`` / ``perf.add/record_time/
          timed(...)`` name appears in ``perf/NAMES.md``
SL004     a module-level ``ContextVar`` that is ever ``.set(...)`` is
          also ``.reset(...)`` somewhere in the same module (token
          discipline; leaking sets break per-request isolation)
========  ============================================================

Run by ``tests/test_selflint.py`` in the default tier-1 suite.  Intentional
exceptions go into ``tests/selflint_waivers.txt`` as ``RULE path`` lines
(paths relative to the scan root, ``#`` comments allowed).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from ..resilience.faults import SITES

RULES = ("SL001", "SL002", "SL003", "SL004")

_NAMES_ENTRY = re.compile(r"^- `([^`]+)`", re.MULTILINE)


@dataclass(frozen=True)
class LintFinding:
    """One violation of a self-lint rule."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def load_waivers(path: Path) -> frozenset[tuple[str, str]]:
    """``RULE path`` pairs from a waiver file (missing file = no waivers)."""
    if not path.exists():
        return frozenset()
    waivers: set[tuple[str, str]] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        if len(parts) == 2:
            waivers.add((parts[0], parts[1].strip()))
    return frozenset(waivers)


def registered_names(names_md: Path) -> tuple[frozenset[str], frozenset[str]]:
    """(perf names, span names) parsed from ``perf/NAMES.md``."""
    text = names_md.read_text(encoding="utf-8")
    marker = "## Trace spans"
    split_at = text.find(marker)
    perf_text = text if split_at < 0 else text[:split_at]
    span_text = "" if split_at < 0 else text[split_at:]
    return (
        frozenset(_NAMES_ENTRY.findall(perf_text)),
        frozenset(_NAMES_ENTRY.findall(span_text)),
    )


def run_selflint(
    root: Path,
    names_md: Path | None = None,
    waivers: frozenset[tuple[str, str]] = frozenset(),
) -> list[LintFinding]:
    """Lint every Python module under *root*; waived findings are dropped."""
    root = Path(root)
    if names_md is None:
        names_md = root / "perf" / "NAMES.md"
    perf_names, span_names = registered_names(names_md)
    findings: list[LintFinding] = []
    for source in sorted(root.rglob("*.py")):
        relative = source.relative_to(root).as_posix()
        try:
            tree = ast.parse(source.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # pragma: no cover - tree is expected valid
            findings.append(
                LintFinding(
                    rule="SL000",
                    path=relative,
                    line=exc.lineno or 0,
                    message=f"unparseable module: {exc.msg}",
                )
            )
            continue
        findings.extend(_lint_module(tree, relative, perf_names, span_names))
    findings = [f for f in findings if (f.rule, f.path) not in waivers]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _lint_module(
    tree: ast.Module,
    relative: str,
    perf_names: frozenset[str],
    span_names: frozenset[str],
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    in_service = relative.startswith("service/")

    # SL004 bookkeeping: module-level ContextVar names and their set/reset use
    contextvars: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if _is_contextvar_call(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    contextvars.add(target.id)
    set_sites: dict[str, int] = {}
    reset_names: set[str] = set()

    for node in ast.walk(tree):
        if in_service and _is_wall_clock(node):
            findings.append(
                LintFinding(
                    rule="SL001",
                    path=relative,
                    line=getattr(node, "lineno", 0),
                    message="wall-clock time.time in service code "
                    "(use time.monotonic)",
                )
            )
        if isinstance(node, ast.Call):
            findings.extend(
                _lint_call(node, relative, perf_names, span_names)
            )
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                owner = func.value.id
                if owner in contextvars:
                    if func.attr == "set":
                        set_sites.setdefault(owner, node.lineno)
                    elif func.attr == "reset":
                        reset_names.add(owner)

    for owner, line in sorted(set_sites.items()):
        if owner not in reset_names:
            findings.append(
                LintFinding(
                    rule="SL004",
                    path=relative,
                    line=line,
                    message=f"ContextVar {owner!r} is set but never reset "
                    "in this module",
                )
            )
    return findings


def _is_contextvar_call(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id == "ContextVar"
    if isinstance(func, ast.Attribute):
        return func.attr == "ContextVar"
    return False


def _is_wall_clock(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return (
            node.attr == "time"
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
        )
    if isinstance(node, ast.ImportFrom):
        return node.module == "time" and any(
            alias.name == "time" for alias in node.names
        )
    return False


def _literal_first_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _lint_call(
    node: ast.Call,
    relative: str,
    perf_names: frozenset[str],
    span_names: frozenset[str],
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    func = node.func

    # SL002: literal fault-site names must be registered
    is_fault_call = False
    if isinstance(func, ast.Name) and func.id in ("maybe_fault", "_maybe_fault"):
        is_fault_call = True
    elif isinstance(func, ast.Attribute) and func.attr in ("maybe_fault", "check"):
        owner = func.value
        owner_name = ""
        if isinstance(owner, ast.Name):
            owner_name = owner.id
        elif isinstance(owner, ast.Attribute):
            owner_name = owner.attr
        if "injector" in owner_name:
            is_fault_call = True
    if is_fault_call:
        site = _literal_first_arg(node)
        if site is not None and site not in SITES:
            findings.append(
                LintFinding(
                    rule="SL002",
                    path=relative,
                    line=node.lineno,
                    message=f"fault site {site!r} is not in "
                    "repro.resilience.faults.SITES",
                )
            )

    # SL003: literal perf/span names must be in NAMES.md
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner_id = func.value.id
        name = _literal_first_arg(node)
        if name is not None:
            if owner_id in ("perf", "registry") and func.attr in (
                "add",
                "record_time",
                "timed",
            ):
                if name not in perf_names:
                    findings.append(
                        LintFinding(
                            rule="SL003",
                            path=relative,
                            line=node.lineno,
                            message=f"perf name {name!r} missing from "
                            "perf/NAMES.md",
                        )
                    )
            elif owner_id == "obs" and func.attr == "span":
                if name not in span_names:
                    findings.append(
                        LintFinding(
                            rule="SL003",
                            path=relative,
                            line=node.lineno,
                            message=f"span name {name!r} missing from "
                            "perf/NAMES.md",
                        )
                    )
    return findings
