"""Static loop-bound inference for counted ``for`` loops.

``TimingSchema`` charges every loop its ``#pragma loopbound`` or a flat
default.  For the classic counted loop

.. code-block:: c

    for (i = a; i < b; i = i + c) { ... }

with literal ``a``/``b``/``c`` and a counter the body never touches, the exact
iteration count is computable statically; this module proves it and feeds it
to the schema (precedence: pragma > inferred > default).

The inference is deliberately conservative — it refuses whenever

* the counter is written anywhere in the body (including nested statements),
* the counter is a global (a called function could write it) or an analysis
  input,
* the stride could leave the counter's type range before the exit test fails
  (two's-complement wrap would restart the count), or
* init/condition/step do not constant-fold to the supported shape.

A refusal merely keeps the existing default; an accepted bound is exact.
"""

from __future__ import annotations

from ..cfg.graph import ControlFlowGraph, TerminatorKind
from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    DeclStmt,
    Expr,
    ForStmt,
    Identifier,
    IntLiteral,
    Stmt,
)
from ..minic.folding import fold_expr
from ..minic.symbols import FunctionSymbolTable, SymbolKind


def _as_constant(expr: Expr | None) -> int | None:
    if expr is None:
        return None
    folded = fold_expr(expr)
    if isinstance(folded, IntLiteral):
        return folded.value
    return None


def _counter_and_start(init: Stmt | Expr | None) -> tuple[str, int] | None:
    """``i = a`` (or ``int i = a``) → ``(i, a)``."""
    if isinstance(init, DeclStmt):
        start = _as_constant(init.init)
        if start is None:
            return None
        return init.name, start
    expr = getattr(init, "expr", init)
    if isinstance(expr, AssignExpr) and isinstance(expr.target, Identifier):
        start = _as_constant(expr.value)
        if start is None:
            return None
        return expr.target.name, start
    return None


def _limit(cond: Expr | None, counter: str) -> tuple[str, int] | None:
    """``i < b`` / ``i <= b`` / ``i > b`` / ``i >= b`` → ``(op, b)``."""
    if not isinstance(cond, BinaryOp) or cond.op not in ("<", "<=", ">", ">="):
        return None
    if isinstance(cond.left, Identifier) and cond.left.name == counter:
        bound = _as_constant(cond.right)
        if bound is None:
            return None
        return cond.op, bound
    if isinstance(cond.right, Identifier) and cond.right.name == counter:
        bound = _as_constant(cond.left)
        if bound is None:
            return None
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[cond.op]
        return flipped, bound
    return None


def _stride(step: Expr | None, counter: str) -> int | None:
    """``i = i + c`` / ``i = i - c`` / ``i = c + i`` → signed stride."""
    if not isinstance(step, AssignExpr) or not isinstance(step.target, Identifier):
        return None
    if step.target.name != counter:
        return None
    value = step.value
    if not isinstance(value, BinaryOp) or value.op not in ("+", "-"):
        return None
    if isinstance(value.left, Identifier) and value.left.name == counter:
        amount = _as_constant(value.right)
    elif (
        value.op == "+"
        and isinstance(value.right, Identifier)
        and value.right.name == counter
    ):
        amount = _as_constant(value.left)
    else:
        return None
    if amount is None or amount <= 0:
        return None
    return amount if value.op == "+" else -amount


def _iterations(start: int, op: str, bound: int, stride: int) -> int | None:
    """Number of times the body runs, or None when the shape diverges."""
    if stride > 0 and op in ("<", "<="):
        limit = bound if op == "<=" else bound - 1
        if start > limit:
            return 0
        return (limit - start) // stride + 1
    if stride < 0 and op in (">", ">="):
        limit = bound if op == ">=" else bound + 1
        if start < limit:
            return 0
        return (start - limit) // (-stride) + 1
    return None


def infer_loop_bounds(
    cfg: ControlFlowGraph, table: FunctionSymbolTable
) -> dict[int, int]:
    """Proven iteration counts keyed by loop-header block id."""
    bounds: dict[int, int] = {}
    for block in cfg.blocks():
        terminator = block.terminator
        if terminator.kind is not TerminatorKind.BRANCH:
            continue
        anchor = terminator.ast_node
        if not isinstance(anchor, ForStmt):
            continue
        parsed = _counter_and_start(anchor.init)
        if parsed is None:
            continue
        counter, start = parsed
        symbol = table.variables.get(counter)
        if symbol is None or symbol.is_input:
            continue
        if symbol.kind not in (SymbolKind.LOCAL, SymbolKind.PARAMETER):
            continue  # globals may be rewritten by callees
        limit = _limit(anchor.cond, counter)
        stride = _stride(anchor.step, counter)
        if limit is None or stride is None:
            continue
        if _body_writes(anchor.body, counter):
            continue
        op, bound = limit
        iterations = _iterations(start, op, bound, stride)
        if iterations is None:
            continue
        # the counter must stay representable for the whole count, otherwise
        # wrap-around restarts it and the arithmetic above is meaningless
        type_range = symbol.ctype.value_range()
        final = start + iterations * stride
        if not (start in type_range and final in type_range):
            continue
        bounds[block.block_id] = iterations
    return bounds


def _body_writes(body: Stmt, counter: str) -> bool:
    for node in body.walk():
        if isinstance(node, DeclStmt) and node.name == counter:
            return True
        if isinstance(node, AssignExpr) and node.target.name == counter:
            return True
    return False
