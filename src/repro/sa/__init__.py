"""``repro.sa`` — sound static analysis in front of the model checker.

One call, :func:`run_static_analysis`, bundles the three layers:

* :mod:`repro.sa.feasibility` — interval/branch-correlation propagation that
  proves edges and blocks statically infeasible; its
  :class:`~repro.sa.feasibility.StaticPrefilter` answers reachability goals
  as ``UNREACHABLE`` before :mod:`repro.mc.query` ever plans a solver call,
* :mod:`repro.sa.loopbounds` — proven iteration counts for counted ``for``
  loops, fed to :class:`repro.wcet.timing_schema.TimingSchema` (precedence:
  pragma > inferred > default),
* :mod:`repro.sa.diagnostics` — SA001..SA005 program diagnostics rendered
  into reports and the ``lint`` CLI subcommand.

:mod:`repro.sa.selflint` (SL001..SL004) lints the repo's own sources and is
wired through ``tests/test_selflint.py`` rather than this orchestrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import perf
from ..cfg.graph import ControlFlowGraph
from ..minic.symbols import FunctionSymbolTable
from .diagnostics import (
    Diagnostic,
    diagnose,
    diagnostics_payload,
    max_severity,
    render_diagnostics,
)
from .feasibility import FeasibilityResult, StaticPrefilter, analyze_feasibility
from .loopbounds import infer_loop_bounds

__all__ = [
    "Diagnostic",
    "FeasibilityResult",
    "StaticAnalysisResult",
    "StaticPrefilter",
    "analyze_feasibility",
    "diagnose",
    "diagnostics_payload",
    "infer_loop_bounds",
    "max_severity",
    "render_diagnostics",
    "run_static_analysis",
]


@dataclass
class StaticAnalysisResult:
    """Everything the static pre-analysis proved about one function."""

    feasibility: FeasibilityResult
    loop_bounds: dict[int, int]
    diagnostics: list[Diagnostic] = field(default_factory=list)
    prefilter: StaticPrefilter | None = None

    @property
    def edges_pruned(self) -> int:
        return len(self.feasibility.infeasible_edges)

    def payload(self) -> dict:
        """JSON-ready summary for reports."""
        return {
            "edges_pruned": self.edges_pruned,
            "unreachable_blocks": sorted(self.feasibility.unreachable_blocks),
            "loop_bounds_inferred": len(self.loop_bounds),
            "diagnostics": diagnostics_payload(self.diagnostics),
        }


def run_static_analysis(
    cfg: ControlFlowGraph, table: FunctionSymbolTable
) -> StaticAnalysisResult:
    """Run feasibility, loop-bound inference and diagnostics on one CFG."""
    with perf.timed("sa.prefilter"):
        feasibility = analyze_feasibility(cfg, table)
        loop_bounds = infer_loop_bounds(cfg, table)
        diagnostics = diagnose(cfg, table, feasibility)
    perf.add("sa.edges_pruned", len(feasibility.infeasible_edges))
    perf.add("sa.loop_bounds_inferred", len(loop_bounds))
    perf.add("sa.diagnostics", len(diagnostics))
    return StaticAnalysisResult(
        feasibility=feasibility,
        loop_bounds=loop_bounds,
        diagnostics=diagnostics,
        prefilter=StaticPrefilter(feasibility),
    )
