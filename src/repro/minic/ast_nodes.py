"""Abstract syntax tree node classes for mini-C.

The AST is deliberately small and fully structured (no ``goto``): every node
is a dataclass, expressions and statements are separate hierarchies, and every
node records the :class:`~repro.minic.errors.SourceLocation` of its first
token.  The partitioning algorithm of the paper traverses the CFG "following
the abstract syntax tree", so CFG basic blocks keep back-references to the
statements they were built from.

Node overview
-------------

Expressions
    :class:`IntLiteral`, :class:`BoolLiteral`, :class:`Identifier`,
    :class:`UnaryOp`, :class:`BinaryOp`, :class:`Conditional`,
    :class:`CallExpr`, :class:`CastExpr`, :class:`AssignExpr`

Statements
    :class:`DeclStmt`, :class:`ExprStmt`, :class:`CompoundStmt`,
    :class:`IfStmt`, :class:`SwitchStmt` / :class:`SwitchCase`,
    :class:`WhileStmt`, :class:`DoWhileStmt`, :class:`ForStmt`,
    :class:`BreakStmt`, :class:`ContinueStmt`, :class:`ReturnStmt`,
    :class:`EmptyStmt`

Top level
    :class:`Parameter`, :class:`FunctionDef`, :class:`Program`
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from .errors import SourceLocation
from .types import CType, IntRange

_node_counter = itertools.count(1)


def _next_node_id() -> int:
    return next(_node_counter)


@dataclass
class Node:
    """Base class of every AST node.

    Each node receives a process-wide unique ``node_id`` which the CFG
    builder, the partitioner and the instrumenter use as a stable key.
    """

    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)
    node_id: int = field(default_factory=_next_node_id, kw_only=True, compare=False)

    def children(self) -> Iterator["Node"]:
        """Yield the direct child nodes (override in subclasses)."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr(Node):
    """Base class of expressions.

    ``ctype`` is filled in by semantic analysis
    (:mod:`repro.minic.semantic`); before that it is ``None``.
    """

    ctype: CType | None = field(default=None, kw_only=True, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class BoolLiteral(Expr):
    value: bool = False

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class Identifier(Expr):
    name: str = ""

    def __str__(self) -> str:
        return self.name


#: Unary operators accepted by the parser.
UNARY_OPERATORS = ("-", "+", "!", "~")

#: Binary operators in increasing precedence groups (used by the parser).
BINARY_PRECEDENCE: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

#: Operators whose result is boolean (0/1).
RELATIONAL_OPERATORS = frozenset({"==", "!=", "<", "<=", ">", ">=", "&&", "||"})


@dataclass
class UnaryOp(Expr):
    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class BinaryOp(Expr):
    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class Conditional(Expr):
    """The C ternary operator ``cond ? then : otherwise``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        yield self.otherwise

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then} : {self.otherwise})"


@dataclass
class CallExpr(Expr):
    """A call to a named function (``printf3()``, ``min(a, b)``)."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass
class CastExpr(Expr):
    target_type: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand

    def __str__(self) -> str:
        return f"(({self.target_type}){self.operand})"


@dataclass
class AssignExpr(Expr):
    """An assignment ``target = value``.

    Compound assignments (``+=`` etc.) and increments are desugared by the
    parser into plain assignments so every later stage only sees ``=``.
    """

    target: Identifier = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt(Node):
    """Base class of statements."""


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration, optionally with an initialiser."""

    name: str = ""
    var_type: CType = None  # type: ignore[assignment]
    init: Expr | None = None

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (assignment or call)."""

    expr: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class CompoundStmt(Stmt):
    """A ``{ ... }`` block."""

    statements: list[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.statements


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_branch: Stmt = None  # type: ignore[assignment]
    else_branch: Stmt | None = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then_branch
        if self.else_branch is not None:
            yield self.else_branch


@dataclass
class SwitchCase(Node):
    """One ``case`` (or ``default``) arm of a switch statement.

    ``values`` contains the constant labels of the arm (several ``case``
    labels may share a body); it is empty for the ``default`` arm.  Arms in
    generated automotive code always end in ``break``; the parser enforces
    absence of fall-through so the CFG stays structured.
    """

    values: list[int] = field(default_factory=list)
    body: CompoundStmt = None  # type: ignore[assignment]
    is_default: bool = False

    def children(self) -> Iterator[Node]:
        yield self.body


@dataclass
class SwitchStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]
    cases: list[SwitchCase] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield self.expr
        yield from self.cases

    @property
    def default_case(self) -> SwitchCase | None:
        for case in self.cases:
            if case.is_default:
                return case
        return None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]
    #: Maximum iteration count from a ``#pragma loopbound(n)`` annotation.
    loop_bound: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]
    loop_bound: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.body
        yield self.cond


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt = None  # type: ignore[assignment]
    loop_bound: int | None = None

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class EmptyStmt(Stmt):
    pass


# --------------------------------------------------------------------------- #
# Top level
# --------------------------------------------------------------------------- #
@dataclass
class Parameter(Node):
    name: str = ""
    param_type: CType = None  # type: ignore[assignment]


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: CType = None  # type: ignore[assignment]
    params: list[Parameter] = field(default_factory=list)
    body: CompoundStmt = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield from self.params
        yield self.body


@dataclass
class GlobalDecl(Node):
    """A file-scope variable declaration."""

    name: str = ""
    var_type: CType = None  # type: ignore[assignment]
    init: Expr | None = None
    is_input: bool = False
    declared_range: IntRange | None = None

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


@dataclass
class Program(Node):
    """A translation unit: file-scope declarations plus function definitions.

    ``input_variables`` lists the names annotated with ``#pragma input``; they
    are the free variables of the WCET analysis (the test data the hybrid
    generator searches for).  ``range_annotations`` carries
    ``#pragma range x lo hi`` declarations consumed by the variable-range
    optimisation and the input-space model.
    """

    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    input_variables: list[str] = field(default_factory=list)
    range_annotations: dict[str, IntRange] = field(default_factory=dict)
    external_functions: list[str] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.globals
        yield from self.functions

    def function(self, name: str) -> FunctionDef:
        """Look up a function definition by name (raises ``KeyError``)."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def global_decl(self, name: str) -> GlobalDecl:
        for decl in self.globals:
            if decl.name == name:
                return decl
        raise KeyError(f"no global named {name!r}")
