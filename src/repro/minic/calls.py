"""Call-site extraction helpers over the mini-C AST.

The interprocedural layer (:mod:`repro.callgraph`) needs to know which
functions a function body may call and how many syntactic call sites each
callee has.  These helpers are the single place that knowledge is computed:
a pre-order :meth:`~repro.minic.ast_nodes.Node.walk` over the function
definition, collecting every :class:`~repro.minic.ast_nodes.CallExpr` --
including calls buried in conditions, initialisers and nested expressions.
"""

from __future__ import annotations

from .ast_nodes import CallExpr, FunctionDef, Node


def call_sites(root: Node) -> list[CallExpr]:
    """Every :class:`CallExpr` under *root*, in pre-order (source order)."""
    return [node for node in root.walk() if isinstance(node, CallExpr)]


def called_names(function: FunctionDef) -> dict[str, int]:
    """Callee name -> number of syntactic call sites in *function*.

    The mapping preserves first-appearance order, which keeps downstream
    reports and fingerprints deterministic without re-sorting.
    """
    counts: dict[str, int] = {}
    for site in call_sites(function):
        counts[site.name] = counts.get(site.name, 0) + 1
    return counts
