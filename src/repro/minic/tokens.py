"""Token definitions for the mini-C lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "identifier"
    NUMBER = "number"
    CHAR = "char-literal"
    KEYWORD = "keyword"
    PUNCT = "punctuator"
    PRAGMA = "pragma"
    EOF = "end-of-file"


#: Reserved words of the language.  Type names are *not* keywords -- they are
#: ordinary identifiers resolved through :data:`repro.minic.types.TYPE_SPELLINGS`
#: -- except for the C storage/type keywords that may be combined
#: ("unsigned int"), which the parser needs to recognise eagerly.
KEYWORDS = frozenset(
    {
        "if",
        "else",
        "switch",
        "case",
        "default",
        "while",
        "do",
        "for",
        "break",
        "continue",
        "return",
        "void",
        "int",
        "char",
        "short",
        "long",
        "signed",
        "unsigned",
        "bool",
        "_Bool",
        "true",
        "false",
        "const",
        "volatile",
        "static",
        "enum",
        "goto",
    }
)

#: Multi-character punctuators, longest first so the lexer can do maximal munch.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ":",
    "?",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    ".",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: the identifier/keyword text, the
    integer value of a number literal, the punctuator spelling, or the pragma
    body for ``#pragma`` lines understood by the frontend (loop bounds and
    input-variable annotations).
    """

    kind: TokenKind
    value: object
    location: SourceLocation

    @property
    def text(self) -> str:
        """The token payload as text (for identifiers/keywords/punctuators)."""
        return str(self.value)

    def is_punct(self, spelling: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == spelling

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}({self.value!r})@{self.location}"
