"""Type system of the mini-C language.

The language deliberately mirrors the subset of C emitted by automotive code
generators such as dSpace TargetLink: fixed-width signed/unsigned integers,
booleans and ``void`` functions.  Types matter for two reasons in this
reproduction:

* the target-hardware cost model charges different cycle counts for 8-bit and
  16-bit arithmetic, and
* the state-space size of the generated transition system is the sum of the
  bit widths of all state variables, which is exactly what the paper's
  variable-range-analysis optimisation reduces.

Types are immutable value objects; the canonical instances are exposed as
module-level constants (:data:`INT8`, :data:`UINT8`, :data:`INT16`, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntRange:
    """An inclusive integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def size(self) -> int:
        """Number of values in the range."""
        return self.hi - self.lo + 1

    def bits(self) -> int:
        """Number of bits needed to encode a value of this range."""
        return max(1, (self.size() - 1).bit_length())

    def clamp(self, value: int) -> int:
        """Clamp *value* into the range."""
        return min(self.hi, max(self.lo, value))

    def intersect(self, other: "IntRange") -> "IntRange | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return IntRange(lo, hi)

    def union(self, other: "IntRange") -> "IntRange":
        return IntRange(min(self.lo, other.lo), max(self.hi, other.hi))


@dataclass(frozen=True)
class CType:
    """A mini-C scalar type.

    Attributes
    ----------
    name:
        The canonical spelling used by the pretty printer (``"Int16"``).
    bits:
        Storage width in bits.  Booleans use 1 bit in the abstract semantics
        even though C compilers typically store them in a full byte; the
        8/16-bit distinction only drives the cost model and wrap-around
        arithmetic.
    signed:
        Whether arithmetic wraps as two's-complement signed.
    is_bool:
        Booleans additionally normalise every stored value to 0 or 1.
    """

    name: str
    bits: int
    signed: bool
    is_bool: bool = False
    is_void: bool = False

    # ------------------------------------------------------------------ #
    # value semantics
    # ------------------------------------------------------------------ #
    @property
    def min_value(self) -> int:
        if self.is_void:
            raise TypeError("void has no values")
        if self.is_bool:
            return 0
        if self.signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def max_value(self) -> int:
        if self.is_void:
            raise TypeError("void has no values")
        if self.is_bool:
            return 1
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def value_range(self) -> IntRange:
        """The representable range of the type."""
        return IntRange(self.min_value, self.max_value)

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python integer into the type's domain.

        Integers wrap modulo ``2**bits`` with two's-complement
        reinterpretation for signed types; booleans normalise to 0/1.
        """
        if self.is_void:
            raise TypeError("cannot store a value of type void")
        if self.is_bool:
            return 1 if value != 0 else 0
        value &= (1 << self.bits) - 1
        if self.signed and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


# canonical instances --------------------------------------------------- #
VOID = CType("void", 0, signed=False, is_void=True)
BOOL = CType("Bool", 1, signed=False, is_bool=True)
INT8 = CType("Int8", 8, signed=True)
UINT8 = CType("UInt8", 8, signed=False)
INT16 = CType("Int16", 16, signed=True)
UINT16 = CType("UInt16", 16, signed=False)
INT32 = CType("Int32", 32, signed=True)
UINT32 = CType("UInt32", 32, signed=False)

#: All scalar (non-void) types.
SCALAR_TYPES = (BOOL, INT8, UINT8, INT16, UINT16, INT32, UINT32)

#: Mapping from every accepted type spelling to the canonical type.  The
#: table accepts both plain C spellings ("int", "unsigned char", ...) and the
#: TargetLink-style fixed width typedefs ("Int16", "UInt8", "Bool").
TYPE_SPELLINGS: dict[str, CType] = {
    "void": VOID,
    "bool": BOOL,
    "_Bool": BOOL,
    "Bool": BOOL,
    "boolean": BOOL,
    "char": INT8,
    "signed char": INT8,
    "unsigned char": UINT8,
    "short": INT16,
    "short int": INT16,
    "signed short": INT16,
    "unsigned short": UINT16,
    "unsigned short int": UINT16,
    "int": INT16,
    "signed int": INT16,
    "signed": INT16,
    "unsigned": UINT16,
    "unsigned int": UINT16,
    "long": INT32,
    "long int": INT32,
    "unsigned long": UINT32,
    "unsigned long int": UINT32,
    "Int8": INT8,
    "UInt8": UINT8,
    "Int16": INT16,
    "UInt16": UINT16,
    "Int32": INT32,
    "UInt32": UINT32,
}


def lookup_type(spelling: str) -> CType | None:
    """Resolve a type spelling to its canonical :class:`CType`.

    Returns ``None`` for unknown spellings; the parser turns that into a
    :class:`~repro.minic.errors.ParseError` with a proper location.

    Note: the paper targets 16-bit microcontrollers (Motorola HCS12), so plain
    ``int`` maps to 16 bits -- this also matches the paper's remark that C
    booleans are "mostly encoded as 16 bit integers".
    """
    return TYPE_SPELLINGS.get(spelling)


def common_type(left: CType, right: CType) -> CType:
    """The usual-arithmetic-conversion result type of a binary operation.

    A simplified version of C's integer promotion rules that is adequate for
    generated control code: both operands are promoted to the wider of the two
    widths (at least 16 bits), and the result is unsigned if either promoted
    operand is unsigned at that width.
    """
    if left.is_void or right.is_void:
        raise TypeError("void operand in arithmetic")
    bits = max(16, left.bits, right.bits)
    unsigned = any(
        not t.is_bool and not t.signed and t.bits >= bits for t in (left, right)
    )
    if bits <= 16:
        return UINT16 if unsigned else INT16
    return UINT32 if unsigned else INT32
