"""Pretty printer: turn a mini-C AST back into compilable C-like source.

The printer is used for three purposes:

* emitting *instrumented* source (the partitioner inserts calls to the
  measurement macros before/after each program segment),
* round-trip property tests (parse → print → parse yields an equivalent AST),
* human-readable reports and examples.

Printing is deterministic; expressions are fully parenthesised except for
trivial leaves, which keeps the round-trip property simple and unambiguous.
"""

from __future__ import annotations

from .ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    Program,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    UnaryOp,
    WhileStmt,
)
from .types import CType


class PrettyPrinter:
    """Render AST nodes as source text."""

    def __init__(self, indent: str = "    "):
        self._indent_unit = indent

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def print_program(self, program: Program) -> str:
        parts: list[str] = []
        for name in program.input_variables:
            parts.append(f"#pragma input {name}")
        for name, rng in sorted(program.range_annotations.items()):
            parts.append(f"#pragma range {name} {rng.lo} {rng.hi}")
        if parts:
            parts.append("")
        for name in program.external_functions:
            parts.append(f"void {name}();")
        if program.external_functions:
            parts.append("")
        for decl in program.globals:
            parts.append(self.print_global(decl))
        if program.globals:
            parts.append("")
        for func in program.functions:
            parts.append(self.print_function(func))
            parts.append("")
        return "\n".join(parts).rstrip() + "\n"

    def print_global(self, decl: GlobalDecl) -> str:
        init = f" = {self.print_expr(decl.init)}" if decl.init is not None else ""
        return f"{self._type(decl.var_type)} {decl.name}{init};"

    def print_function(self, func: FunctionDef) -> str:
        params = ", ".join(f"{self._type(p.param_type)} {p.name}" for p in func.params)
        if not params:
            params = "void"
        header = f"{self._type(func.return_type)} {func.name}({params})"
        body = self.print_stmt(func.body, 0)
        return f"{header}\n{body}"

    def print_stmt(self, stmt: Stmt, level: int = 0) -> str:
        pad = self._indent_unit * level
        if isinstance(stmt, CompoundStmt):
            inner = "\n".join(self.print_stmt(s, level + 1) for s in stmt.statements)
            if inner:
                return f"{pad}{{\n{inner}\n{pad}}}"
            return f"{pad}{{\n{pad}}}"
        if isinstance(stmt, DeclStmt):
            init = f" = {self.print_expr(stmt.init)}" if stmt.init is not None else ""
            return f"{pad}{self._type(stmt.var_type)} {stmt.name}{init};"
        if isinstance(stmt, ExprStmt):
            return f"{pad}{self.print_expr(stmt.expr)};"
        if isinstance(stmt, IfStmt):
            text = f"{pad}if ({self.print_expr(stmt.cond)})\n"
            text += self._print_branch(stmt.then_branch, level)
            if stmt.else_branch is not None:
                text += f"\n{pad}else\n"
                text += self._print_branch(stmt.else_branch, level)
            return text
        if isinstance(stmt, SwitchStmt):
            lines = [f"{pad}switch ({self.print_expr(stmt.expr)}) {{"]
            for case in stmt.cases:
                if case.is_default and not case.values:
                    lines.append(f"{pad}default:")
                for value in case.values:
                    lines.append(f"{pad}case {value}:")
                if case.is_default and case.values:
                    lines.append(f"{pad}default:")
                for child in case.body.statements:
                    lines.append(self.print_stmt(child, level + 1))
                lines.append(f"{self._indent_unit * (level + 1)}break;")
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(stmt, WhileStmt):
            text = ""
            if stmt.loop_bound is not None:
                text += f"{pad}#pragma loopbound({stmt.loop_bound})\n"
            text += f"{pad}while ({self.print_expr(stmt.cond)})\n"
            text += self._print_branch(stmt.body, level)
            return text
        if isinstance(stmt, DoWhileStmt):
            text = ""
            if stmt.loop_bound is not None:
                text += f"{pad}#pragma loopbound({stmt.loop_bound})\n"
            text += f"{pad}do\n"
            text += self._print_branch(stmt.body, level)
            text += f"\n{pad}while ({self.print_expr(stmt.cond)});"
            return text
        if isinstance(stmt, ForStmt):
            init = ""
            if isinstance(stmt.init, DeclStmt):
                init = self.print_stmt(stmt.init, 0).strip().rstrip(";")
            elif isinstance(stmt.init, ExprStmt):
                init = self.print_expr(stmt.init.expr)
            cond = self.print_expr(stmt.cond) if stmt.cond is not None else ""
            step = self.print_expr(stmt.step) if stmt.step is not None else ""
            text = ""
            if stmt.loop_bound is not None:
                text += f"{pad}#pragma loopbound({stmt.loop_bound})\n"
            text += f"{pad}for ({init}; {cond}; {step})\n"
            text += self._print_branch(stmt.body, level)
            return text
        if isinstance(stmt, BreakStmt):
            return f"{pad}break;"
        if isinstance(stmt, ContinueStmt):
            return f"{pad}continue;"
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                return f"{pad}return {self.print_expr(stmt.value)};"
            return f"{pad}return;"
        if isinstance(stmt, EmptyStmt):
            return f"{pad};"
        raise TypeError(f"cannot print statement {type(stmt).__name__}")

    def _print_branch(self, stmt: Stmt, level: int) -> str:
        """Print the branch of an if/loop; non-compound branches get braces."""
        if isinstance(stmt, CompoundStmt):
            return self.print_stmt(stmt, level)
        pad = self._indent_unit * level
        inner = self.print_stmt(stmt, level + 1)
        return f"{pad}{{\n{inner}\n{pad}}}"

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def print_expr(self, expr: Expr) -> str:
        if isinstance(expr, IntLiteral):
            return str(expr.value)
        if isinstance(expr, BoolLiteral):
            return "1" if expr.value else "0"
        if isinstance(expr, Identifier):
            return expr.name
        if isinstance(expr, UnaryOp):
            return f"({expr.op}{self.print_expr(expr.operand)})"
        if isinstance(expr, BinaryOp):
            return f"({self.print_expr(expr.left)} {expr.op} {self.print_expr(expr.right)})"
        if isinstance(expr, Conditional):
            return (
                f"({self.print_expr(expr.cond)} ? {self.print_expr(expr.then)}"
                f" : {self.print_expr(expr.otherwise)})"
            )
        if isinstance(expr, AssignExpr):
            return f"{expr.target.name} = {self.print_expr(expr.value)}"
        if isinstance(expr, CastExpr):
            return f"(({self._type(expr.target_type)}){self.print_expr(expr.operand)})"
        if isinstance(expr, CallExpr):
            args = ", ".join(self.print_expr(a) for a in expr.args)
            return f"{expr.name}({args})"
        raise TypeError(f"cannot print expression {type(expr).__name__}")

    @staticmethod
    def _type(ctype: CType) -> str:
        return ctype.name


def print_program(program: Program) -> str:
    """Render *program* as source text."""
    return PrettyPrinter().print_program(program)


def print_statement(stmt: Stmt) -> str:
    """Render a single statement (used in reports and error messages)."""
    return PrettyPrinter().print_stmt(stmt, 0)


def print_expression(expr: Expr) -> str:
    """Render a single expression."""
    return PrettyPrinter().print_expr(expr)
