"""Error and diagnostic types for the mini-C frontend.

Every frontend failure is reported through one of the exception classes in
this module so that callers (the analysis pipeline, the CLI and the tests)
can distinguish *where* in the frontend an input was rejected:

* :class:`LexerError` -- the raw character stream could not be tokenised.
* :class:`ParseError` -- the token stream is not a valid mini-C program.
* :class:`SemanticError` -- the program parses but violates static rules
  (unknown identifiers, type mismatches, duplicate declarations, ...).

All of them derive from :class:`MiniCError` and carry an optional
:class:`SourceLocation` that points at the offending place in the input.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in a mini-C source text.

    Attributes
    ----------
    line:
        1-based line number.
    column:
        1-based column number.
    filename:
        Name used in diagnostics; defaults to ``"<source>"`` for strings.
    """

    line: int = 0
    column: int = 0
    filename: str = "<source>"

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return f"{self.filename}:{self.line}:{self.column}"


class MiniCError(Exception):
    """Base class of all mini-C frontend errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexerError(MiniCError):
    """Raised when the lexer meets a character sequence it cannot tokenise."""


class ParseError(MiniCError):
    """Raised when the parser meets an unexpected token."""


class SemanticError(MiniCError):
    """Raised by semantic analysis (symbol resolution and type checking)."""
