"""Recursive-descent parser for mini-C.

The grammar is the structured subset of C that automotive code generators
emit::

    program        := (pragma | global-decl | function-def | prototype)*
    function-def   := type ident '(' params ')' compound
    global-decl    := type ident ('=' expr)? ';'
    statement      := compound | if | switch | while | do-while | for
                    | 'break' ';' | 'continue' ';' | 'return' expr? ';'
                    | declaration | expression ';' | ';'
    switch         := 'switch' '(' expr ')' '{' case* '}'
    case           := ('case' const ':')+ statement* 'break' ';'
                    | 'default' ':' statement* ('break' ';')?

Compound assignments and the ``++``/``--`` operators are desugared into plain
assignments, so later stages (CFG construction, translation to the transition
system) only deal with ``=``.

The parser also consumes the analysis pragmas documented in
:mod:`repro.minic.lexer` and records them on the resulting
:class:`~repro.minic.ast_nodes.Program`.
"""

from __future__ import annotations

from .ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    Parameter,
    Program,
    ReturnStmt,
    Stmt,
    SwitchCase,
    SwitchStmt,
    UnaryOp,
    WhileStmt,
    BINARY_PRECEDENCE,
)
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind
from .types import CType, IntRange, lookup_type

_TYPE_KEYWORDS = frozenset(
    {"void", "int", "char", "short", "long", "signed", "unsigned", "bool", "_Bool"}
)
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile", "static"})

#: Maximum binary-operator precedence + 1, used by the precedence climber.
_MAX_PRECEDENCE = max(BINARY_PRECEDENCE.values()) + 1


class Parser:
    """Parse a token stream into a :class:`Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0
        self._pending_loop_bound: int | None = None
        self._input_variables: list[str] = []
        self._range_annotations: dict[str, IntRange] = {}

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check_punct(self, spelling: str) -> bool:
        return self._peek().is_punct(spelling)

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _accept_punct(self, spelling: str) -> bool:
        if self._check_punct(spelling):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_punct(self, spelling: str) -> Token:
        token = self._peek()
        if not token.is_punct(spelling):
            raise ParseError(f"expected {spelling!r}, found {token.value!r}", token.location)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected keyword {word!r}, found {token.value!r}", token.location)
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.value!r}", token.location)
        return self._advance()

    # ------------------------------------------------------------------ #
    # pragmas
    # ------------------------------------------------------------------ #
    def _consume_pragmas(self) -> None:
        """Consume and interpret any pragma tokens at the current position."""
        while self._peek().kind is TokenKind.PRAGMA:
            token = self._advance()
            self._handle_pragma(str(token.value), token.location)

    def _handle_pragma(self, body: str, location: SourceLocation) -> None:
        parts = body.replace("(", " ").replace(")", " ").replace(",", " ").split()
        if not parts:
            return
        head = parts[0]
        if head == "loopbound":
            if len(parts) != 2 or not _is_int(parts[1]):
                raise ParseError(f"malformed loopbound pragma: {body!r}", location)
            self._pending_loop_bound = int(parts[1])
        elif head == "input":
            if len(parts) < 2:
                raise ParseError(f"malformed input pragma: {body!r}", location)
            for name in parts[1:]:
                if name not in self._input_variables:
                    self._input_variables.append(name)
        elif head == "range":
            if len(parts) != 4 or not (_is_int(parts[2]) and _is_int(parts[3])):
                raise ParseError(f"malformed range pragma: {body!r}", location)
            self._range_annotations[parts[1]] = IntRange(int(parts[2]), int(parts[3]))
        # unknown pragmas are silently ignored (like a C compiler would)

    def _take_loop_bound(self) -> int | None:
        bound = self._pending_loop_bound
        self._pending_loop_bound = None
        return bound

    # ------------------------------------------------------------------ #
    # types
    # ------------------------------------------------------------------ #
    def _at_type(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and (
            token.value in _TYPE_KEYWORDS or token.value in _QUALIFIER_KEYWORDS
        ):
            return True
        if token.kind is TokenKind.IDENT and lookup_type(str(token.value)) is not None:
            # A typedef-style name (Int16, UInt8, ...) is only a type if it is
            # followed by an identifier -- otherwise it is a plain variable use.
            nxt = self._peek(1)
            return nxt.kind is TokenKind.IDENT
        return False

    def _parse_type(self) -> CType:
        token = self._peek()
        words: list[str] = []
        while True:
            token = self._peek()
            if token.kind is TokenKind.KEYWORD and token.value in _QUALIFIER_KEYWORDS:
                self._advance()
                continue
            if token.kind is TokenKind.KEYWORD and token.value in _TYPE_KEYWORDS:
                words.append(str(self._advance().value))
                continue
            break
        if not words:
            token = self._peek()
            if token.kind is TokenKind.IDENT and lookup_type(str(token.value)) is not None:
                words.append(str(self._advance().value))
        spelling = " ".join(words)
        ctype = lookup_type(spelling)
        if ctype is None:
            raise ParseError(f"unknown type {spelling!r}", token.location)
        return ctype

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #
    def parse_program(self) -> Program:
        program = Program()
        self._consume_pragmas()
        while self._peek().kind is not TokenKind.EOF:
            location = self._peek().location
            ctype = self._parse_type()
            name_token = self._expect_identifier()
            name = str(name_token.value)
            if self._check_punct("("):
                item = self._parse_function_or_prototype(ctype, name, location)
                if item is not None:
                    program.functions.append(item)
                else:
                    if name not in program.external_functions:
                        program.external_functions.append(name)
            else:
                program.globals.extend(self._parse_global_tail(ctype, name, location))
            self._consume_pragmas()
        program.input_variables = list(self._input_variables)
        program.range_annotations = dict(self._range_annotations)
        self._apply_annotations(program)
        return program

    def _apply_annotations(self, program: Program) -> None:
        global_names = {decl.name for decl in program.globals}
        for decl in program.globals:
            if decl.name in self._input_variables:
                decl.is_input = True
            if decl.name in self._range_annotations:
                decl.declared_range = self._range_annotations[decl.name]
        for name in self._input_variables:
            if name not in global_names:
                raise ParseError(f"#pragma input names unknown global {name!r}")

    def _parse_global_tail(
        self, ctype: CType, first_name: str, location: SourceLocation
    ) -> list[GlobalDecl]:
        """Parse the remainder of ``type name [= init] (, name [= init])* ;``."""
        decls: list[GlobalDecl] = []
        name = first_name
        while True:
            init: Expr | None = None
            if self._accept_punct("="):
                init = self._parse_assignment_expr()
            decls.append(GlobalDecl(name=name, var_type=ctype, init=init, location=location))
            if self._accept_punct(","):
                name = str(self._expect_identifier().value)
                continue
            self._expect_punct(";")
            return decls

    def _parse_function_or_prototype(
        self, return_type: CType, name: str, location: SourceLocation
    ) -> FunctionDef | None:
        """Parse a parameter list followed by either a body or ``;``."""
        self._expect_punct("(")
        params: list[Parameter] = []
        if not self._check_punct(")"):
            if self._check_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    param_loc = self._peek().location
                    param_type = self._parse_type()
                    param_name = str(self._expect_identifier().value)
                    params.append(
                        Parameter(name=param_name, param_type=param_type, location=param_loc)
                    )
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return None  # prototype of an external function
        body = self._parse_compound()
        return FunctionDef(
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            location=location,
        )

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _parse_compound(self) -> CompoundStmt:
        start = self._expect_punct("{")
        statements: list[Stmt] = []
        self._consume_pragmas()
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", start.location)
            statements.append(self._parse_statement())
            self._consume_pragmas()
        self._expect_punct("}")
        return CompoundStmt(statements=statements, location=start.location)

    def _parse_statement(self) -> Stmt:
        self._consume_pragmas()
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_compound()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return BreakStmt(location=token.location)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ContinueStmt(location=token.location)
        if token.is_keyword("return"):
            self._advance()
            value = None if self._check_punct(";") else self._parse_expression()
            self._expect_punct(";")
            return ReturnStmt(value=value, location=token.location)
        if token.is_punct(";"):
            self._advance()
            return EmptyStmt(location=token.location)
        if self._at_type():
            return self._parse_declaration()
        expr = self._parse_expression()
        self._expect_punct(";")
        return ExprStmt(expr=expr, location=token.location)

    def _parse_declaration(self) -> Stmt:
        location = self._peek().location
        ctype = self._parse_type()
        name = str(self._expect_identifier().value)
        init: Expr | None = None
        if self._accept_punct("="):
            init = self._parse_assignment_expr()
        decls: list[DeclStmt] = [
            DeclStmt(name=name, var_type=ctype, init=init, location=location)
        ]
        while self._accept_punct(","):
            extra_loc = self._peek().location
            extra_name = str(self._expect_identifier().value)
            extra_init: Expr | None = None
            if self._accept_punct("="):
                extra_init = self._parse_assignment_expr()
            decls.append(
                DeclStmt(name=extra_name, var_type=ctype, init=extra_init, location=extra_loc)
            )
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return CompoundStmt(statements=list(decls), location=location)

    def _parse_if(self) -> IfStmt:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then_branch = self._parse_statement()
        else_branch: Stmt | None = None
        if self._accept_keyword("else"):
            else_branch = self._parse_statement()
        return IfStmt(
            cond=cond, then_branch=then_branch, else_branch=else_branch, location=token.location
        )

    def _parse_switch(self) -> SwitchStmt:
        token = self._expect_keyword("switch")
        self._expect_punct("(")
        expr = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[SwitchCase] = []
        while not self._check_punct("}"):
            cases.append(self._parse_switch_case())
        self._expect_punct("}")
        return SwitchStmt(expr=expr, cases=cases, location=token.location)

    def _parse_switch_case(self) -> SwitchCase:
        token = self._peek()
        values: list[int] = []
        is_default = False
        while True:
            if self._accept_keyword("case"):
                values.append(self._parse_constant())
                self._expect_punct(":")
            elif self._accept_keyword("default"):
                is_default = True
                self._expect_punct(":")
            else:
                break
        if not values and not is_default:
            raise ParseError("expected 'case' or 'default' label", token.location)
        statements: list[Stmt] = []
        while True:
            self._consume_pragmas()
            if self._check_keyword("break"):
                self._advance()
                self._expect_punct(";")
                break
            if self._check_punct("}") or self._check_keyword("case") or self._check_keyword(
                "default"
            ):
                break
            statements.append(self._parse_statement())
        body = CompoundStmt(statements=statements, location=token.location)
        return SwitchCase(
            values=values, body=body, is_default=is_default, location=token.location
        )

    def _parse_constant(self) -> int:
        expr = self._parse_ternary_expr()
        value = _evaluate_constant(expr)
        if value is None:
            raise ParseError("case label must be a constant expression", expr.location)
        return value

    def _parse_while(self) -> WhileStmt:
        bound = self._take_loop_bound()
        token = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return WhileStmt(cond=cond, body=body, loop_bound=bound, location=token.location)

    def _parse_do_while(self) -> DoWhileStmt:
        bound = self._take_loop_bound()
        token = self._expect_keyword("do")
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoWhileStmt(body=body, cond=cond, loop_bound=bound, location=token.location)

    def _parse_for(self) -> ForStmt:
        bound = self._take_loop_bound()
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init: Stmt | None = None
        if not self._check_punct(";"):
            if self._at_type():
                init = self._parse_declaration()
            else:
                init = ExprStmt(expr=self._parse_expression(), location=self._peek().location)
                self._expect_punct(";")
        else:
            self._advance()
        if init is not None and isinstance(init, DeclStmt):
            pass
        if init is not None and not isinstance(init, (DeclStmt, CompoundStmt, ExprStmt)):
            raise ParseError("unsupported for-loop initialiser", token.location)
        if isinstance(init, ExprStmt):
            pass
        cond: Expr | None = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step: Expr | None = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ForStmt(
            init=init, cond=cond, step=step, body=body, loop_bound=bound, location=token.location
        )

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> Expr:
        return self._parse_assignment_expr()

    def _parse_assignment_expr(self) -> Expr:
        left = self._parse_ternary_expr()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and str(token.value).endswith("=") and str(
            token.value
        ) not in ("==", "!=", "<=", ">="):
            op = str(self._advance().value)
            right = self._parse_assignment_expr()
            if not isinstance(left, Identifier):
                raise ParseError("assignment target must be a variable", token.location)
            if op == "=":
                value = right
            else:
                value = BinaryOp(
                    op=op[:-1], left=Identifier(name=left.name, location=left.location),
                    right=right, location=token.location,
                )
            return AssignExpr(target=left, value=value, location=left.location)
        return left

    def _parse_ternary_expr(self) -> Expr:
        cond = self._parse_binary_expr(1)
        if self._accept_punct("?"):
            then = self._parse_assignment_expr()
            self._expect_punct(":")
            otherwise = self._parse_ternary_expr()
            return Conditional(cond=cond, then=then, otherwise=otherwise, location=cond.location)
        return cond

    def _parse_binary_expr(self, min_precedence: int) -> Expr:
        if min_precedence >= _MAX_PRECEDENCE:
            return self._parse_unary_expr()
        left = self._parse_binary_expr(min_precedence + 1)
        while True:
            token = self._peek()
            op = str(token.value) if token.kind is TokenKind.PUNCT else ""
            if BINARY_PRECEDENCE.get(op) != min_precedence:
                return left
            self._advance()
            right = self._parse_binary_expr(min_precedence + 1)
            left = BinaryOp(op=op, left=left, right=right, location=token.location)

    def _parse_unary_expr(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value in ("-", "+", "!", "~"):
            self._advance()
            operand = self._parse_unary_expr()
            return UnaryOp(op=str(token.value), operand=operand, location=token.location)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            operand = self._parse_unary_expr()
            if not isinstance(operand, Identifier):
                raise ParseError("++/-- target must be a variable", token.location)
            op = "+" if token.value == "++" else "-"
            return AssignExpr(
                target=operand,
                value=BinaryOp(
                    op=op,
                    left=Identifier(name=operand.name, location=operand.location),
                    right=IntLiteral(value=1, location=token.location),
                    location=token.location,
                ),
                location=token.location,
            )
        return self._parse_postfix_expr()

    def _parse_postfix_expr(self) -> Expr:
        expr = self._parse_primary_expr()
        while True:
            token = self._peek()
            if token.is_punct("++") or token.is_punct("--"):
                self._advance()
                if not isinstance(expr, Identifier):
                    raise ParseError("++/-- target must be a variable", token.location)
                op = "+" if token.value == "++" else "-"
                expr = AssignExpr(
                    target=expr,
                    value=BinaryOp(
                        op=op,
                        left=Identifier(name=expr.name, location=expr.location),
                        right=IntLiteral(value=1, location=token.location),
                        location=token.location,
                    ),
                    location=token.location,
                )
                continue
            return expr

    def _parse_primary_expr(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return IntLiteral(value=int(token.value), location=token.location)  # type: ignore[arg-type]
        if token.is_keyword("true"):
            self._advance()
            return BoolLiteral(value=True, location=token.location)
        if token.is_keyword("false"):
            self._advance()
            return BoolLiteral(value=False, location=token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = str(token.value)
            if self._check_punct("("):
                return self._parse_call(name, token.location)
            return Identifier(name=name, location=token.location)
        if token.is_punct("("):
            # Either a cast "(Int16) expr" or a parenthesised expression.
            nxt = self._peek(1)
            is_cast = False
            if nxt.kind is TokenKind.KEYWORD and nxt.value in _TYPE_KEYWORDS and nxt.value != "void":
                is_cast = True
            if (
                nxt.kind is TokenKind.IDENT
                and lookup_type(str(nxt.value)) is not None
                and self._peek(2).is_punct(")")
            ):
                is_cast = True
            if is_cast:
                self._advance()
                target_type = self._parse_type()
                self._expect_punct(")")
                operand = self._parse_unary_expr()
                return CastExpr(target_type=target_type, operand=operand, location=token.location)
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.value!r} in expression", token.location)

    def _parse_call(self, name: str, location: SourceLocation) -> CallExpr:
        self._expect_punct("(")
        args: list[Expr] = []
        if not self._check_punct(")"):
            while True:
                args.append(self._parse_assignment_expr())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return CallExpr(name=name, args=args, location=location)


# --------------------------------------------------------------------------- #
# helpers and public API
# --------------------------------------------------------------------------- #
def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


def _evaluate_constant(expr: Expr) -> int | None:
    """Best-effort compile-time evaluation used for case labels."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return int(expr.value)
    if isinstance(expr, UnaryOp):
        value = _evaluate_constant(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "!":
            return int(value == 0)
        if expr.op == "~":
            return ~value
    if isinstance(expr, BinaryOp):
        left = _evaluate_constant(expr.left)
        right = _evaluate_constant(expr.right)
        if left is None or right is None:
            return None
        try:
            return _APPLY_CONST[expr.op](left, right)
        except (KeyError, ZeroDivisionError):
            return None
    return None


_APPLY_CONST = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: int(a / b) if b != 0 else None,
    "%": lambda a, b: a - int(a / b) * b if b != 0 else None,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def parse_program(source: str, filename: str = "<source>") -> Program:
    """Parse mini-C *source* text into an (unchecked) AST."""
    return Parser(tokenize(source, filename)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single expression -- convenient for tests and the REPL."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expression()
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input after expression: {token.value!r}", token.location)
    return expr
