"""Hand-written lexer for mini-C.

The lexer turns a source string into a list of :class:`~repro.minic.tokens.Token`
objects.  It supports:

* decimal, hexadecimal (``0x``) and octal (``0...``) integer literals with
  optional ``u``/``U``/``l``/``L`` suffixes,
* character literals (mapped to their integer code),
* ``//`` line comments and ``/* */`` block comments,
* the frontend pragmas used by the WCET tooling::

      #pragma loopbound(8)        /* max iteration count of the next loop   */
      #pragma input x             /* x is an analysis input (free variable) */
      #pragma range x 0 10        /* value range annotation for variable x  */

  Pragma lines become :class:`TokenKind.PRAGMA` tokens carrying the raw body;
  any other preprocessor-style line (``#include``, ``#define`` of constants)
  is ignored so that TargetLink-style sources can be fed in unmodified.
"""

from __future__ import annotations

from .errors import LexerError, SourceLocation
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
}


class Lexer:
    """Tokenise a mini-C source string."""

    def __init__(self, source: str, filename: str = "<source>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def tokenize(self) -> list[Token]:
        """Return the full token list, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------ #
    # scanning helpers
    # ------------------------------------------------------------------ #
    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n\f\v":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise LexerError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
                continue
            return

    # ------------------------------------------------------------------ #
    # token scanners
    # ------------------------------------------------------------------ #
    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        location = self._location()
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, None, location)
        if ch == "#":
            return self._scan_directive(location)
        if ch in _IDENT_START:
            return self._scan_identifier(location)
        if ch in _DIGITS:
            return self._scan_number(location)
        if ch == "'":
            return self._scan_char(location)
        for punct in PUNCTUATORS:
            if self._source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, location)
        raise LexerError(f"unexpected character {ch!r}", location)

    def _scan_directive(self, location: SourceLocation) -> Token:
        line_chars: list[str] = []
        while self._peek() and self._peek() != "\n":
            line_chars.append(self._advance())
        line = "".join(line_chars).strip()
        if line.startswith("#pragma"):
            body = line[len("#pragma") :].strip()
            return Token(TokenKind.PRAGMA, body, location)
        # #include / #define / other directives are ignored entirely.
        return self._next_token()

    def _scan_identifier(self, location: SourceLocation) -> Token:
        chars: list[str] = []
        while self._peek() in _IDENT_CONT and self._peek():
            chars.append(self._advance())
        text = "".join(chars)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, location)

    def _scan_number(self, location: SourceLocation) -> Token:
        chars: list[str] = []
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            chars.append(self._advance(2))
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                chars.append(self._advance())
            text = "".join(chars)
            if len(text) == 2:
                raise LexerError("malformed hexadecimal literal", location)
            value = int(text, 16)
        else:
            while self._peek() in _DIGITS and self._peek():
                chars.append(self._advance())
            text = "".join(chars)
            if text.startswith("0") and len(text) > 1:
                try:
                    value = int(text, 8)
                except ValueError as exc:
                    raise LexerError(f"malformed octal literal {text!r}", location) from exc
            else:
                value = int(text, 10)
        # swallow integer suffixes
        while self._peek() in "uUlL" and self._peek():
            self._advance()
        if self._peek() in _IDENT_START and self._peek():
            raise LexerError("identifier immediately after number literal", location)
        return Token(TokenKind.NUMBER, value, location)

    def _scan_char(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if not ch:
            raise LexerError("unterminated character literal", location)
        if ch == "\\":
            self._advance()
            escape = self._advance()
            if escape not in _ESCAPES:
                raise LexerError(f"unknown escape sequence \\{escape}", location)
            value = _ESCAPES[escape]
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise LexerError("unterminated character literal", location)
        self._advance()
        return Token(TokenKind.NUMBER, value, location)


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Convenience wrapper: tokenise *source* and return the token list."""
    return Lexer(source, filename).tokenize()
