"""Mini-C frontend: lexer, parser, semantic analysis and pretty printing.

This package implements the structured C subset that automotive code
generators (dSpace TargetLink in the paper) emit, which is the input language
of the WCET analysis.  The most common entry points are:

>>> from repro.minic import parse, parse_and_analyze
>>> program = parse("void f(void) { int x; x = 1; }")
>>> analyzed = parse_and_analyze("void f(void) { int x; x = 1; }")
"""

from __future__ import annotations

from . import ast_nodes as ast
from .ast_nodes import Program
from .calls import call_sites, called_names
from .errors import LexerError, MiniCError, ParseError, SemanticError, SourceLocation
from .folding import fold_expr
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expression, parse_program
from .pretty import PrettyPrinter, print_expression, print_program, print_statement
from .semantic import AnalyzedProgram, analyze_program
from .symbols import FunctionSymbolTable, Scope, Symbol, SymbolKind
from .types import (
    BOOL,
    INT8,
    INT16,
    INT32,
    SCALAR_TYPES,
    UINT8,
    UINT16,
    UINT32,
    VOID,
    CType,
    IntRange,
    common_type,
    lookup_type,
)

__all__ = [
    "ast",
    "Program",
    "call_sites",
    "called_names",
    "LexerError",
    "MiniCError",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "fold_expr",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "PrettyPrinter",
    "print_expression",
    "print_program",
    "print_statement",
    "AnalyzedProgram",
    "analyze_program",
    "FunctionSymbolTable",
    "Scope",
    "Symbol",
    "SymbolKind",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "UINT8",
    "UINT16",
    "UINT32",
    "VOID",
    "SCALAR_TYPES",
    "CType",
    "IntRange",
    "common_type",
    "lookup_type",
    "parse",
    "parse_and_analyze",
]


def parse(source: str, filename: str = "<source>") -> Program:
    """Parse mini-C source text into an AST (no semantic checks)."""
    return parse_program(source, filename)


def parse_and_analyze(source: str, filename: str = "<source>") -> AnalyzedProgram:
    """Parse and semantically analyse mini-C source text."""
    return analyze_program(parse_program(source, filename))
