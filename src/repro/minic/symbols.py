"""Symbol tables for mini-C semantic analysis.

A :class:`Scope` maps names to :class:`Symbol` entries; scopes nest (function
scope inside file scope, block scopes inside function scope).  The analysis
pipeline mostly needs a *flat* view of every variable in a function --
generated automotive code declares everything at the top of the function --
but proper scoping is implemented so hand-written test programs behave like C.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .ast_nodes import FunctionDef, GlobalDecl, Node
from .errors import SemanticError
from .types import CType, IntRange


class SymbolKind(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"
    PARAMETER = "parameter"
    FUNCTION = "function"


@dataclass
class Symbol:
    """A named entity (variable or function)."""

    name: str
    kind: SymbolKind
    ctype: CType
    decl: Node | None = None
    is_input: bool = False
    declared_range: IntRange | None = None
    #: For functions: parameter types (None for unknown/external functions).
    param_types: list[CType] | None = None

    @property
    def is_variable(self) -> bool:
        return self.kind is not SymbolKind.FUNCTION


@dataclass
class Scope:
    """A lexical scope."""

    parent: "Scope | None" = None
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def declare(self, symbol: Symbol) -> Symbol:
        if symbol.name in self.symbols:
            raise SemanticError(
                f"duplicate declaration of {symbol.name!r}",
                getattr(symbol.decl, "location", None),
            )
        self.symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(parent=self)


@dataclass
class FunctionSymbolTable:
    """Flat per-function view produced by semantic analysis.

    Attributes
    ----------
    function:
        The analysed function definition.
    variables:
        Every variable visible in the function (globals, parameters and
        locals), keyed by name.  Generated control code has unique names, so
        a flat map is unambiguous; shadowing raises a
        :class:`~repro.minic.errors.SemanticError` during analysis.
    inputs:
        Names of the analysis input variables (``#pragma input`` globals plus
        all function parameters).
    """

    function: FunctionDef
    variables: dict[str, Symbol] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)
    called_functions: list[str] = field(default_factory=list)

    def variable(self, name: str) -> Symbol:
        try:
            return self.variables[name]
        except KeyError as exc:
            raise SemanticError(f"unknown variable {name!r}") from exc

    def input_symbols(self) -> list[Symbol]:
        return [self.variables[name] for name in self.inputs]


def build_global_scope(
    globals_: list[GlobalDecl], functions: list[FunctionDef], externals: list[str]
) -> Scope:
    """Create the file scope containing globals and function names."""
    scope = Scope()
    for decl in globals_:
        scope.declare(
            Symbol(
                name=decl.name,
                kind=SymbolKind.GLOBAL,
                ctype=decl.var_type,
                decl=decl,
                is_input=decl.is_input,
                declared_range=decl.declared_range,
            )
        )
    for func in functions:
        scope.declare(
            Symbol(
                name=func.name,
                kind=SymbolKind.FUNCTION,
                ctype=func.return_type,
                decl=func,
                param_types=[p.param_type for p in func.params],
            )
        )
    for name in externals:
        if scope.lookup(name) is None:
            from .types import VOID

            scope.declare(Symbol(name=name, kind=SymbolKind.FUNCTION, ctype=VOID))
    return scope
