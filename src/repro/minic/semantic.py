"""Semantic analysis (name resolution and type checking) for mini-C.

:func:`analyze_program` walks a parsed :class:`~repro.minic.ast_nodes.Program`
and

* resolves every identifier against the symbol tables,
* rejects duplicate declarations, shadowing and uses of undeclared names,
* assigns a :class:`~repro.minic.types.CType` to every expression
  (``expr.ctype``) using simplified C conversion rules,
* checks that conditions are scalar, case labels fit the switch operand type
  and are pairwise distinct, assignments target variables, and calls to known
  functions pass the right number of arguments, and
* produces a :class:`~repro.minic.symbols.FunctionSymbolTable` per function,
  which downstream stages (CFG builder, transition-system translator,
  interpreter, test-data generator) use as the authoritative variable list.

Calls to *unknown* functions (``printf1()``) are accepted and treated as
external, side-effect-free-for-data, void functions -- exactly how the paper's
tooling treats library calls whose timing is measured but whose semantics do
not influence the analysed control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Identifier,
    IfStmt,
    IntLiteral,
    Program,
    ReturnStmt,
    Stmt,
    SwitchStmt,
    UnaryOp,
    WhileStmt,
    RELATIONAL_OPERATORS,
)
from .errors import SemanticError
from .symbols import (
    FunctionSymbolTable,
    Scope,
    Symbol,
    SymbolKind,
    build_global_scope,
)
from .types import BOOL, INT16, VOID, CType, common_type


@dataclass
class AnalyzedProgram:
    """Result of semantic analysis.

    Attributes
    ----------
    program:
        The (mutated in place: ``ctype`` fields filled) AST.
    global_scope:
        File-scope symbol table.
    function_tables:
        Per-function flat symbol tables keyed by function name.
    """

    program: Program
    global_scope: Scope
    function_tables: dict[str, FunctionSymbolTable] = field(default_factory=dict)

    def table(self, name: str) -> FunctionSymbolTable:
        try:
            return self.function_tables[name]
        except KeyError as exc:
            raise SemanticError(f"no analysed function named {name!r}") from exc


class _FunctionChecker:
    """Type checks one function body."""

    def __init__(self, analyzer: "_Analyzer", function: FunctionDef):
        self._analyzer = analyzer
        self._function = function
        self._scope = analyzer.global_scope.child()
        self._loop_depth = 0
        self._switch_depth = 0
        self.table = FunctionSymbolTable(function=function)
        # Globals are part of the flat variable view.
        for symbol in analyzer.global_scope.symbols.values():
            if symbol.is_variable:
                self.table.variables[symbol.name] = symbol
                if symbol.is_input:
                    self.table.inputs.append(symbol.name)

    # ------------------------------------------------------------------ #
    def check(self) -> FunctionSymbolTable:
        for param in self._function.params:
            symbol = Symbol(
                name=param.name,
                kind=SymbolKind.PARAMETER,
                ctype=param.param_type,
                decl=param,
                is_input=True,
            )
            self._declare(symbol)
        self._check_stmt(self._function.body, self._scope)
        return self.table

    def _declare(self, symbol: Symbol) -> None:
        if symbol.name in self.table.variables:
            raise SemanticError(
                f"declaration of {symbol.name!r} shadows an existing variable",
                getattr(symbol.decl, "location", None),
            )
        self._scope.declare(symbol)
        self.table.variables[symbol.name] = symbol
        if symbol.is_input and symbol.name not in self.table.inputs:
            self.table.inputs.append(symbol.name)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _check_stmt(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, CompoundStmt):
            inner = scope.child()
            for child in stmt.statements:
                self._check_stmt(child, inner)
        elif isinstance(stmt, DeclStmt):
            if stmt.var_type is VOID:
                raise SemanticError(f"variable {stmt.name!r} declared void", stmt.location)
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
            declared_range = self._analyzer.program.range_annotations.get(stmt.name)
            symbol = Symbol(
                name=stmt.name,
                kind=SymbolKind.LOCAL,
                ctype=stmt.var_type,
                decl=stmt,
                is_input=stmt.name in self._analyzer.program.input_variables,
                declared_range=declared_range,
            )
            # declare in the *flat* table but the nested scope governs lookup
            if symbol.name in self.table.variables:
                raise SemanticError(
                    f"declaration of {symbol.name!r} shadows an existing variable",
                    stmt.location,
                )
            scope.declare(symbol)
            self.table.variables[symbol.name] = symbol
            if symbol.is_input:
                self.table.inputs.append(symbol.name)
        elif isinstance(stmt, ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, IfStmt):
            self._check_condition(stmt.cond, scope)
            self._check_stmt(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch, scope)
        elif isinstance(stmt, SwitchStmt):
            ctype = self._check_expr(stmt.expr, scope)
            if ctype.is_void:
                raise SemanticError("switch operand must be scalar", stmt.location)
            seen: set[int] = set()
            defaults = 0
            for case in stmt.cases:
                for value in case.values:
                    wrapped = ctype.wrap(value) if not ctype.is_bool else int(bool(value))
                    if wrapped in seen:
                        raise SemanticError(
                            f"duplicate case label {value}", case.location
                        )
                    seen.add(wrapped)
                if case.is_default:
                    defaults += 1
                self._switch_depth += 1
                self._check_stmt(case.body, scope)
                self._switch_depth -= 1
            if defaults > 1:
                raise SemanticError("multiple default labels in switch", stmt.location)
        elif isinstance(stmt, WhileStmt):
            self._check_condition(stmt.cond, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, DoWhileStmt):
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
            self._check_condition(stmt.cond, scope)
        elif isinstance(stmt, ForStmt):
            inner = scope.child()
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, BreakStmt):
            if self._loop_depth == 0 and self._switch_depth == 0:
                raise SemanticError("'break' outside loop or switch", stmt.location)
        elif isinstance(stmt, ContinueStmt):
            if self._loop_depth == 0:
                raise SemanticError("'continue' outside loop", stmt.location)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                if self._function.return_type.is_void:
                    raise SemanticError(
                        "void function returns a value", stmt.location
                    )
                self._check_expr(stmt.value, scope)
            elif not self._function.return_type.is_void:
                raise SemanticError(
                    "non-void function returns without a value", stmt.location
                )
        elif isinstance(stmt, EmptyStmt):
            pass
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unsupported statement {type(stmt).__name__}", stmt.location)

    def _check_condition(self, expr: Expr, scope: Scope) -> None:
        ctype = self._check_expr(expr, scope)
        if ctype.is_void:
            raise SemanticError("condition must be scalar", expr.location)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _check_expr(self, expr: Expr, scope: Scope) -> CType:
        ctype = self._infer_type(expr, scope)
        expr.ctype = ctype
        return ctype

    def _infer_type(self, expr: Expr, scope: Scope) -> CType:
        if isinstance(expr, IntLiteral):
            return INT16 if -(1 << 15) <= expr.value < (1 << 15) else common_type(INT16, INT16)
        if isinstance(expr, BoolLiteral):
            return BOOL
        if isinstance(expr, Identifier):
            symbol = scope.lookup(expr.name)
            if symbol is None or not symbol.is_variable:
                raise SemanticError(f"use of undeclared variable {expr.name!r}", expr.location)
            return symbol.ctype
        if isinstance(expr, UnaryOp):
            operand = self._check_expr(expr.operand, scope)
            if operand.is_void:
                raise SemanticError("void operand", expr.location)
            if expr.op == "!":
                return BOOL
            return common_type(operand, operand)
        if isinstance(expr, BinaryOp):
            left = self._check_expr(expr.left, scope)
            right = self._check_expr(expr.right, scope)
            if left.is_void or right.is_void:
                raise SemanticError("void operand in binary expression", expr.location)
            if expr.op in RELATIONAL_OPERATORS:
                return BOOL
            return common_type(left, right)
        if isinstance(expr, Conditional):
            self._check_condition(expr.cond, scope)
            then = self._check_expr(expr.then, scope)
            otherwise = self._check_expr(expr.otherwise, scope)
            return common_type(then, otherwise)
        if isinstance(expr, AssignExpr):
            symbol = scope.lookup(expr.target.name)
            if symbol is None or not symbol.is_variable:
                raise SemanticError(
                    f"assignment to undeclared variable {expr.target.name!r}", expr.location
                )
            expr.target.ctype = symbol.ctype
            self._check_expr(expr.value, scope)
            return symbol.ctype
        if isinstance(expr, CastExpr):
            self._check_expr(expr.operand, scope)
            if expr.target_type.is_void:
                raise SemanticError("cast to void is not supported", expr.location)
            return expr.target_type
        if isinstance(expr, CallExpr):
            symbol = self._analyzer.global_scope.lookup(expr.name)
            for arg in expr.args:
                self._check_expr(arg, scope)
            if expr.name not in self.table.called_functions:
                self.table.called_functions.append(expr.name)
            if symbol is None or symbol.kind is not SymbolKind.FUNCTION:
                # unknown external function: void result, any arguments
                self._analyzer.external_calls.add(expr.name)
                return VOID
            if symbol.param_types is not None and len(symbol.param_types) != len(expr.args):
                raise SemanticError(
                    f"call to {expr.name!r} with {len(expr.args)} arguments, "
                    f"expected {len(symbol.param_types)}",
                    expr.location,
                )
            return symbol.ctype
        raise SemanticError(f"unsupported expression {type(expr).__name__}", expr.location)


class _Analyzer:
    def __init__(self, program: Program):
        self.program = program
        self.global_scope = build_global_scope(
            program.globals, program.functions, program.external_functions
        )
        self.external_calls: set[str] = set()

    def run(self) -> AnalyzedProgram:
        result = AnalyzedProgram(program=self.program, global_scope=self.global_scope)
        for decl in self.program.globals:
            if decl.var_type.is_void:
                raise SemanticError(f"global {decl.name!r} declared void", decl.location)
            if decl.init is not None:
                checker = _FunctionChecker(
                    self, FunctionDef(name="<global-init>", return_type=VOID, params=[],
                                      body=CompoundStmt(statements=[]))
                )
                checker._check_expr(decl.init, self.global_scope)
        for function in self.program.functions:
            checker = _FunctionChecker(self, function)
            result.function_tables[function.name] = checker.check()
        for name in sorted(self.external_calls):
            if name not in self.program.external_functions:
                self.program.external_functions.append(name)
        return result


def analyze_program(program: Program) -> AnalyzedProgram:
    """Run semantic analysis on *program* and return the analysed view."""
    return _Analyzer(program).run()
