"""Constant folding and expression utilities shared by later stages.

Folding is used by:

* the variable-range analysis (tight literal bounds),
* the transition-system translator (smaller guard expressions),
* the reverse-CSE optimisation (substituted expressions are re-folded), and
* the interpreter (pre-simplified expressions execute in fewer steps).

Folding never changes observable semantics: arithmetic respects mini-C
wrap-around only when a result type is known, otherwise the fold is skipped.
"""

from __future__ import annotations

from .ast_nodes import (
    AssignExpr,
    BinaryOp,
    BoolLiteral,
    CallExpr,
    CastExpr,
    Conditional,
    Expr,
    Identifier,
    IntLiteral,
    UnaryOp,
    RELATIONAL_OPERATORS,
)
from .types import BOOL, CType, INT16


def _as_int(expr: Expr) -> int | None:
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return int(expr.value)
    return None


def apply_binary(op: str, left: int, right: int) -> int:
    """Apply a mini-C binary operator to Python integers (C semantics).

    Division and modulo truncate toward zero like C; logical operators return
    0/1.  ``ZeroDivisionError`` propagates to the caller, which either reports
    a runtime error (interpreter) or skips the fold.
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ZeroDivisionError("division by zero")
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    if op == "%":
        if right == 0:
            raise ZeroDivisionError("modulo by zero")
        return left - apply_binary("/", left, right) * right
    if op == "<<":
        return left << (right & 31)
    if op == ">>":
        return left >> (right & 31)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise ValueError(f"unknown binary operator {op!r}")


def apply_unary(op: str, value: int) -> int:
    """Apply a mini-C unary operator."""
    if op == "-":
        return -value
    if op == "+":
        return value
    if op == "!":
        return int(value == 0)
    if op == "~":
        return ~value
    raise ValueError(f"unknown unary operator {op!r}")


def _literal(value: int, ctype: CType | None, template: Expr) -> Expr:
    if ctype is not None and ctype.is_bool:
        return BoolLiteral(value=bool(value), location=template.location, ctype=BOOL)
    result_type = ctype if ctype is not None else INT16
    return IntLiteral(
        value=result_type.wrap(value), location=template.location, ctype=result_type
    )


def fold_expr(expr: Expr) -> Expr:
    """Return a constant-folded copy of *expr* (original left untouched)."""
    if isinstance(expr, (IntLiteral, BoolLiteral, Identifier)):
        return expr
    if isinstance(expr, UnaryOp):
        operand = fold_expr(expr.operand)
        value = _as_int(operand)
        if value is not None:
            try:
                result = apply_unary(expr.op, value)
            except ValueError:
                return UnaryOp(op=expr.op, operand=operand, location=expr.location,
                               ctype=expr.ctype)
            result_type = BOOL if expr.op == "!" else expr.ctype
            return _literal(result, result_type, expr)
        return UnaryOp(op=expr.op, operand=operand, location=expr.location, ctype=expr.ctype)
    if isinstance(expr, BinaryOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        lval = _as_int(left)
        rval = _as_int(right)
        if lval is not None and rval is not None:
            try:
                result = apply_binary(expr.op, lval, rval)
            except (ZeroDivisionError, ValueError):
                return BinaryOp(op=expr.op, left=left, right=right,
                                location=expr.location, ctype=expr.ctype)
            result_type = BOOL if expr.op in RELATIONAL_OPERATORS else expr.ctype
            return _literal(result, result_type, expr)
        # algebraic identities that never change semantics
        if expr.op == "&&":
            if lval == 0 or rval == 0:
                return _literal(0, BOOL, expr)
            if lval is not None and lval != 0:
                return _to_bool(right, expr)
        if expr.op == "||":
            if lval is not None and lval != 0:
                return _literal(1, BOOL, expr)
            if rval is not None and rval != 0 and _is_pure(left):
                return _literal(1, BOOL, expr)
            if lval == 0:
                return _to_bool(right, expr)
        if expr.op == "+" and rval == 0:
            return left
        if expr.op == "+" and lval == 0:
            return right
        if expr.op == "-" and rval == 0:
            return left
        if expr.op == "*" and (rval == 1):
            return left
        if expr.op == "*" and (lval == 1):
            return right
        return BinaryOp(op=expr.op, left=left, right=right, location=expr.location,
                        ctype=expr.ctype)
    if isinstance(expr, Conditional):
        cond = fold_expr(expr.cond)
        cval = _as_int(cond)
        if cval is not None:
            return fold_expr(expr.then if cval != 0 else expr.otherwise)
        return Conditional(
            cond=cond, then=fold_expr(expr.then), otherwise=fold_expr(expr.otherwise),
            location=expr.location, ctype=expr.ctype,
        )
    if isinstance(expr, AssignExpr):
        return AssignExpr(
            target=expr.target, value=fold_expr(expr.value),
            location=expr.location, ctype=expr.ctype,
        )
    if isinstance(expr, CastExpr):
        operand = fold_expr(expr.operand)
        value = _as_int(operand)
        if value is not None:
            return _literal(value, expr.target_type, expr)
        return CastExpr(target_type=expr.target_type, operand=operand,
                        location=expr.location, ctype=expr.ctype)
    if isinstance(expr, CallExpr):
        return CallExpr(
            name=expr.name, args=[fold_expr(a) for a in expr.args],
            location=expr.location, ctype=expr.ctype,
        )
    return expr


def _to_bool(expr: Expr, template: Expr) -> Expr:
    """Normalise *expr* to a boolean-valued expression."""
    if isinstance(expr, (BoolLiteral,)):
        return expr
    value = _as_int(expr)
    if value is not None:
        return _literal(int(value != 0), BOOL, template)
    if isinstance(expr, BinaryOp) and expr.op in RELATIONAL_OPERATORS:
        return expr
    return BinaryOp(op="!=", left=expr, right=IntLiteral(value=0, ctype=INT16),
                    location=template.location, ctype=BOOL)


def _is_pure(expr: Expr) -> bool:
    """True when evaluating *expr* has no side effects."""
    if isinstance(expr, (AssignExpr, CallExpr)):
        return False
    return all(_is_pure(child) for child in expr.children()  # type: ignore[arg-type]
               if isinstance(child, Expr))


def expression_variables(expr: Expr) -> set[str]:
    """The set of variable names read by *expr*.

    Assignment targets are *not* counted as reads (the value expression is).
    """
    names: set[str] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, Identifier):
            names.add(node.name)
            return
        if isinstance(node, AssignExpr):
            visit(node.value)
            return
        for child in node.children():
            if isinstance(child, Expr):
                visit(child)

    visit(expr)
    return names


def assigned_variables(expr: Expr) -> set[str]:
    """The set of variable names written by *expr* (nested assignments too)."""
    names: set[str] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, AssignExpr):
            names.add(node.target.name)
            visit(node.value)
            return
        for child in node.children():
            if isinstance(child, Expr):
                visit(child)

    visit(expr)
    return names


def has_calls(expr: Expr) -> bool:
    """True when *expr* contains a function call."""
    if isinstance(expr, CallExpr):
        return True
    return any(has_calls(child) for child in expr.children() if isinstance(child, Expr))


def expression_size(expr: Expr) -> int:
    """Number of AST nodes in *expr* (a proxy for evaluation cost)."""
    return 1 + sum(
        expression_size(child) for child in expr.children() if isinstance(child, Expr)
    )
