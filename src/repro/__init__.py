"""repro -- measurement-based WCET analysis by CFG partitioning and model checking.

A from-scratch reproduction of

    I. Wenzel, B. Rieder, R. Kirner, P. Puschner:
    "Automatic Timing Model Generation by CFG Partitioning and Model
    Checking", DATE 2005.

The package is organised in layers (see ``DESIGN.md`` for the full map):

``repro.minic``
    frontend for the structured C subset produced by automotive code
    generators (lexer, parser, type checker, pretty printer).
``repro.cfg``
    control-flow graphs, path counting and graph utilities.
``repro.partition``
    the paper's core contribution: hierarchical partitioning of the CFG into
    program segments under a path bound *b*, instrumentation-point placement
    and the instrumentation/measurement cost model.
``repro.analysis``
    dataflow analyses (liveness, reaching definitions, value ranges, control
    dependence) shared by the optimisations.
``repro.transsys`` / ``repro.optim`` / ``repro.solver`` / ``repro.mc``
    the "C to SAL" translation, the six state-space optimisations of the
    paper, a finite-domain constraint solver and the model-checking engines
    used for test-data generation.
``repro.testgen``
    hybrid test-data generation: genetic algorithm first, model checking for
    the remaining paths, infeasibility detection.
``repro.hw`` / ``repro.measurement`` / ``repro.wcet``
    the HCS12-style execution-time substrate, instrumented measurement runs
    and the timing-schema WCET bound computation.
``repro.codegen`` / ``repro.workloads``
    a TargetLink-like Stateflow code generator and the paper's workloads
    (Figure 1 example, optimisation-evaluation program, wiper-control case
    study, synthetic industrial-size applications).
``repro.pipeline``
    the end-to-end ``WcetAnalyzer`` tying everything together, plus the CLI.
"""

from __future__ import annotations

__version__ = "0.1.0"

__all__ = ["__version__"]
