"""TargetLink-like code generation from Stateflow-style charts."""

from __future__ import annotations

from .chart import (
    ChartError,
    ChartState,
    ChartTransition,
    ChartVariable,
    StateflowChart,
)
from .generator import GeneratedCode, TargetLinkCodeGenerator, generate_chart_code

__all__ = [
    "ChartError",
    "ChartState",
    "ChartTransition",
    "ChartVariable",
    "StateflowChart",
    "GeneratedCode",
    "TargetLinkCodeGenerator",
    "generate_chart_code",
]
