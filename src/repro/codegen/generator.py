"""TargetLink-style C code generation from Stateflow charts.

The generator emits the same *shape* of code dSpace TargetLink produces for a
chart: one step function whose body is a ``switch`` over the state variable,
one ``case`` block per state containing the prioritised transition logic as
nested ``if``/``else`` statements, fixed-width integer typedefs, and the
chart's inputs/outputs as file-scope variables.  The paper's case study
("Basically, the code consists of nested switch and if statements") and its
partitioning choice ("each case block equals one PS") rely exactly on this
structure.

Analysis annotations (``#pragma input``/``#pragma range``) are emitted for
every chart input and for the state variable, because the paper forces test
data "on the input parameters and the state of the application".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..minic import AnalyzedProgram, parse_and_analyze
from .chart import ChartTransition, ChartVariable, StateflowChart


@dataclass
class GeneratedCode:
    """The generator's output: source text plus the analysed program."""

    chart_name: str
    function_name: str
    source: str
    analyzed: AnalyzedProgram

    @property
    def program(self):
        return self.analyzed.program


class TargetLinkCodeGenerator:
    """Generates a mini-C step function from a chart."""

    def __init__(self, chart: StateflowChart, function_name: str | None = None):
        chart.validate()
        self._chart = chart
        self._function_name = function_name or f"{chart.name}_control"

    # ------------------------------------------------------------------ #
    def generate_source(self) -> str:
        chart = self._chart
        lines: list[str] = []
        lines.append(f"/* generated from Stateflow chart {chart.name!r} */")
        for variable in chart.inputs:
            lines.append(f"#pragma input {variable.name}")
        lines.append(f"#pragma input {chart.state_variable}")
        for variable in chart.inputs:
            value_range = variable.effective_range()
            lines.append(f"#pragma range {variable.name} {value_range.lo} {value_range.hi}")
        state_range = chart.state_range()
        lines.append(
            f"#pragma range {chart.state_variable} {state_range.lo} {state_range.hi}"
        )
        lines.append("")
        for variable in chart.inputs + chart.outputs + chart.locals:
            lines.append(self._declaration(variable))
        lines.append(
            f"{chart.state_variable_type().name} {chart.state_variable} = "
            f"{chart.state(chart.initial_state).index};"
        )
        lines.append("")
        lines.append(f"void {self._function_name}(void) {{")
        lines.append(f"    switch ({chart.state_variable}) {{")
        for state in chart.states:
            lines.append(f"    case {state.index}:")
            body = self._state_body(state.name)
            lines.extend("        " + line for line in body)
            lines.append("        break;")
        lines.append("    default:")
        lines.append(
            f"        {chart.state_variable} = {chart.state(chart.initial_state).index};"
        )
        lines.append("        break;")
        lines.append("    }")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def generate(self) -> GeneratedCode:
        source = self.generate_source()
        analyzed = parse_and_analyze(source, filename=f"{self._chart.name}_generated.c")
        return GeneratedCode(
            chart_name=self._chart.name,
            function_name=self._function_name,
            source=source,
            analyzed=analyzed,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _declaration(variable: ChartVariable) -> str:
        return f"{variable.ctype.name} {variable.name} = {variable.initial};"

    def _state_body(self, state_name: str) -> list[str]:
        """The nested if/else ladder of one state's case block."""
        chart = self._chart
        state = chart.state(state_name)
        lines: list[str] = []
        for action in state.during_actions:
            lines.append(self._statement(action))
        transitions = chart.transitions_from(state_name)
        if not transitions:
            return lines or ["; "]
        lines.extend(self._transition_ladder(transitions, 0))
        return lines

    def _transition_ladder(
        self, transitions: list[ChartTransition], index: int
    ) -> list[str]:
        if index >= len(transitions):
            return []
        transition = transitions[index]
        chart = self._chart
        target = chart.state(transition.target)
        lines = [f"if ({transition.condition}) {{"]
        for action in transition.actions:
            lines.append("    " + self._statement(action))
        for action in target.entry_actions:
            lines.append("    " + self._statement(action))
        lines.append(f"    {chart.state_variable} = {target.index};")
        rest = self._transition_ladder(transitions, index + 1)
        if rest:
            lines.append("} else {")
            lines.extend("    " + line for line in rest)
            lines.append("}")
        else:
            lines.append("}")
        return lines

    @staticmethod
    def _statement(action: str) -> str:
        action = action.strip()
        return action if action.endswith(";") else action + ";"


def generate_chart_code(
    chart: StateflowChart, function_name: str | None = None
) -> GeneratedCode:
    """Generate and analyse TargetLink-style code for *chart*."""
    return TargetLinkCodeGenerator(chart, function_name).generate()
