"""Stateflow-like state chart model.

The paper's case study is "modelled in MatLab/Simulink" with a "Stateflow
chart [that] has 9 states" and turned into C by the TargetLink code generator.
This module provides the modelling side of that substitute: a small,
validated state-chart description (:class:`StateflowChart`) that
:mod:`repro.codegen.generator` turns into TargetLink-style mini-C code.

The chart semantics are the usual discrete-step ones: every call of the
generated step function evaluates the outgoing transitions of the active
state in priority order, takes the first one whose condition holds (executing
its actions and the entry actions of the new state) and otherwise runs the
active state's during-actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..minic.types import CType, INT16, IntRange, UINT8


class ChartError(Exception):
    """Raised for malformed charts."""


@dataclass(frozen=True)
class ChartVariable:
    """An input, output or local variable of the chart."""

    name: str
    ctype: CType = UINT8
    value_range: IntRange | None = None
    initial: int = 0

    def effective_range(self) -> IntRange:
        return self.value_range if self.value_range is not None else self.ctype.value_range()


@dataclass
class ChartState:
    """One state of the chart."""

    name: str
    index: int
    entry_actions: list[str] = field(default_factory=list)
    during_actions: list[str] = field(default_factory=list)


@dataclass
class ChartTransition:
    """A transition between two states.

    ``condition`` is a mini-C expression over the chart's variables; ``actions``
    are mini-C statements (without the trailing semicolon they are given one).
    Transitions of one source state are evaluated in increasing ``priority``.
    """

    source: str
    target: str
    condition: str
    actions: list[str] = field(default_factory=list)
    priority: int = 0


@dataclass
class StateflowChart:
    """A complete chart: states, variables, transitions."""

    name: str
    inputs: list[ChartVariable] = field(default_factory=list)
    outputs: list[ChartVariable] = field(default_factory=list)
    locals: list[ChartVariable] = field(default_factory=list)
    states: list[ChartState] = field(default_factory=list)
    transitions: list[ChartTransition] = field(default_factory=list)
    initial_state: str = ""
    #: name of the generated state variable
    state_variable: str = "chart_state"

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def add_state(
        self,
        name: str,
        entry_actions: list[str] | None = None,
        during_actions: list[str] | None = None,
    ) -> ChartState:
        if any(state.name == name for state in self.states):
            raise ChartError(f"duplicate state {name!r}")
        state = ChartState(
            name=name,
            index=len(self.states),
            entry_actions=list(entry_actions or []),
            during_actions=list(during_actions or []),
        )
        self.states.append(state)
        if not self.initial_state:
            self.initial_state = name
        return state

    def add_transition(
        self,
        source: str,
        target: str,
        condition: str,
        actions: list[str] | None = None,
        priority: int | None = None,
    ) -> ChartTransition:
        transition = ChartTransition(
            source=source,
            target=target,
            condition=condition,
            actions=list(actions or []),
            priority=priority if priority is not None else self._next_priority(source),
        )
        self.transitions.append(transition)
        return transition

    def _next_priority(self, source: str) -> int:
        return 1 + max(
            (t.priority for t in self.transitions if t.source == source), default=0
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def state(self, name: str) -> ChartState:
        for state in self.states:
            if state.name == name:
                return state
        raise ChartError(f"no state named {name!r}")

    def transitions_from(self, source: str) -> list[ChartTransition]:
        return sorted(
            (t for t in self.transitions if t.source == source), key=lambda t: t.priority
        )

    def variable_names(self) -> list[str]:
        names = [v.name for v in self.inputs + self.outputs + self.locals]
        names.append(self.state_variable)
        return names

    def block_count(self) -> int:
        """A Simulink-flavoured size metric: states + transitions + variables.

        The paper describes the wiper model as "around 70 blocks"; this count
        gives charts a comparable size number (states, transitions, condition
        terms and I/O ports all count as blocks in Simulink terms).
        """
        condition_terms = sum(
            1 + transition.condition.count("&&") + transition.condition.count("||")
            for transition in self.transitions
        )
        actions = sum(len(t.actions) for t in self.transitions) + sum(
            len(s.entry_actions) + len(s.during_actions) for s in self.states
        )
        return (
            len(self.states)
            + len(self.transitions)
            + condition_terms
            + actions
            + len(self.inputs)
            + len(self.outputs)
            + len(self.locals)
        )

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check chart well-formedness; raise :class:`ChartError` on problems."""
        if not self.states:
            raise ChartError("chart has no states")
        names = {state.name for state in self.states}
        if len(names) != len(self.states):
            raise ChartError("duplicate state names")
        if self.initial_state not in names:
            raise ChartError(f"initial state {self.initial_state!r} does not exist")
        declared = set(self.variable_names())
        if len(declared) != len(self.inputs) + len(self.outputs) + len(self.locals) + 1:
            raise ChartError("duplicate variable names")
        for transition in self.transitions:
            if transition.source not in names:
                raise ChartError(f"transition from unknown state {transition.source!r}")
            if transition.target not in names:
                raise ChartError(f"transition to unknown state {transition.target!r}")
            if not transition.condition.strip():
                raise ChartError("transitions need a condition (use '1' for always)")
        # every state should be reachable from the initial state
        reachable = {self.initial_state}
        changed = True
        while changed:
            changed = False
            for transition in self.transitions:
                if transition.source in reachable and transition.target not in reachable:
                    reachable.add(transition.target)
                    changed = True
        unreachable = names - reachable
        if unreachable:
            raise ChartError(f"unreachable states: {sorted(unreachable)}")

    def state_range(self) -> IntRange:
        return IntRange(0, max(0, len(self.states) - 1))

    def state_variable_type(self) -> CType:
        return INT16 if len(self.states) > 256 else UINT8
