"""Synthetic multi-function workload for the project orchestration driver.

The TargetLink generator (:mod:`repro.workloads.targetlink`) produces *one*
industrial-size function; this module produces a small *project* -- several
translation units, each defining several independent controller tasks -- to
exercise :mod:`repro.project`: parallel scheduling, per-function cache keys
and project-level aggregation.  Every task reads the unit's shared sensor
inputs (deliberately tiny ranges, so the per-function input space stays
exhaustively measurable), mixes if/else ladders, saturations and a
``switch`` over a selector input, and calls external runnable stubs --
the same ingredients as the single-function generator, shrunk to
batch-test size.

Two generators are provided: :func:`generate_multi_function_workload`
produces independent tasks (one scheduling wave, the PR 2 shape), and
:func:`generate_call_chain_workload` produces the interprocedural shape --
a three-deep call chain, a diamond that reconverges on a shared leaf and
cross-unit calls -- exercising :mod:`repro.callgraph` scheduling, callee
summary reuse and transitive cache invalidation.

Everything is seeded: the same ``seed`` always yields byte-identical
sources, which the project cache tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

#: ranges of the shared sensor inputs (kept tiny: 4**3 = 64 input vectors per
#: unit keeps exhaustive end-to-end measurement of every task cheap)
INPUT_RANGE_HI = 3
INPUTS_PER_UNIT = 3


@dataclass
class MultiFunctionWorkload:
    """A generated multi-unit, multi-function project."""

    #: unit name -> mini-C source text
    sources: dict[str, str]
    #: (unit name, function name) of every generated task
    functions: list[tuple[str, str]]
    seed: int

    @property
    def function_names(self) -> list[str]:
        return [name for _, name in self.functions]

    def write_to(self, directory: str | Path) -> list[Path]:
        """Write every unit into *directory*; return the file paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for name in sorted(self.sources):
            path = directory / name
            path.write_text(self.sources[name], encoding="utf-8")
            paths.append(path)
        return paths


class _TaskGenerator:
    """Seeded generator of one unit's task functions."""

    def __init__(self, rng: random.Random, unit_index: int):
        self._rng = rng
        self._unit = unit_index
        self._inputs = [f"in{index}" for index in range(INPUTS_PER_UNIT)]
        self._stubs: list[str] = []

    # ------------------------------------------------------------------ #
    def render_unit(self, task_names: list[str]) -> str:
        bodies = [self._task(name) for name in task_names]
        lines = [f"/* synthetic multi-function workload, unit {self._unit} */"]
        for name in self._inputs:
            lines.append(f"#pragma input {name}")
        for name in self._inputs:
            lines.append(f"#pragma range {name} 0 {INPUT_RANGE_HI}")
        lines.append("")
        for name in self._inputs:
            lines.append(f"UInt8 {name};")
        for name in task_names:
            lines.append(f"Int16 out_{name} = 0;")
        lines.append("")
        for name in sorted(set(self._stubs)):
            lines.append(f"void {name}(void);")
        lines.append("")
        lines.extend(bodies)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    def _task(self, name: str) -> str:
        rng = self._rng
        sel = rng.choice(self._inputs)
        lines = [f"void {name}(void) {{", "    Int16 acc = 0;"]
        lines.append(
            f"    acc = {self._input()} * {rng.randint(2, 9)} + {self._input()};"
        )
        lines.extend(self._saturation())
        lines.extend(self._ladder(depth=rng.randint(1, 2)))
        lines.extend(self._selector_switch(sel))
        if rng.random() < 0.7:
            stub = self._fresh_stub()
            lines.append(f"    if ((acc > {rng.randint(3, 12)}) && "
                         f"({self._input()} != 0)) {{")
            lines.append(f"        {stub}();")
            lines.append("    }")
        lines.append(f"    out_{name} = acc;")
        lines.append("}")
        lines.append("")
        return "\n".join(lines)

    def _input(self) -> str:
        return self._rng.choice(self._inputs)

    def _fresh_stub(self) -> str:
        name = f"runnable_{self._unit}_{len(self._stubs)}"
        self._stubs.append(name)
        return name

    def _saturation(self) -> list[str]:
        upper = self._rng.randint(10, 25)
        return [
            f"    if (acc > {upper}) {{",
            f"        acc = {upper};",
            "    }",
        ]

    def _ladder(self, depth: int) -> list[str]:
        rng = self._rng
        lines: list[str] = []
        pad = "    "
        for level in range(depth):
            operator = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            lines.append(
                f"{pad}if ({self._input()} {operator} {rng.randint(0, INPUT_RANGE_HI)}) {{"
            )
            lines.append(f"{pad}    acc = acc + {rng.randint(1, 5)};")
            pad += "    "
        for level in range(depth):
            pad = pad[:-4]
            lines.append(f"{pad}}} else {{")
            lines.append(f"{pad}    acc = acc - {rng.randint(1, 3)};")
            lines.append(f"{pad}}}")
        return lines

    def _selector_switch(self, selector: str) -> list[str]:
        rng = self._rng
        lines = [f"    switch ({selector}) {{"]
        for value in range(rng.randint(2, INPUT_RANGE_HI)):
            lines.append(f"    case {value}:")
            lines.append(f"        acc = acc + {rng.randint(1, 6)};")
            lines.append("        break;")
        lines.append("    default:")
        lines.append(f"        acc = acc - {rng.randint(1, 4)};")
        lines.append("        break;")
        lines.append("    }")
        return lines


class _CallChainUnit:
    """Seeded generator of one unit of the call-chain workload.

    Every function is ``void f(void)``: it reads only the unit's pragma
    inputs, mixes a saturation and an if/else split (so each function has
    real path variance for the WCET pipeline), calls the requested callees
    as plain statements and writes its own ``out_<name>`` global.  Callees
    never read a caller-written global, which keeps the compositional
    summary charge sound: a callee's worst case over the pragma inputs
    covers every call site.
    """

    def __init__(self, rng: random.Random, unit_index: int):
        self._rng = rng
        self._unit = unit_index
        self._inputs = [f"in{index}" for index in range(INPUTS_PER_UNIT)]
        self._bodies: list[str] = []
        self._stubs: list[str] = []
        self.names: list[str] = []

    # ------------------------------------------------------------------ #
    def add_function(
        self,
        name: str,
        calls: tuple[str, ...] = (),
        with_external_stub: bool = False,
    ) -> None:
        """Add one task/helper; ``calls`` are emitted as call statements.

        Callee names may live in another unit (the project call graph
        resolves them); undeclared names are external stubs.
        """
        rng = self._rng
        lines = [f"void {name}(void) {{", "    Int16 acc = 0;"]
        lines.append(
            f"    acc = {rng.choice(self._inputs)} * {rng.randint(2, 9)} "
            f"+ {rng.choice(self._inputs)};"
        )
        upper = rng.randint(10, 25)
        lines += [f"    if (acc > {upper}) {{", f"        acc = {upper};", "    }"]
        operator = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        lines += [
            f"    if ({rng.choice(self._inputs)} {operator} "
            f"{rng.randint(0, INPUT_RANGE_HI)}) {{",
            f"        acc = acc + {rng.randint(1, 5)};",
            "    } else {",
            f"        acc = acc - {rng.randint(1, 3)};",
            "    }",
        ]
        for callee in calls:
            lines.append(f"    {callee}();")
        if with_external_stub:
            stub = f"runnable_{self._unit}_{len(self._stubs)}"
            self._stubs.append(stub)
            lines += [
                f"    if (acc > {rng.randint(3, 12)}) {{",
                f"        {stub}();",
                "    }",
            ]
        lines += [f"    out_{name} = acc;", "}", ""]
        self.names.append(name)
        self._bodies.append("\n".join(lines))

    def render(self) -> str:
        lines = [f"/* synthetic call-chain workload, unit {self._unit} */"]
        for name in self._inputs:
            lines.append(f"#pragma input {name}")
        for name in self._inputs:
            lines.append(f"#pragma range {name} 0 {INPUT_RANGE_HI}")
        lines.append("")
        for name in self._inputs:
            lines.append(f"UInt8 {name};")
        for name in self.names:
            lines.append(f"Int16 out_{name} = 0;")
        lines.append("")
        for name in sorted(set(self._stubs)):
            lines.append(f"void {name}(void);")
        lines.append("")
        lines.extend(self._bodies)
        return "\n".join(lines) + "\n"


def generate_call_chain_workload(
    seed: int = 2005, units: int = 2
) -> MultiFunctionWorkload:
    """Generate the interprocedural workload: deep chain + diamond + cross-unit.

    The call topology exercises every scheduling shape of the call-graph
    subsystem:

    * a three-deep call chain ``task_0 -> chain_top -> chain_mid ->
      chain_leaf`` (so editing ``chain_leaf`` must invalidate four cached
      results and nothing else),
    * a diamond ``task_0 -> {diamond_left, diamond_right} -> chain_leaf``
      (shared leaf summary reused by several callers on one wave), and
    * with ``units >= 2`` cross-unit calls: ``unit_1.c`` defines
      ``local_helper -> chain_top`` and ``task_1 -> {local_helper,
      chain_leaf}``, resolved project-wide rather than per translation
      unit, plus the call-free ``solo_task`` -- the control that must stay
      cache-warm when any other function is edited.

    Everything is seeded and byte-identical for equal ``seed`` values.
    """
    if units not in (1, 2):
        raise ValueError("the call-chain workload supports 1 or 2 units")
    sources: dict[str, str] = {}
    names: list[tuple[str, str]] = []

    unit_0 = _CallChainUnit(random.Random(f"{seed}/chain/0"), 0)
    unit_0.add_function("chain_leaf")
    unit_0.add_function("chain_mid", calls=("chain_leaf",))
    unit_0.add_function("chain_top", calls=("chain_mid",))
    unit_0.add_function("diamond_left", calls=("chain_leaf",))
    unit_0.add_function("diamond_right", calls=("chain_leaf",))
    unit_0.add_function(
        "task_0",
        calls=("chain_top", "diamond_left", "diamond_right"),
        with_external_stub=True,
    )
    sources["unit_0.c"] = unit_0.render()
    names.extend(("unit_0.c", name) for name in unit_0.names)

    if units == 2:
        unit_1 = _CallChainUnit(random.Random(f"{seed}/chain/1"), 1)
        unit_1.add_function("local_helper", calls=("chain_top",))
        unit_1.add_function(
            "task_1", calls=("local_helper", "chain_leaf"), with_external_stub=True
        )
        unit_1.add_function("solo_task", with_external_stub=True)
        sources["unit_1.c"] = unit_1.render()
        names.extend(("unit_1.c", name) for name in unit_1.names)

    return MultiFunctionWorkload(
        sources=sources, functions=sorted(names), seed=seed
    )


def edit_call_chain_function(
    sources: dict[str, str], function: str = "diamond_left"
) -> dict[str, str]:
    """Apply a semantic edit local to one call-chain workload function.

    Incremental-invalidation scenarios (service sessions, cache-frontier
    tests, the bench's cold-vs-incremental comparison) need "the same
    project with exactly one function changed".  Every rendered function
    ends with its unique output assignment ``out_<name> = acc;`` (the
    declaration is ``= 0;``, so the assignment cannot collide), which makes
    a minimal semantic edit textual: bump the assigned value.  The edit
    changes only *function*'s content fingerprint, so the expected
    invalidation frontier is that function plus its transitive callers.
    """
    marker = f"out_{function} = acc;"
    edited = dict(sources)
    for unit, source in sources.items():
        if marker in source:
            edited[unit] = source.replace(marker, f"out_{function} = acc + 1;")
            return edited
    raise ValueError(f"no function {function!r} in the given workload sources")


def generate_multi_function_workload(
    seed: int = 2005, functions: int = 4, units: int = 2
) -> MultiFunctionWorkload:
    """Generate *functions* tasks spread round-robin over *units* source files."""
    if functions < 1:
        raise ValueError("need at least one function")
    units = max(1, min(units, functions))
    per_unit: dict[int, list[str]] = {index: [] for index in range(units)}
    for index in range(functions):
        per_unit[index % units].append(f"task_{index}")

    sources: dict[str, str] = {}
    names: list[tuple[str, str]] = []
    for unit_index in range(units):
        unit_name = f"unit_{unit_index}.c"
        rng = random.Random(f"{seed}/{unit_index}")
        generator = _TaskGenerator(rng, unit_index)
        sources[unit_name] = generator.render_unit(per_unit[unit_index])
        names.extend((unit_name, task) for task in per_unit[unit_index])
    return MultiFunctionWorkload(
        sources=sources, functions=sorted(names), seed=seed
    )
