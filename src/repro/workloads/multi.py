"""Synthetic multi-function workload for the project orchestration driver.

The TargetLink generator (:mod:`repro.workloads.targetlink`) produces *one*
industrial-size function; this module produces a small *project* -- several
translation units, each defining several independent controller tasks -- to
exercise :mod:`repro.project`: parallel scheduling, per-function cache keys
and project-level aggregation.  Every task reads the unit's shared sensor
inputs (deliberately tiny ranges, so the per-function input space stays
exhaustively measurable), mixes if/else ladders, saturations and a
``switch`` over a selector input, and calls external runnable stubs --
the same ingredients as the single-function generator, shrunk to
batch-test size.

Everything is seeded: the same ``seed`` always yields byte-identical
sources, which the project cache tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

#: ranges of the shared sensor inputs (kept tiny: 4**3 = 64 input vectors per
#: unit keeps exhaustive end-to-end measurement of every task cheap)
INPUT_RANGE_HI = 3
INPUTS_PER_UNIT = 3


@dataclass
class MultiFunctionWorkload:
    """A generated multi-unit, multi-function project."""

    #: unit name -> mini-C source text
    sources: dict[str, str]
    #: (unit name, function name) of every generated task
    functions: list[tuple[str, str]]
    seed: int

    @property
    def function_names(self) -> list[str]:
        return [name for _, name in self.functions]

    def write_to(self, directory: str | Path) -> list[Path]:
        """Write every unit into *directory*; return the file paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for name in sorted(self.sources):
            path = directory / name
            path.write_text(self.sources[name], encoding="utf-8")
            paths.append(path)
        return paths


class _TaskGenerator:
    """Seeded generator of one unit's task functions."""

    def __init__(self, rng: random.Random, unit_index: int):
        self._rng = rng
        self._unit = unit_index
        self._inputs = [f"in{index}" for index in range(INPUTS_PER_UNIT)]
        self._stubs: list[str] = []

    # ------------------------------------------------------------------ #
    def render_unit(self, task_names: list[str]) -> str:
        bodies = [self._task(name) for name in task_names]
        lines = [f"/* synthetic multi-function workload, unit {self._unit} */"]
        for name in self._inputs:
            lines.append(f"#pragma input {name}")
        for name in self._inputs:
            lines.append(f"#pragma range {name} 0 {INPUT_RANGE_HI}")
        lines.append("")
        for name in self._inputs:
            lines.append(f"UInt8 {name};")
        for name in task_names:
            lines.append(f"Int16 out_{name} = 0;")
        lines.append("")
        for name in sorted(set(self._stubs)):
            lines.append(f"void {name}(void);")
        lines.append("")
        lines.extend(bodies)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    def _task(self, name: str) -> str:
        rng = self._rng
        sel = rng.choice(self._inputs)
        lines = [f"void {name}(void) {{", "    Int16 acc = 0;"]
        lines.append(
            f"    acc = {self._input()} * {rng.randint(2, 9)} + {self._input()};"
        )
        lines.extend(self._saturation())
        lines.extend(self._ladder(depth=rng.randint(1, 2)))
        lines.extend(self._selector_switch(sel))
        if rng.random() < 0.7:
            stub = self._fresh_stub()
            lines.append(f"    if ((acc > {rng.randint(3, 12)}) && "
                         f"({self._input()} != 0)) {{")
            lines.append(f"        {stub}();")
            lines.append("    }")
        lines.append(f"    out_{name} = acc;")
        lines.append("}")
        lines.append("")
        return "\n".join(lines)

    def _input(self) -> str:
        return self._rng.choice(self._inputs)

    def _fresh_stub(self) -> str:
        name = f"runnable_{self._unit}_{len(self._stubs)}"
        self._stubs.append(name)
        return name

    def _saturation(self) -> list[str]:
        upper = self._rng.randint(10, 25)
        return [
            f"    if (acc > {upper}) {{",
            f"        acc = {upper};",
            "    }",
        ]

    def _ladder(self, depth: int) -> list[str]:
        rng = self._rng
        lines: list[str] = []
        pad = "    "
        for level in range(depth):
            operator = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            lines.append(
                f"{pad}if ({self._input()} {operator} {rng.randint(0, INPUT_RANGE_HI)}) {{"
            )
            lines.append(f"{pad}    acc = acc + {rng.randint(1, 5)};")
            pad += "    "
        for level in range(depth):
            pad = pad[:-4]
            lines.append(f"{pad}}} else {{")
            lines.append(f"{pad}    acc = acc - {rng.randint(1, 3)};")
            lines.append(f"{pad}}}")
        return lines

    def _selector_switch(self, selector: str) -> list[str]:
        rng = self._rng
        lines = [f"    switch ({selector}) {{"]
        for value in range(rng.randint(2, INPUT_RANGE_HI)):
            lines.append(f"    case {value}:")
            lines.append(f"        acc = acc + {rng.randint(1, 6)};")
            lines.append("        break;")
        lines.append("    default:")
        lines.append(f"        acc = acc - {rng.randint(1, 4)};")
        lines.append("        break;")
        lines.append("    }")
        return lines


def generate_multi_function_workload(
    seed: int = 2005, functions: int = 4, units: int = 2
) -> MultiFunctionWorkload:
    """Generate *functions* tasks spread round-robin over *units* source files."""
    if functions < 1:
        raise ValueError("need at least one function")
    units = max(1, min(units, functions))
    per_unit: dict[int, list[str]] = {index: [] for index in range(units)}
    for index in range(functions):
        per_unit[index % units].append(f"task_{index}")

    sources: dict[str, str] = {}
    names: list[tuple[str, str]] = []
    for unit_index in range(units):
        unit_name = f"unit_{unit_index}.c"
        rng = random.Random(f"{seed}/{unit_index}")
        generator = _TaskGenerator(rng, unit_index)
        sources[unit_name] = generator.render_unit(per_unit[unit_index])
        names.extend((unit_name, task) for task in per_unit[unit_index])
    return MultiFunctionWorkload(
        sources=sources, functions=sorted(names), seed=seed
    )
