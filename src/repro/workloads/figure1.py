"""The example program of the paper's Figure 1.

The listing is reproduced verbatim (modulo the ``#pragma input`` annotation
that tells the analysis which variable is free -- in the paper the variable
``i`` is uninitialised, which is exactly the same thing).  Table 1 of the
paper reports the instrumentation-point / measurement trade-off for this
program, which ``benchmarks/test_bench_table1.py`` regenerates.

The program has

* 11 measurable basic blocks (each ``printfN()`` call terminates its block),
* 6 end-to-end paths: the outer ``if`` contributes 3 (skip, then+inner-then,
  then+inner-else), the second ``if`` contributes 2.
"""

from __future__ import annotations

from ..minic import AnalyzedProgram, parse_and_analyze
from ..minic.ast_nodes import Program

#: Source text of the paper's Figure 1 example (line numbers in the paper
#: refer to the listing as printed there; the structure is identical).
FIGURE1_SOURCE = """\
#pragma input i
#pragma range i 0 1

int i;

int main() {
    printf1();
    printf2();
    if (i == 0)
    {
        printf3();
        if (i == 0) {
            printf4();
        } else {
            printf5();
        }
    }
    if (i == 0)
    {
        printf6();
        printf7();
    }
    printf8();
}
"""

#: Expected Table 1 rows: path bound b -> (instrumentation points, measurements).
TABLE1_EXPECTED: dict[int, tuple[int, int]] = {
    1: (22, 11),
    2: (16, 9),
    3: (16, 9),
    4: (16, 9),
    5: (16, 9),
    6: (2, 6),
    7: (2, 6),
}

#: Number of measurable (non-virtual) basic blocks in the example CFG.
EXPECTED_BASIC_BLOCKS = 11

#: Number of end-to-end paths through ``main``.
EXPECTED_TOTAL_PATHS = 6


def figure1_program() -> Program:
    """Parse the Figure 1 example and return its AST."""
    return figure1_analyzed().program


def figure1_analyzed() -> AnalyzedProgram:
    """Parse and semantically analyse the Figure 1 example."""
    return parse_and_analyze(FIGURE1_SOURCE, filename="figure1.c")
