"""The optimisation-evaluation program of the paper's Section 3.3 / Table 2.

The paper describes its evaluation code only by its statistics:

    "The C source code for the evaluation consists of 105 lines without
    comments and empty lines, four boolean and thirteen byte variables from
    which three can be substituted by 'Reverse CSE', three are not affecting
    the control flow and three are not used at all."

This module provides a program with exactly those characteristics -- an
engine-monitor-style control function of the kind TargetLink generates:

* 4 boolean flags, 13 byte variables (3 sensor inputs, 1 threshold,
  3 reverse-CSE-substitutable temporaries, 3 statistics counters that never
  influence any branch, 3 completely unused spares);
* nested ``if`` logic whose deepest branch (the ``raise_alarm()`` call) is the
  reachability target of the Table 2 benchmark;
* no loops (generated dataflow code), no pointer arithmetic.

``TABLE2_TARGET_CALL`` names the call that marks the target block, and
:func:`find_target_block` locates it in the CFG.
"""

from __future__ import annotations

from ..cfg.graph import ControlFlowGraph
from ..minic import AnalyzedProgram, parse_and_analyze
from ..minic.ast_nodes import CallExpr

#: the function analysed in the Table 2 experiment
EVAL_FUNCTION_NAME = "monitor"

#: the call marking the reachability target (deepest alarm branch)
TABLE2_TARGET_CALL = "raise_alarm"

#: variable inventory used by the tests (matching the paper's description)
BOOLEAN_VARIABLES = ("flag_a", "flag_b", "flag_c", "flag_d")
BYTE_VARIABLES = (
    "sensor_temp",
    "sensor_rpm",
    "sensor_load",
    "threshold",
    "tmp_temp",
    "tmp_rpm",
    "tmp_load",
    "counter_x",
    "counter_y",
    "counter_z",
    "spare_1",
    "spare_2",
    "spare_3",
)
REVERSE_CSE_CANDIDATES = ("tmp_temp", "tmp_rpm", "tmp_load")
CONTROL_FLOW_IRRELEVANT = ("counter_x", "counter_y", "counter_z")
UNUSED_VARIABLES = ("spare_1", "spare_2", "spare_3")
INPUT_VARIABLES = ("sensor_temp", "sensor_rpm", "sensor_load")

OPTIMISATION_EVAL_SOURCE = """\
#pragma input sensor_temp
#pragma input sensor_rpm
#pragma input sensor_load
#pragma range sensor_temp 0 120
#pragma range sensor_rpm 0 80
#pragma range sensor_load 0 100

UInt8 sensor_temp;
UInt8 sensor_rpm;
UInt8 sensor_load;

void raise_alarm(void);
void reduce_power(void);
void limit_rpm(void);
void warn_operator(void);
void normal_operation(void);
void log_event(void);
void update_statistics(void);

void monitor(void) {
    Bool flag_a;
    Bool flag_b;
    Bool flag_c;
    Bool flag_d;
    UInt8 threshold;
    UInt8 tmp_temp;
    UInt8 tmp_rpm;
    UInt8 tmp_load;
    UInt8 counter_x;
    UInt8 counter_y;
    UInt8 counter_z;
    UInt8 spare_1;
    UInt8 spare_2;
    UInt8 spare_3;

    threshold = 90;
    counter_x = 0;
    counter_y = 0;
    counter_z = 0;
    flag_a = 0;
    flag_b = 0;
    flag_c = 0;
    flag_d = 0;

    tmp_temp = sensor_temp + 5;
    tmp_rpm = sensor_rpm + sensor_rpm;
    tmp_load = sensor_load + 10;

    if (sensor_rpm > 40) {
        threshold = threshold - 5;
        counter_x = counter_x + 1;
    } else {
        threshold = threshold + 5;
        counter_y = counter_y + 1;
    }

    if (tmp_temp > threshold) {
        flag_a = 1;
        counter_x = counter_x + 1;
    } else {
        counter_y = counter_y + 1;
    }

    if (tmp_rpm > 100) {
        flag_b = 1;
        counter_x = counter_x + 2;
    }

    if (tmp_load > 60) {
        flag_c = 1;
    } else {
        counter_z = counter_z + 1;
    }

    if (flag_a) {
        if (flag_b) {
            counter_y = counter_y + 3;
            if (flag_c) {
                flag_d = 1;
                counter_z = counter_z + 5;
                if (sensor_load > 75) {
                    raise_alarm();
                } else {
                    reduce_power();
                }
            } else {
                limit_rpm();
            }
        } else {
            warn_operator();
        }
    } else {
        normal_operation();
    }

    if (flag_d) {
        log_event();
    }
    update_statistics();
}
"""


def optimisation_eval_program() -> AnalyzedProgram:
    """Parse and analyse the Table 2 evaluation program."""
    return parse_and_analyze(OPTIMISATION_EVAL_SOURCE, filename="optimisation_eval.c")


def find_target_block(cfg: ControlFlowGraph, call_name: str = TABLE2_TARGET_CALL) -> int:
    """Block id of the block containing the given marker call."""
    for block in cfg.real_blocks():
        for stmt in block.statements:
            for node in stmt.walk():
                if isinstance(node, CallExpr) and node.name == call_name:
                    return block.block_id
    raise LookupError(f"no block calls {call_name!r}")


def source_line_count() -> int:
    """Number of non-empty, non-comment source lines (the paper quotes 105)."""
    count = 0
    for line in OPTIMISATION_EVAL_SOURCE.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("/*") or stripped.startswith("//"):
            continue
        count += 1
    return count
