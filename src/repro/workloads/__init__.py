"""Workloads: the paper's example programs and synthetic program generators."""

from __future__ import annotations

from .figure1 import (
    EXPECTED_BASIC_BLOCKS,
    EXPECTED_TOTAL_PATHS,
    FIGURE1_SOURCE,
    TABLE1_EXPECTED,
    figure1_analyzed,
    figure1_program,
)
from .multi import (
    MultiFunctionWorkload,
    edit_call_chain_function,
    generate_call_chain_workload,
    generate_multi_function_workload,
)

__all__ = [
    "EXPECTED_BASIC_BLOCKS",
    "EXPECTED_TOTAL_PATHS",
    "FIGURE1_SOURCE",
    "MultiFunctionWorkload",
    "TABLE1_EXPECTED",
    "edit_call_chain_function",
    "figure1_analyzed",
    "figure1_program",
    "generate_call_chain_workload",
    "generate_multi_function_workload",
]
