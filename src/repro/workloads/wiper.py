"""The wiper-control case study (the paper's Section 4).

    "Our case study is an automotive wiper control application.  The
    controller inputs are a two-step speed selector (off, slow and fast) for
    the wipers, a button to switch on the water pump and an end position
    switch to indicate the neutral position of the wipers. [...] The
    Stateflow chart has 9 states, the complete MatLab/Simulink model contains
    around 70 blocks. [...] The whole functionality is encapsulated in a
    single function wiper_control."

:func:`wiper_chart` builds the 9-state chart, :func:`wiper_case_study`
generates the TargetLink-style ``wiper_control`` function from it.  The
analysis inputs are the three controller inputs plus the chart state (the
paper forces test data "on the input parameters and the state of the
application"), giving the small input space (3 x 2 x 2 x 9 = 108 vectors)
that makes exhaustive end-to-end measurement possible -- which is exactly what
the paper compares its partitioned WCET bound against (250 vs 274 cycles).
"""

from __future__ import annotations

from ..codegen.chart import ChartVariable, StateflowChart
from ..codegen.generator import GeneratedCode, generate_chart_code
from ..minic.types import BOOL, IntRange, UINT8

#: name of the generated single function (as in the paper)
WIPER_FUNCTION_NAME = "wiper_control"

#: paper's case-study results, for reference in EXPERIMENTS.md and the bench
PAPER_EXHAUSTIVE_WCET_CYCLES = 250
PAPER_PARTITIONED_BOUND_CYCLES = 274

#: the nine state names of the chart
WIPER_STATES = (
    "Off",
    "SlowWipe",
    "FastWipe",
    "Parking",
    "WashPump",
    "WashWipe",
    "PostWashWipeFirst",
    "PostWashWipeSecond",
    "ReturnToRequest",
)


def wiper_chart() -> StateflowChart:
    """Build the 9-state wiper-control Stateflow chart."""
    chart = StateflowChart(name="wiper", state_variable="wiper_state")
    chart.inputs = [
        ChartVariable("speed_selector", UINT8, IntRange(0, 2)),
        ChartVariable("pump_button", BOOL, IntRange(0, 1)),
        ChartVariable("end_position", BOOL, IntRange(0, 1)),
    ]
    chart.outputs = [
        ChartVariable("motor_speed", UINT8, IntRange(0, 2)),
        ChartVariable("pump_on", BOOL, IntRange(0, 1)),
    ]
    chart.locals = [
        ChartVariable("wipe_counter", UINT8, IntRange(0, 3)),
    ]

    chart.add_state("Off", entry_actions=["motor_speed = 0", "pump_on = 0"])
    chart.add_state("SlowWipe", entry_actions=["motor_speed = 1", "pump_on = 0"])
    chart.add_state("FastWipe", entry_actions=["motor_speed = 2", "pump_on = 0"])
    chart.add_state("Parking", entry_actions=["motor_speed = 1", "pump_on = 0"])
    chart.add_state("WashPump", entry_actions=["motor_speed = 0", "pump_on = 1"])
    chart.add_state("WashWipe", entry_actions=["motor_speed = 1", "pump_on = 1"])
    chart.add_state(
        "PostWashWipeFirst",
        entry_actions=["motor_speed = 1", "pump_on = 0", "wipe_counter = 1"],
    )
    chart.add_state(
        "PostWashWipeSecond",
        entry_actions=["motor_speed = 1", "wipe_counter = 2"],
    )
    chart.add_state("ReturnToRequest", entry_actions=["wipe_counter = 0"])
    chart.initial_state = "Off"

    # Off: washing has priority, then the speed selector
    chart.add_transition("Off", "WashPump", "pump_button == 1")
    chart.add_transition("Off", "SlowWipe", "speed_selector == 1")
    chart.add_transition("Off", "FastWipe", "speed_selector == 2")

    # SlowWipe
    chart.add_transition("SlowWipe", "WashWipe", "pump_button == 1")
    chart.add_transition("SlowWipe", "FastWipe", "speed_selector == 2")
    chart.add_transition("SlowWipe", "Parking", "speed_selector == 0")

    # FastWipe
    chart.add_transition("FastWipe", "WashWipe", "pump_button == 1")
    chart.add_transition("FastWipe", "SlowWipe", "speed_selector == 1")
    chart.add_transition("FastWipe", "Parking", "speed_selector == 0")

    # Parking: run at slow speed until the end-position switch closes
    chart.add_transition("Parking", "Off", "end_position == 1")
    chart.add_transition("Parking", "SlowWipe", "speed_selector == 1")
    chart.add_transition("Parking", "FastWipe", "speed_selector == 2")

    # Washing
    chart.add_transition("WashPump", "WashWipe", "pump_button == 1 && end_position == 0")
    chart.add_transition("WashPump", "PostWashWipeFirst", "pump_button == 0")
    chart.add_transition("WashWipe", "PostWashWipeFirst", "pump_button == 0")

    # post-wash wipe cycles
    chart.add_transition("PostWashWipeFirst", "WashWipe", "pump_button == 1")
    chart.add_transition("PostWashWipeFirst", "PostWashWipeSecond", "end_position == 1")
    chart.add_transition("PostWashWipeSecond", "WashWipe", "pump_button == 1")
    chart.add_transition("PostWashWipeSecond", "ReturnToRequest", "end_position == 1")

    # hand control back according to the selector
    chart.add_transition("ReturnToRequest", "SlowWipe", "speed_selector == 1")
    chart.add_transition("ReturnToRequest", "FastWipe", "speed_selector == 2")
    chart.add_transition("ReturnToRequest", "Parking", "speed_selector == 0")

    chart.validate()
    return chart


def wiper_case_study() -> GeneratedCode:
    """Generate and analyse the ``wiper_control`` function of the case study."""
    return generate_chart_code(wiper_chart(), WIPER_FUNCTION_NAME)


def wiper_input_ranges() -> dict[str, IntRange]:
    """The exhaustive-measurement input space (controller inputs + chart state)."""
    chart = wiper_chart()
    ranges = {variable.name: variable.effective_range() for variable in chart.inputs}
    ranges[chart.state_variable] = chart.state_range()
    return ranges
